"""Root pytest configuration: a global per-test timeout.

The serving layer now runs a real event-loop thread
(:class:`repro.serve.loop.ServeLoop`); a deadlocked loop would otherwise
hang the whole suite forever on CI.  Every test gets a generous wall-clock
budget (``REPRO_TEST_TIMEOUT`` seconds, default 180 — an order of magnitude
above the slowest benchmark test) enforced with ``SIGALRM``, so a hang
fails fast with a ``TimeoutError`` raised inside the test instead of
stalling the run.  No third-party plugin is required; on platforms without
``SIGALRM`` (Windows) or off the main thread the guard is a no-op.
"""

import os
import signal
import threading

import pytest

TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "180"))


def _supports_alarm() -> bool:
    return (
        TIMEOUT_S > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if not _supports_alarm():
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"test exceeded the global {TIMEOUT_S:.0f}s timeout "
            f"(REPRO_TEST_TIMEOUT): likely a deadlocked serving loop or "
            f"an unbounded wait"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
