"""Tests for the serving subsystem: clocks, flush policies and their
registry, request futures, policy-driven sessions, multi-model servers,
open-loop traffic, and the memory planner's plan cache."""

import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.serve import (
    AdaptivePolicy,
    DeadlinePolicy,
    FlushPolicy,
    ManualPolicy,
    Server,
    SimulatedClock,
    SizePolicy,
    available_flush_policies,
    bursty_arrivals,
    make_flush_policy,
    poisson_arrivals,
    register_flush_policy,
    replay,
    replay_server,
    unregister_flush_policy,
)
from repro.models import MODEL_MODULES
from repro.utils import values_allclose

BATCH = 6

BUILTIN_POLICIES = ("manual", "size", "deadline", "adaptive")


@pytest.fixture(scope="module")
def treelstm_setup():
    module = MODEL_MODULES["treelstm"]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, BATCH, seed=5)
    reference = reference_run(mod, params, instances)
    return mod, params, instances, reference


@pytest.fixture(scope="module")
def birnn_setup():
    module = MODEL_MODULES["birnn"]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, 3, seed=6)
    reference = reference_run(mod, params, instances)
    return mod, params, instances, reference


class TestClock:
    def test_simulated_clock_advances(self):
        clock = SimulatedClock(start=1.0)
        assert clock.now() == 1.0
        clock.advance(0.5)
        assert clock.now() == 1.5
        clock.charge(0.25)
        assert clock.now() == 1.75

    def test_advance_to_clamps(self):
        clock = SimulatedClock()
        clock.advance_to(2.0)
        assert clock.now() == 2.0
        clock.advance_to(1.0)  # never backwards
        assert clock.now() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)


class TestPolicyRegistry:
    def test_builtins_listed(self):
        names = available_flush_policies()
        for name in BUILTIN_POLICIES:
            assert name in names

    def test_lookup_builds_policies(self):
        assert isinstance(make_flush_policy("manual"), ManualPolicy)
        assert isinstance(make_flush_policy("size", n=4), SizePolicy)
        assert isinstance(make_flush_policy("deadline", ms=3.0), DeadlinePolicy)
        assert isinstance(make_flush_policy("adaptive"), AdaptivePolicy)

    def test_unknown_name_lists_policies(self):
        with pytest.raises(ValueError, match="deadline"):
            make_flush_policy("does_not_exist")

    def test_register_and_unregister(self):
        class CustomPolicy(SizePolicy):
            name = "custom_flush_test"

        register_flush_policy("custom_flush_test", lambda **kw: CustomPolicy(**kw))
        try:
            assert "custom_flush_test" in available_flush_policies()
            assert isinstance(make_flush_policy("custom_flush_test", n=2), CustomPolicy)
            with pytest.raises(ValueError, match="already registered"):
                register_flush_policy("custom_flush_test", lambda **kw: CustomPolicy(**kw))
        finally:
            unregister_flush_policy("custom_flush_test")
        assert "custom_flush_test" not in available_flush_policies()

    def test_invalid_policy_args(self):
        with pytest.raises(ValueError):
            make_flush_policy("size", n=0)
        with pytest.raises(ValueError):
            make_flush_policy("deadline", ms=-1.0)


class TestPolicyMatrix:
    """Every flush policy produces the reference outputs: policies decide
    *when* rounds execute, never *what* they compute."""

    @pytest.mark.parametrize(
        "policy,policy_args",
        [
            ("manual", {}),
            ("size", {"n": 2}),
            ("deadline", {"ms": 2.0}),
            ("adaptive", {}),
        ],
    )
    def test_policy_matches_reference(self, treelstm_setup, policy, policy_args):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve(policy, clock=SimulatedClock(), **policy_args)
        arrivals = poisson_arrivals(2000.0, len(instances), seed=3)
        report = replay(session, instances, arrivals)
        assert all(
            values_allclose(a, b) for a, b in zip(reference, report.outputs)
        )
        assert report.num_requests == len(instances)

    def test_policy_instance_accepted(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve(SizePolicy(n=len(instances)))
        handles = [session.submit(i) for i in instances]
        assert all(h.done for h in handles)
        assert all(
            values_allclose(a, h.result()) for a, h in zip(reference, handles)
        )

    def test_policy_args_with_instance_rejected(self, treelstm_setup):
        mod, params, _, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        with pytest.raises(ValueError, match="policy_args"):
            model.make_engine().session(policy=SizePolicy(2), policy_args={"n": 3})

    def test_max_batch_is_size_sugar(self, treelstm_setup):
        mod, params, _, _ = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).session(max_batch=3)
        assert isinstance(session.policy, SizePolicy)
        assert session.policy.n == 3
        assert session.max_batch == 3


class TestDeadlineSemantics:
    def test_deadline_flushes_on_poll(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        clock = SimulatedClock()
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("deadline", ms=10.0, clock=clock)

        handle = session.submit(instances[0])
        assert session.next_deadline() == pytest.approx(0.010)
        clock.advance(0.005)
        assert session.poll() is None  # deadline not reached
        assert not handle.done
        clock.advance(0.005)
        outputs = session.poll()  # deadline reached: round flushes
        assert outputs is not None and handle.done
        assert values_allclose(reference[0], handle.result())
        assert session.last_stats.flush_reason == "deadline"

    def test_deadline_anchors_on_oldest_request(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock()
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("deadline", ms=10.0, clock=clock)
        session.submit(instances[0])
        clock.advance(0.004)
        session.submit(instances[1])
        # later submits do not push the deadline out
        assert session.next_deadline() == pytest.approx(0.010)

    def test_deadline_resets_per_round(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock()
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("deadline", ms=10.0, clock=clock)
        session.submit(instances[0])
        clock.advance(0.010)
        session.poll()
        assert session.next_deadline() is None  # empty session: no deadline
        start = clock.now()
        session.submit(instances[1])
        assert session.next_deadline() == pytest.approx(start + 0.010)

    def test_late_submit_flushes_immediately(self, treelstm_setup):
        """A submit arriving after the round's deadline has passed flushes
        the round at once (wall-clock serving without a poller)."""
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock()
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("deadline", ms=10.0, clock=clock)
        first = session.submit(instances[0])
        clock.advance(0.020)
        session.submit(instances[1])
        assert first.done
        assert session.num_flushes == 1


class TestAdaptivePolicy:
    def test_sparse_traffic_flushes_small_batches(self, treelstm_setup):
        """When arrivals are far apart relative to the launch overhead the
        policy stops waiting almost immediately."""
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock()
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("adaptive", clock=clock)
        arrivals = [i * 10.0 for i in range(len(instances))]  # one per 10s
        report = replay(session, instances, arrivals)
        assert report.mean_batch < 2.0

    def test_backlog_batches_together(self, treelstm_setup):
        """Requests stamped in the past (piled up during execution) batch
        without waiting cost — continuous batching."""
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock(start=100.0)
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("adaptive", clock=clock)
        # all arrivals lie 1s in the past relative to the clock
        for i, inst in enumerate(instances):
            session.submit(inst, at=99.0 + i * 1e-4)
        assert session.pending_requests == len(instances)  # nothing flushed
        session.flush()
        assert session.last_stats.batch_size == len(instances)

    def test_wall_clock_submits_are_not_backlog(self, treelstm_setup):
        """Only explicitly backdated arrivals count as backlog: plain
        submits (no ``at=``) always run the cost/benefit rule, however long
        DFG construction takes inside submit()."""
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("adaptive")  # default WallClock
        session.submit(instances[0])
        assert not session.last_submit_backdated
        # backdated only when the caller passes a timestamp behind the clock
        clock = SimulatedClock(start=10.0)
        session2 = model.serve("adaptive", clock=clock)
        session2.submit(instances[0], at=9.0)
        assert session2.last_submit_backdated
        session2.submit(instances[1], at=clock.now())
        assert not session2.last_submit_backdated

    def test_estimates_update_on_flush(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("adaptive", clock=SimulatedClock())
        policy = session.policy
        prior = policy.round_launches
        for inst in instances:
            session.submit(inst)
        session.flush()
        assert policy.round_launches != prior
        assert policy.marginal_benefit_us(session) > 0


class TestRequestStats:
    def test_per_request_stats(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock()
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(flush_policy="manual", clock=clock)
        handles = []
        for inst in instances:
            handles.append(session.submit(inst))
            clock.advance(0.001)
        session.flush()
        stats = session.last_stats

        for handle in handles:
            rs = handle.stats
            assert rs.batch_size == len(instances)
            assert rs.flush_reason == "manual"
            assert rs.launch_share == pytest.approx(
                stats.kernel_calls / len(instances)
            )
            assert rs.latency_ms == pytest.approx(rs.queue_ms + rs.execute_ms)
            assert rs.completed_at > rs.submitted_at
        # the first request queued longer than the last; the loop advances
        # 1ms after every submit, so the first waited len(instances) ms
        assert handles[0].stats.queue_ms > handles[-1].stats.queue_ms
        assert handles[0].stats.queue_ms == pytest.approx(
            len(instances) * 1.0, rel=0.01
        )

    def test_run_stats_carry_flush_clock(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock(start=5.0)
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(max_batch=len(instances), clock=clock)
        for inst in instances:
            session.submit(inst)
        assert session.last_stats.flushed_at == pytest.approx(5.0)
        assert session.last_stats.flush_reason == "size"

    def test_result_before_flush_raises(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).serve("manual")
        handle = session.submit(instances[0])
        with pytest.raises(RuntimeError, match="flush"):
            handle.result()


class TestServer:
    def test_multi_endpoint_isolation(self, treelstm_setup, birnn_setup):
        """Two models behind one server (shared device) return each their
        own reference outputs, with per-flush stats accounted separately."""
        t_mod, t_params, t_instances, t_reference = treelstm_setup
        b_mod, b_params, b_instances, b_reference = birnn_setup
        server = Server(clock=SimulatedClock())
        server.add_endpoint(
            "trees", compile_model(t_mod, t_params, CompilerOptions()), policy="manual"
        )
        server.add_endpoint(
            "seqs", compile_model(b_mod, b_params, CompilerOptions()), policy="manual"
        )

        # interleaved traffic
        t_handles = []
        b_handles = []
        for i in range(max(len(t_instances), len(b_instances))):
            if i < len(t_instances):
                t_handles.append(server.submit("trees", t_instances[i]))
            if i < len(b_instances):
                b_handles.append(server.submit("seqs", b_instances[i]))
        server.flush_all()

        assert all(
            values_allclose(a, h.result()) for a, h in zip(t_reference, t_handles)
        )
        assert all(
            values_allclose(a, h.result()) for a, h in zip(b_reference, b_handles)
        )

        summary = server.summary()
        assert summary["trees"]["requests"] == len(t_instances)
        assert summary["seqs"]["requests"] == len(b_instances)
        # per-flush device counters are isolated despite the shared device
        solo = compile_model(t_mod, t_params, CompilerOptions()).session()
        for inst in t_instances:
            solo.submit(inst)
        solo.flush()
        assert summary["trees"]["kernel_launches"] == solo.last_stats.kernel_calls

    def test_endpoint_errors(self, treelstm_setup):
        mod, params, _, _ = treelstm_setup
        server = Server()
        model = compile_model(mod, params, CompilerOptions())
        server.add_endpoint("a", model)
        with pytest.raises(ValueError, match="already exists"):
            server.add_endpoint("a", model)
        with pytest.raises(KeyError, match="registered endpoints"):
            server.endpoint("missing")
        assert "a" in server and "missing" not in server

    def test_server_poll_fires_deadlines(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock()
        server = Server(clock=clock)
        model = compile_model(mod, params, CompilerOptions())
        server.add_endpoint("a", model, policy="deadline", ms=5.0)
        server.add_endpoint("b", model, policy="deadline", ms=15.0)
        ha = server.submit("a", instances[0])
        hb = server.submit("b", instances[1])
        assert server.next_deadline() == pytest.approx(0.005)
        clock.advance(0.006)
        assert server.poll() == 1  # only "a" was due
        assert ha.done and not hb.done

    def test_replay_server(self, treelstm_setup, birnn_setup):
        t_mod, t_params, t_instances, t_reference = treelstm_setup
        b_mod, b_params, b_instances, b_reference = birnn_setup
        server = Server(clock=SimulatedClock())
        server.add_endpoint(
            "trees", compile_model(t_mod, t_params, CompilerOptions()),
            policy="deadline", ms=5.0,
        )
        server.add_endpoint(
            "seqs", compile_model(b_mod, b_params, CompilerOptions()),
            policy="deadline", ms=5.0,
        )
        workload = [
            (t, "trees", inst)
            for t, inst in zip(poisson_arrivals(2000.0, len(t_instances), seed=1), t_instances)
        ] + [
            (t, "seqs", inst)
            for t, inst in zip(poisson_arrivals(2000.0, len(b_instances), seed=2), b_instances)
        ]
        reports = replay_server(server, workload)
        assert all(
            values_allclose(a, b)
            for a, b in zip(t_reference, reports["trees"].outputs)
        )
        assert all(
            values_allclose(a, b)
            for a, b in zip(b_reference, reports["seqs"].outputs)
        )


class TestTraffic:
    def test_poisson_arrivals_shape(self):
        arr = poisson_arrivals(100.0, 50, seed=1)
        assert len(arr) == 50
        assert all(b > a for a, b in zip(arr, arr[1:]))
        assert arr == poisson_arrivals(100.0, 50, seed=1)  # seeded
        assert arr != poisson_arrivals(100.0, 50, seed=2)

    def test_bursty_arrivals_group(self):
        arr = bursty_arrivals(100.0, 20, burst=5, seed=1)
        assert len(arr) == 20
        # bursts are simultaneous: only ceil(20/5) distinct timestamps
        assert len(set(arr)) == 4

    def test_replay_requires_simulated_clock(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).serve("manual")
        with pytest.raises(TypeError, match="SimulatedClock"):
            replay(session, instances, [0.0] * len(instances))

    def test_replay_report_sanity(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("size", n=2, clock=SimulatedClock())
        report = replay(session, instances, poisson_arrivals(1000.0, len(instances), seed=4))
        assert report.num_requests == len(instances)
        assert report.throughput_rps > 0
        assert report.p99_ms >= report.p50_ms > 0
        assert report.mean_batch >= 1.0
        assert report.kernel_launches > 0
        assert len(report.latencies_ms) == len(instances)
        assert all(
            values_allclose(a, b) for a, b in zip(reference, report.outputs)
        )

    def test_bursty_traffic_batches_bursts(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("deadline", ms=2.0, clock=SimulatedClock())
        arrivals = bursty_arrivals(5000.0, len(instances), burst=3, seed=7)
        report = replay(session, instances, arrivals)
        assert report.mean_batch >= 2.0  # whole bursts flush together
        assert all(
            values_allclose(a, b) for a, b in zip(reference, report.outputs)
        )


class TestPlanCache:
    def test_hits_on_identical_rounds(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(max_batch=len(instances))
        for round_no in range(4):
            handles = [session.submit(i) for i in instances]
            assert all(
                values_allclose(a, h.result())
                for a, h in zip(reference, handles)
            ), f"round {round_no} diverged"
        memory = session.last_stats.memory
        assert memory["plan_cache_hits"] == 3
        assert memory["plan_cache_misses"] == 1

    def test_structural_change_misses_then_rehits(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        module = MODEL_MODULES["treelstm"]
        _, _, size = module.build_for("test")
        other = module.make_batch(mod, size, 4, seed=77)
        other_reference = reference_run(mod, params, other)

        model = compile_model(mod, params, CompilerOptions())
        session = model.session()
        for batch, ref in ((instances, reference), (other, other_reference), (instances, reference)):
            handles = [session.submit(i) for i in batch]
            session.flush()
            assert all(
                values_allclose(a, h.result()) for a, h in zip(ref, handles)
            )
        memory = session.last_stats.memory
        # round 1 and 2 are distinct structures (two misses); round 3
        # replays round 1's plans
        assert memory["plan_cache_misses"] == 2
        assert memory["plan_cache_hits"] == 1

    def test_disabled_cache_never_hits(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions(plan_cache=False))
        session = model.session(max_batch=len(instances))
        for _ in range(3):
            for i in instances:
                session.submit(i)
        memory = session.last_stats.memory
        assert memory["plan_cache_hits"] == 0
        assert memory["plan_cache_misses"] == 0

    def test_one_shot_runs_leave_cache_dormant(self, treelstm_setup):
        """Only sessions arm the cache: plain run() calls pay no
        fingerprinting overhead and never count hits or misses."""
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        engine = model.make_engine()
        engine.run(instances)
        _, stats = engine.run(instances)
        assert stats.memory["plan_cache_hits"] == 0
        assert stats.memory["plan_cache_misses"] == 0

    def test_cached_plans_identical_operand_counts(self, treelstm_setup):
        """A cache hit reports the same operand classification the uncached
        planner derives."""
        mod, params, instances, _ = treelstm_setup
        counts = []
        for cached in (True, False):
            model = compile_model(mod, params, CompilerOptions(plan_cache=cached))
            session = model.session(max_batch=len(instances))
            for _ in range(2):
                for i in instances:
                    session.submit(i)
            memory = dict(session.last_stats.memory)
            memory.pop("plan_cache_hits"), memory.pop("plan_cache_misses")
            counts.append(memory)
        assert counts[0] == counts[1]

    def test_deferred_sessions_keep_residency(self):
        """Fiber-program session flushes preserve the device residency
        cache: round two reuses resident parameters instead of re-uploading
        them."""
        module = MODEL_MODULES["drnn"]
        mod, params, size = module.build_for("test")
        instances = module.make_batch(mod, size, 2, seed=3)
        model = compile_model(mod, params, CompilerOptions())
        session = model.session()
        assert model.uses_tdc
        per_round_bytes = []
        for _ in range(2):
            for i in instances:
                session.submit(i)
            session.flush()
            per_round_bytes.append(session.last_stats.device.get("num_memcpy", 0))
        assert per_round_bytes[1] < per_round_bytes[0]

    def test_cache_works_for_deferred_sessions(self):
        """Fiber (tensor-dependent control flow) sessions flush through
        engine.run; identical resubmissions still hit the cache."""
        module = MODEL_MODULES["drnn"]
        mod, params, size = module.build_for("test")
        instances = module.make_batch(mod, size, 2, seed=3)
        reference = reference_run(mod, params, instances)
        model = compile_model(mod, params, CompilerOptions())
        session = model.session()
        planner = session.engine.runtime.planner
        sizes = []
        for _ in range(3):
            handles = [session.submit(i) for i in instances]
            session.flush()
            assert all(
                values_allclose(a, h.result())
                for a, h in zip(reference, handles)
            )
            sizes.append(len(planner._plan_cache))
        memory = session.last_stats.memory
        assert memory["plan_cache_hits"] > 0
        # repeated identical flushes must not keep inserting templates:
        # every recurring round hits, and rounds pinned to earlier rounds'
        # concrete arenas (can never recur) are never inserted at all
        assert sizes[1] == sizes[2]


class TestSchedulerValidation:
    def test_unknown_scheduler_fails_at_compile(self, treelstm_setup):
        mod, params, _, _ = treelstm_setup
        with pytest.raises(ValueError, match="inline_depth"):
            compile_model(mod, params, CompilerOptions(scheduler="not_a_policy"))

    def test_unknown_scheduler_fails_for_vm_path(self, treelstm_setup):
        mod, params, _, _ = treelstm_setup
        with pytest.raises(ValueError, match="registered policies"):
            compile_model(
                mod, params, CompilerOptions(aot=False, scheduler="not_a_policy")
            )

    def test_known_scheduler_still_compiles(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions(scheduler="agenda"))
        outs, _ = model.run(instances)
        assert all(values_allclose(a, b) for a, b in zip(reference, outs))


class TestServeFacade:
    def test_serve_builds_policy_session(self, treelstm_setup):
        mod, params, _, _ = treelstm_setup
        clock = SimulatedClock()
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("deadline", ms=7.0, clock=clock)
        assert isinstance(session.policy, DeadlinePolicy)
        assert session.policy.ms == 7.0
        assert session.clock is clock

    def test_serve_default_is_adaptive(self, treelstm_setup):
        mod, params, _, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        assert isinstance(model.serve().policy, AdaptivePolicy)

    def test_vm_model_serve(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        vm = compile_model(mod, params, CompilerOptions(aot=False))
        session = vm.serve("size", n=len(instances))
        handles = [session.submit(i) for i in instances]
        assert all(h.done for h in handles)
        assert all(
            values_allclose(a, h.result()) for a, h in zip(reference, handles)
        )

    def test_top_level_exports(self):
        import repro

        assert repro.Server is Server
        assert isinstance(repro.make_flush_policy("size", n=2), SizePolicy)
        assert "deadline" in repro.available_flush_policies()

    def test_custom_policy_subclass(self, treelstm_setup):
        """Third-party policies plug in through FlushPolicy."""
        mod, params, instances, reference = treelstm_setup

        class EveryOther(FlushPolicy):
            name = "every_other"

            def on_submit(self, session, now):
                return session.pending_requests % 2 == 0

        model = compile_model(mod, params, CompilerOptions())
        session = model.serve(EveryOther())
        handles = [session.submit(i) for i in instances]
        session.flush()
        assert all(
            values_allclose(a, h.result()) for a, h in zip(reference, handles)
        )
        assert session.num_flushes >= len(instances) // 2
