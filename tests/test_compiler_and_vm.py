"""Tests for compiler options, code generation, the compiled-model driver and
the Relay-VM interpreter baseline."""

import numpy as np
import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.compiler import compile_module, py_func_name
from repro.utils import values_allclose
from repro.vm import Interpreter, VMModel
from tests.conftest import build_listing1_rnn, rnn_instances

HIDDEN = 8
LENGTHS = (3, 5, 2, 4)


@pytest.fixture(scope="module")
def rnn_compiled():
    mod, params = build_listing1_rnn(HIDDEN)
    instances = rnn_instances(mod, HIDDEN, LENGTHS)
    compiled = compile_module(mod, params, CompilerOptions(validate=True))
    reference = reference_run(mod, params, instances)
    return mod, params, instances, compiled, reference


class TestCompilerOptions:
    def test_effective_resolves_dependencies(self):
        opts = CompilerOptions(inline_depth=False).effective()
        assert not opts.concurrent_fibers and not opts.hoisting

    def test_effective_fusion_dependency(self):
        opts = CompilerOptions(kernel_fusion=False).effective()
        assert not opts.horizontal_fusion

    def test_ablation_levels_are_cumulative(self):
        levels = CompilerOptions.ablation_levels()
        assert len(levels) == 6
        names = [n for n, _ in levels]
        assert names[0] == "No kernel fusion" and names[-1] == "+Gather op fusion"
        assert not levels[0][1].kernel_fusion
        assert levels[-1][1].gather_fusion and levels[-1][1].inline_depth

    def test_all_off_is_still_aot(self):
        assert CompilerOptions.all_off().aot


class TestCodegen:
    def test_generated_source_structure(self, rnn_compiled):
        _, _, _, compiled, _ = rnn_compiled
        src = compiled.source
        assert f"def {py_func_name('main')}(" in src
        assert f"def {py_func_name('rnn')}(" in src
        assert "__rt.invoke(" in src
        assert "__depth[0] += 1" in src

    def test_hoisted_block_uses_static_depth_zero(self, rnn_compiled):
        _, _, _, compiled, _ = rnn_compiled
        # the hoisted input transformation is invoked at literal depth 0
        assert "__rt.invoke(" in compiled.source
        hoisted_lines = [
            line
            for line in compiled.source.splitlines()
            if "__rt.invoke(" in line and ", 0, __phase" in line
        ]
        assert hoisted_lines, "expected at least one hoisted invocation at static depth 0"

    def test_phase_update_emitted_in_main(self, rnn_compiled):
        _, _, _, compiled, _ = rnn_compiled
        assert "__phase = 1" in compiled.source

    def test_no_phase_update_when_disabled(self):
        mod, params = build_listing1_rnn(HIDDEN)
        compiled = compile_module(mod, params, CompilerOptions(program_phases=False))
        assert "__phase = 1" not in compiled.source

    def test_coarsening_reduces_block_count(self):
        mod, params = build_listing1_rnn(HIDDEN)
        coarse = compile_module(mod, params, CompilerOptions())
        fine = compile_module(mod, params, CompilerOptions(grain_size_coarsening=False))
        assert len(coarse.kernels) <= len(fine.kernels)

    def test_tdc_models_generate_generators(self):
        from repro.models import drnn

        mod, params, _ = drnn.build_for("test")
        compiled = compile_module(mod, params, CompilerOptions())
        assert compiled.uses_tdc
        assert "yield" in compiled.source
        assert "__fibers.spawn(" in compiled.source

    def test_non_tdc_models_have_no_yields(self, rnn_compiled):
        _, _, _, compiled, _ = rnn_compiled
        assert not compiled.uses_tdc
        assert "yield" not in compiled.source

    def test_kernel_names_exposed(self, rnn_compiled):
        _, _, _, compiled, _ = rnn_compiled
        names = compiled.kernel_names()
        assert names and any("dense" in n for n in names)


class TestCompiledModelDriver:
    def test_outputs_match_reference(self, rnn_compiled):
        mod, _, instances, compiled, reference = rnn_compiled
        outs, stats = compiled.run(instances)
        for r, o in zip(reference, outs):
            assert values_allclose(mod.from_list(r), mod.from_list(o))
        assert stats.batch_size == len(instances)

    def test_missing_weight_binding_raises(self):
        mod, params = build_listing1_rnn(HIDDEN)
        everything = dict(params)
        # bind every parameter -> no per-instance input left
        everything["inps"] = np.zeros((1, HIDDEN), np.float32)
        with pytest.raises(ValueError):
            compile_module(mod, everything, CompilerOptions())

    def test_instance_mapping_by_name(self, rnn_compiled):
        mod, params, instances, compiled, reference = rnn_compiled
        outs, _ = compiled.run([{"inps": instances[0]}])
        assert values_allclose(mod.from_list(reference[0]), mod.from_list(outs[0]))

    def test_stats_have_host_and_device_breakdown(self, rnn_compiled):
        _, _, instances, compiled, _ = rnn_compiled
        _, stats = compiled.run(instances)
        assert set(stats.host_ms) == {
            "dfg_construction",
            "scheduling",
            "memory_planning",
            "dispatch",
            "materialize",
        }
        assert stats.device["num_kernel_launches"] > 0
        assert stats.latency_ms >= stats.device_total_ms

    def test_run_is_repeatable(self, rnn_compiled):
        mod, _, instances, compiled, _ = rnn_compiled
        out1, _ = compiled.run(instances)
        out2, _ = compiled.run(instances)
        for a, b in zip(out1, out2):
            assert values_allclose(mod.from_list(a), mod.from_list(b))

    @pytest.mark.parametrize(
        "options",
        [
            CompilerOptions.all_off(),
            CompilerOptions(kernel_fusion=False),
            CompilerOptions(grain_size_coarsening=False),
            CompilerOptions(inline_depth=False),
            CompilerOptions(program_phases=False, ghost_ops=False),
            CompilerOptions(gather_fusion=False),
            CompilerOptions(hoisting=False),
            CompilerOptions(specialization=False),
        ],
    )
    def test_every_option_combination_is_numerically_correct(self, options):
        mod, params = build_listing1_rnn(HIDDEN)
        instances = rnn_instances(mod, HIDDEN, LENGTHS)
        reference = reference_run(mod, params, instances)
        compiled = compile_module(mod, params, options)
        outs, _ = compiled.run(instances)
        for r, o in zip(reference, outs):
            assert values_allclose(mod.from_list(r), mod.from_list(o))

    def test_batch_of_one(self, rnn_compiled):
        mod, _, instances, compiled, reference = rnn_compiled
        outs, stats = compiled.run(instances[:1])
        assert values_allclose(mod.from_list(reference[0]), mod.from_list(outs[0]))
        assert stats.batch_size == 1


class TestVM:
    def test_eager_interpreter_matches_itself_across_modes(self, rnn_compiled):
        mod, params, instances, _, reference = rnn_compiled
        vm = VMModel(module=mod, params=params)
        outs, stats = vm.run(instances)
        for r, o in zip(reference, outs):
            assert values_allclose(mod.from_list(r), mod.from_list(o))
        assert stats.kernel_calls > 0

    def test_vm_is_slower_than_aot(self, rnn_compiled):
        mod, params, instances, compiled, _ = rnn_compiled
        vm = VMModel(module=mod, params=params)
        _, vm_stats = vm.run(instances)
        _, aot_stats = compiled.run(instances)
        assert vm_stats.latency_ms > aot_stats.latency_ms

    def test_unbatched_vm_launches_more_kernels(self, rnn_compiled):
        mod, params, instances, _, _ = rnn_compiled
        batched = VMModel(module=mod, params=params)
        unbatched = VMModel(module=mod, params=params, batching=False)
        _, b_stats = batched.run(instances)
        _, u_stats = unbatched.run(instances)
        assert u_stats.kernel_calls > b_stats.kernel_calls

    def test_interpreter_rejects_bad_mode(self, rnn_compiled):
        mod, _, _, _, _ = rnn_compiled
        with pytest.raises(ValueError):
            Interpreter(mod, mode="jit")

    def test_compile_model_dispatches_on_aot_flag(self, rnn_compiled):
        mod, params, _, _, _ = rnn_compiled
        assert isinstance(compile_model(mod, params, CompilerOptions(aot=False)), VMModel)
