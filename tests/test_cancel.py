"""Tests for request lifecycle at the serving layer: cancellation of
pending round members (round-mates flush bit-identical, device counters
stay consistent), prepared-round discard on cancel, cancellation of
loop-queued admissions, deadline expiry on the inline and dispatch paths,
and the Endpoint.summary() queue-depth / oldest-pending-age gauges."""

import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.models import MODEL_MODULES
from repro.serve import Server, SimulatedClock
from repro.serve.request import RequestCancelled, RequestExpired
from repro.utils import values_allclose

BATCH = 5


@pytest.fixture(scope="module")
def treelstm_setup():
    module = MODEL_MODULES["treelstm"]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, BATCH, seed=21)
    reference = reference_run(mod, params, instances)
    return mod, params, instances, reference


def _session(setup, policy="manual", **kw):
    mod, params, _, _ = setup
    return compile_model(mod, params, CompilerOptions()).serve(
        policy, clock=SimulatedClock(), **kw
    )


class TestSessionCancel:
    @pytest.mark.parametrize("victim", [0, 2, BATCH - 1])
    def test_roundmates_unaffected(self, treelstm_setup, victim):
        """Cancelling any member of a pending round leaves the others'
        results bit-identical to a round that never contained it."""
        _, _, instances, reference = treelstm_setup
        survivors = [i for i in range(BATCH) if i != victim]

        # baseline: the round without the victim ever submitted
        base = _session(treelstm_setup)
        base_handles = [base.submit(instances[i]) for i in survivors]
        base.flush()

        sess = _session(treelstm_setup)
        handles = [sess.submit(inst) for inst in instances]
        assert sess.cancel(handles[victim]) is True
        assert sess.pending_requests == BATCH - 1
        sess.flush()

        with pytest.raises(RequestCancelled):
            handles[victim].result()
        assert handles[victim].failed
        for i, bh in zip(survivors, base_handles):
            assert values_allclose(handles[i].result(), bh.result())
            assert values_allclose(handles[i].result(), reference[i])
        assert sess.num_cancelled == 1
        # the flushed round priced exactly the survivors' work
        assert sess.last_stats.kernel_calls == base.last_stats.kernel_calls
        assert sess.requests_flushed == BATCH - 1

    def test_cancel_resolved_handle_returns_false(self, treelstm_setup):
        _, _, instances, reference = treelstm_setup
        sess = _session(treelstm_setup)
        h = sess.submit(instances[0])
        sess.flush()
        assert sess.cancel(h) is False
        assert h.cancel() is False
        assert values_allclose(h.result(), reference[0])

    def test_cancel_twice_returns_false(self, treelstm_setup):
        _, _, instances, _ = treelstm_setup
        sess = _session(treelstm_setup)
        h = sess.submit(instances[0])
        assert sess.cancel(h) is True
        assert sess.cancel(h) is False
        assert sess.num_cancelled == 1

    def test_cancel_whole_round_then_reuse(self, treelstm_setup):
        """Emptying a round by cancellation leaves the session serviceable:
        the next round flushes normally (and may restart its trace
        timestamps)."""
        _, _, instances, reference = treelstm_setup
        sess = _session(treelstm_setup)
        handles = [sess.submit(inst) for inst in instances[:3]]
        for h in handles:
            assert h.cancel() is True
        assert sess.pending_requests == 0
        h = sess.submit(instances[3])
        sess.flush()
        assert values_allclose(h.result(), reference[3])
        assert sess.num_cancelled == 3

    def test_handle_cancel_delegates_to_session(self, treelstm_setup):
        """RequestHandle.cancel() on a session-origin handle withdraws it
        without the caller touching the session API."""
        _, _, instances, reference = treelstm_setup
        sess = _session(treelstm_setup)
        h0 = sess.submit(instances[0])
        h1 = sess.submit(instances[1])
        assert h0.cancel() is True
        sess.flush()
        assert values_allclose(h1.result(), reference[1])
        with pytest.raises(RequestCancelled):
            h0.result()

    def test_cancel_discards_prepared_round(self, treelstm_setup):
        """A speculatively prepared round is invalidated by cancellation —
        admission diverged, so adopting it would execute a stale
        composition."""
        _, _, instances, reference = treelstm_setup
        # a policy with a flush prediction, so speculation can fire
        sess = _session(treelstm_setup, policy="deadline", ms=50.0)
        handles = [sess.submit(inst) for inst in instances[:3]]
        assert sess.consider_prepare(sess.clock.now()) is True
        assert sess.cancel(handles[1]) is True
        assert sess.speculation_aborts == 1
        sess.flush()
        assert sess.speculation_hits == 0
        assert values_allclose(handles[0].result(), reference[0])
        assert values_allclose(handles[2].result(), reference[2])


class TestLoopLifecycle:
    def test_cancel_queued_admission(self, treelstm_setup):
        """A request still queued at the loop is withdrawn before dispatch:
        it never joins a round, drain() does not wait on it, and the loop
        counts it."""
        mod, params, instances, reference = treelstm_setup
        server = Server()
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="size", n=1
        )
        loop = server.run()
        try:
            with loop._cond:  # loop thread cannot dispatch while we hold this
                h_cancel = server.submit("m", instances[0])
                h_keep = server.submit("m", instances[1])
                assert h_cancel.cancel() is True
                assert h_cancel.cancel() is False
            server.drain()
            with pytest.raises(RequestCancelled, match="queued for admission"):
                h_cancel.result(timeout=1.0)
            assert values_allclose(h_keep.result(timeout=5.0), reference[1])
            assert loop.num_cancelled == 1
        finally:
            server.shutdown()

    def test_deadline_expires_queued_admission(self, treelstm_setup):
        """A queued request whose deadline passed is dropped at dispatch,
        failing with RequestExpired; round-mates are unaffected."""
        mod, params, instances, reference = treelstm_setup
        server = Server()
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="size", n=1
        )
        loop = server.run()
        try:
            past = server.clock.now() - 1.0
            with loop._cond:
                h_dead = server.submit("m", instances[0], deadline=past)
                h_live = server.submit("m", instances[1])
            server.drain()
            with pytest.raises(RequestExpired, match="while the request was queued"):
                h_dead.result(timeout=1.0)
            assert values_allclose(h_live.result(timeout=5.0), reference[1])
            assert loop.num_expired == 1
        finally:
            server.shutdown()

    def test_deadline_expires_inline_submit(self, treelstm_setup):
        """Before the loop ever runs, intake is synchronous — the only way
        to expire is to arrive already past the deadline."""
        mod, params, instances, reference = treelstm_setup
        clock = SimulatedClock(start=10.0)
        server = Server(clock=clock)
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="manual"
        )
        h_dead = server.submit("m", instances[0], deadline=9.0)
        assert h_dead.failed
        with pytest.raises(RequestExpired, match="already passed at submit"):
            h_dead.result()
        assert server.loop.num_expired == 1
        h_live = server.submit("m", instances[1], deadline=11.0)
        server.flush_all()
        assert values_allclose(h_live.result(), reference[1])


class TestSummaryGauges:
    def test_queue_depth_and_oldest_pending_age(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock()
        server = Server(clock=clock)
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="manual"
        )
        assert server.summary()["m"]["queue_depth"] == 0
        assert server.summary()["m"]["oldest_pending_age_ms"] == 0.0

        server.submit("m", instances[0])
        clock.advance(0.004)
        server.submit("m", instances[1])
        summary = server.summary()["m"]
        assert summary["queue_depth"] == 2
        # the gauge tracks the *oldest* waiter
        assert summary["oldest_pending_age_ms"] == pytest.approx(4.0)

        server.flush_all()
        summary = server.summary()["m"]
        assert summary["queue_depth"] == 0
        assert summary["oldest_pending_age_ms"] == 0.0

    def test_summary_counts_cancelled(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        server = Server(clock=SimulatedClock())
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="manual"
        )
        h = server.submit("m", instances[0])
        keep = server.submit("m", instances[1])
        assert h.cancel() is True
        server.flush_all()
        summary = server.summary()["m"]
        assert summary["cancelled"] == 1
        assert summary["requests"] == 2
        assert keep.done and not keep.failed
