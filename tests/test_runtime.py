"""Tests for the runtime: device simulator, schedulers, fibers, executor."""

import numpy as np
import pytest

from repro.kernels import BlockKernel, LaunchRecord, single_op_block
from repro.runtime import (
    AcrobatRuntime,
    ActivityProfiler,
    DeviceSimulator,
    DynamicDepthScheduler,
    ExecutionOptions,
    FiberScheduler,
    FiberYield,
    InlineDepthScheduler,
    LazyTensor,
    agenda_schedule,
    dynamic_depth_schedule,
    materialize_value,
)
from repro.runtime.scheduler import NoBatchScheduler
from repro.runtime.tensor import DFGNode


def record(flops=1e5, bytes_read=1e4, bytes_written=1e4, name="k", scattered=0.0):
    return LaunchRecord(name, 4, flops, bytes_read, bytes_written, scattered)


class TestDeviceSimulator:
    def test_launch_charges_overhead_and_counts(self):
        dev = DeviceSimulator()
        t = dev.launch(record())
        assert t >= dev.spec.launch_overhead_us
        assert dev.counters.num_kernel_launches == 1
        assert dev.counters.api_time_us == dev.spec.api_overhead_us

    def test_bigger_kernels_take_longer(self):
        dev = DeviceSimulator()
        small = dev.kernel_time_us(record(flops=1e3, bytes_read=1e3, bytes_written=1e3), True)
        big = dev.kernel_time_us(record(flops=1e8, bytes_read=1e7, bytes_written=1e7), True)
        assert big > small

    def test_schedule_quality_scales_time(self):
        good = DeviceSimulator(schedule_table={"k": 1.0})
        bad = DeviceSimulator(schedule_table={"k": 0.5})
        r = record(flops=1e7, bytes_read=1e6, bytes_written=1e6)
        assert bad.kernel_time_us(r, True) > good.kernel_time_us(r, True)

    def test_scattered_penalty_only_when_gather_fused(self):
        dev = DeviceSimulator()
        # memory-bound kernel so the scattered-read penalty is visible
        r = record(flops=1e3, bytes_read=1e6, bytes_written=1e6, scattered=1e6)
        assert dev.kernel_time_us(r, gather_fused=True) > dev.kernel_time_us(r, gather_fused=False)

    def test_explicit_gather_is_its_own_launch(self):
        dev = DeviceSimulator()
        dev.gather(1e4)
        assert dev.counters.num_gather_launches == 1
        assert dev.counters.gather_time_us > 0

    def test_memcpy_and_residency(self):
        dev = DeviceSimulator()
        arr = np.zeros((64, 64), dtype=np.float32)
        t1 = dev.ensure_resident(arr)
        t2 = dev.ensure_resident(arr)
        assert t1 > 0 and t2 == 0.0
        assert dev.counters.num_memcpy == 1

    def test_reset_keeps_schedule_table(self):
        dev = DeviceSimulator(schedule_table={"k": 0.7})
        dev.launch(record())
        dev.reset()
        assert dev.counters.num_kernel_launches == 0
        assert dev.schedule_table["k"] == 0.7

    def test_launch_counts_by_kernel(self):
        dev = DeviceSimulator()
        dev.launch(record(name="a"))
        dev.launch(record(name="a"))
        dev.launch(record(name="b"))
        assert dev.counters.launches_by_kernel == {"a": 2, "b": 1}

    def test_gather_charges_api_and_bytes_per_call(self):
        dev = DeviceSimulator()
        dev.gather(1e4)
        dev.gather(2e4)
        assert dev.counters.num_gather_launches == 2
        assert dev.counters.bytes_gathered == pytest.approx(3e4)
        assert dev.counters.api_time_us == pytest.approx(2 * dev.spec.api_overhead_us)

    def test_ensure_resident_is_idempotent(self):
        dev = DeviceSimulator()
        arr = np.zeros((16, 16), dtype=np.float32)
        first = dev.ensure_resident(arr)
        assert first > 0.0
        for _ in range(5):
            assert dev.ensure_resident(arr) == 0.0
        assert dev.counters.num_memcpy == 1
        assert dev.counters.bytes_copied == pytest.approx(float(arr.nbytes))

    def test_reset_residency_forces_retransfer(self):
        dev = DeviceSimulator()
        arr = np.zeros((8, 8), dtype=np.float32)
        dev.ensure_resident(arr)
        dev.reset_residency()
        assert not dev.is_resident(arr)
        assert dev.ensure_resident(arr) > 0.0
        assert dev.counters.num_memcpy == 2

    def test_unbatched_memcpy_pays_per_call_overhead(self):
        batched = DeviceSimulator()
        unbatched = DeviceSimulator()
        arr = np.zeros((4, 4), dtype=np.float32)
        t_batched = batched.ensure_resident(arr, batch_transfers=True)
        t_unbatched = unbatched.ensure_resident(arr, batch_transfers=False)
        assert t_unbatched == pytest.approx(
            t_batched + unbatched.spec.memcpy_overhead_us
        )

    def test_device_reset_keeps_residency(self):
        dev = DeviceSimulator()
        arr = np.zeros((8, 8), dtype=np.float32)
        dev.ensure_resident(arr)
        dev.reset()  # clears counters only
        assert dev.is_resident(arr)
        assert dev.ensure_resident(arr) == 0.0

    def test_residency_not_fooled_by_recycled_ids(self):
        """The cache holds arrays weakly and verifies identity: a new array
        allocated at a freed array's address must still be charged."""
        dev = DeviceSimulator()
        arr = np.zeros((8, 8), dtype=np.float32)
        dev.ensure_resident(arr)
        del arr  # freed: CPython may hand its id() to the next allocation
        fresh = np.ones((8, 8), dtype=np.float32)
        assert dev.ensure_resident(fresh) > 0.0
        assert dev.counters.num_memcpy == 2


class TestProfiler:
    def test_track_accumulates(self):
        prof = ActivityProfiler()
        with prof.track("x"):
            pass
        with prof.track("x"):
            pass
        assert prof.counts["x"] == 2 and prof.ms("x") >= 0.0

    def test_add_and_bump(self):
        prof = ActivityProfiler()
        prof.add("sched", 0.002)
        prof.bump("nodes", 5)
        assert prof.ms("sched") == pytest.approx(2.0)
        assert prof.counts["nodes"] == 5

    def test_reset(self):
        prof = ActivityProfiler()
        prof.add("a", 1.0)
        prof.reset()
        assert prof.total_ms() == 0.0


def _make_nodes(kernel_ids, depths, phases=None):
    nodes = []
    for i, (k, d) in enumerate(zip(kernel_ids, depths)):
        phase = phases[i] if phases else 0
        nodes.append(DFGNode(k, [], d, phase, i, 1))
    return nodes


class TestSchedulers:
    def test_inline_depth_groups_by_phase_depth_block(self):
        nodes = _make_nodes([0, 0, 1, 0], [0, 0, 0, 1])
        batches = InlineDepthScheduler().schedule(nodes)
        assert [(b.block_id, len(b.nodes)) for b in batches] == [(0, 2), (1, 1), (0, 1)]

    def test_inline_depth_orders_phases_before_depths(self):
        nodes = _make_nodes([0, 0], [5, 0], phases=[0, 1])
        batches = InlineDepthScheduler().schedule(nodes)
        assert batches[0].nodes[0].depth == 5  # phase 0 first despite larger depth

    def test_dynamic_depth_scheduler_respects_dependencies(self):
        producer = DFGNode(0, [], 0, 0, 0, 1)
        consumer = DFGNode(1, [producer.outputs[0]], 0, 0, 0, 1)
        batches = DynamicDepthScheduler().schedule([consumer, producer])
        order = [b.block_id for b in batches]
        assert order.index(0) < order.index(1)

    def test_no_batch_scheduler(self):
        nodes = _make_nodes([0, 0, 0], [0, 0, 0])
        batches = NoBatchScheduler().schedule(nodes)
        assert len(batches) == 3 and all(b.size == 1 for b in batches)

    def test_generic_depth_schedule(self):
        deps = {"b": ["a"], "c": ["a"], "d": ["b", "c"]}
        nodes = ["a", "b", "c", "d"]
        batches = dynamic_depth_schedule(nodes, lambda n: deps.get(n, []), lambda n: "sig")
        assert batches[0] == ["a"] and set(batches[1]) == {"b", "c"} and batches[2] == ["d"]

    def test_agenda_schedule_batches_same_signature(self):
        deps = {"b1": ["a1"], "b2": ["a2"]}
        sig = {"a1": "A", "a2": "A", "b1": "B", "b2": "B"}
        batches = agenda_schedule(["a1", "a2", "b1", "b2"], lambda n: deps.get(n, []), lambda n: sig[n])
        assert len(batches) == 2
        assert set(batches[0]) == {"a1", "a2"}

    def test_agenda_schedule_respects_order(self):
        deps = {"c": ["a", "b"]}
        sig = {"a": "X", "b": "Y", "c": "X"}
        batches = agenda_schedule(["a", "b", "c"], lambda n: deps.get(n, []), lambda n: sig[n])
        flat = [n for b in batches for n in b]
        assert flat.index("c") > flat.index("a") and flat.index("c") > flat.index("b")


class TestFibers:
    def test_fibers_interleave_at_sync_points(self):
        trace = []

        def trigger():
            trace.append("T")

        def fiber(name):
            trace.append(f"{name}1")
            yield FiberYield.SYNC
            trace.append(f"{name}2")
            return name

        sched = FiberScheduler(trigger)
        results = sched.run([fiber("a"), fiber("b")])
        assert results == ["a", "b"]
        # both fibers reach their sync point before the single trigger
        assert trace.index("T") > trace.index("a1") and trace.index("T") > trace.index("b1")
        assert trace.count("T") == 1
        assert sched.num_sync_rounds == 1

    def test_fork_join_returns_child_results(self):
        def child(x):
            if False:
                yield
            return x * 2

        def parent(sched):
            h1 = sched.spawn(child(1))
            h2 = sched.spawn(child(2))
            results = yield ("join", [h1, h2])
            return sum(results)

        sched = FiberScheduler(lambda: None)
        assert sched.run([parent(sched)]) == [6]

    def test_nested_fork_join_with_sync(self):
        triggers = []

        def leaf(x):
            yield FiberYield.SYNC
            return x

        def parent(sched):
            h1 = sched.spawn(leaf(1))
            h2 = sched.spawn(leaf(2))
            results = yield ("join", [h1, h2])
            return results

        sched = FiberScheduler(lambda: triggers.append(1))
        assert sched.run([parent(sched)]) == [[1, 2]]
        assert len(triggers) == 1

    def test_plain_return_fiber(self):
        def fib():
            if False:
                yield
            return 42

        assert FiberScheduler(lambda: None).run([fib()]) == [42]


class TestExecutor:
    def _runtime(self, **opts):
        kernel = BlockKernel(single_op_block(0, "relu", 1))
        dense = BlockKernel(single_op_block(1, "dense", 2, shared=[False, True]))
        return AcrobatRuntime({0: kernel, 1: dense}, ExecutionOptions(**opts))

    def test_invoke_returns_lazy_tensor_and_defers(self):
        rt = self._runtime()
        x = np.ones((1, 4), np.float32)
        out = rt.invoke(0, 0, 0, [x])
        assert isinstance(out, LazyTensor) and not out.is_materialized
        with pytest.raises(RuntimeError):
            _ = out.value
        rt.trigger()
        np.testing.assert_allclose(out.value, np.maximum(x, 0))

    def test_batching_groups_same_depth_nodes(self):
        rt = self._runtime()
        outs = [rt.invoke(0, 0, 0, [np.full((1, 2), i, np.float32)]) for i in range(5)]
        rt.trigger()
        assert rt.num_batches_total == 1
        assert all(o.is_materialized for o in outs)

    def test_chained_dependencies_execute_in_order(self):
        rt = self._runtime()
        x = np.array([[-1.0, 2.0]], np.float32)
        a = rt.invoke(0, 0, 0, [x])
        b = rt.invoke(0, 1, 0, [a])
        rt.trigger()
        np.testing.assert_allclose(b.value, np.maximum(x, 0))

    def test_shared_argument_validation(self):
        rt = self._runtime(validate=True)
        w1 = np.ones((2, 2), np.float32)
        w2 = np.zeros((2, 2), np.float32)
        rt.invoke(1, 0, 0, [np.ones((1, 2), np.float32), w1])
        rt.invoke(1, 0, 0, [np.ones((1, 2), np.float32), w2])
        with pytest.raises(RuntimeError, match="shared"):
            rt.trigger()

    def test_explicit_gather_when_fusion_disabled(self):
        rt = self._runtime(gather_fusion=False)
        x = np.ones((1, 4), np.float32)
        # produce tensors from two different launches so they are scattered
        a = rt.invoke(0, 0, 0, [x])
        rt.trigger()
        b = rt.invoke(0, 0, 0, [x * 2])
        rt.trigger()
        rt.invoke(0, 1, 0, [a])
        rt.invoke(0, 1, 0, [b])
        rt.trigger()
        assert rt.device.counters.num_gather_launches >= 1

    def test_gather_fusion_avoids_gather_launches(self):
        rt = self._runtime(gather_fusion=True)
        x = np.ones((1, 4), np.float32)
        a = rt.invoke(0, 0, 0, [x])
        rt.trigger()
        b = rt.invoke(0, 0, 0, [x * 2])
        rt.trigger()
        rt.invoke(0, 1, 0, [a])
        rt.invoke(0, 1, 0, [b])
        rt.trigger()
        assert rt.device.counters.num_gather_launches == 0

    def test_stats_collection(self):
        rt = self._runtime()
        rt.invoke(0, 0, 0, [np.ones((1, 2), np.float32)])
        rt.trigger()
        stats = rt.collect_stats(batch_size=1)
        assert stats.kernel_calls >= 1
        assert stats.latency_ms > 0
        assert "kernel_time_us" in stats.summary()

    def test_reset_clears_state(self):
        rt = self._runtime()
        rt.invoke(0, 0, 0, [np.ones((1, 2), np.float32)])
        rt.trigger()
        rt.reset()
        assert rt.pending_count == 0 and rt.num_nodes_total == 0
        assert rt.device.counters.num_kernel_launches == 0

    def test_materialize_value_handles_nested_structures(self):
        rt = self._runtime()
        out = rt.invoke(0, 0, 0, [np.ones((1, 2), np.float32)])
        rt.trigger()
        nested = {"a"}  # set is returned untouched
        assert materialize_value([out, (out, None), nested])[0].shape == (1, 2)
