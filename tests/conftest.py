"""Shared fixtures for the test-suite."""

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.ir import (  # noqa: E402
    ScopeBuilder,
    call,
    ctor,
    function,
    match,
    op,
    pat_ctor,
    prelude_module,
    var,
)


def build_listing1_rnn(hidden: int = 8, classes: int = 4):
    """The paper's Listing-1 RNN, used as a small end-to-end fixture."""
    mod = prelude_module()
    nil, cons = mod.get_constructor("Nil"), mod.get_constructor("Cons")
    rnn_gv = mod.get_global_var("rnn")

    inps, state, bias, i_wt, h_wt = (
        var("inps"), var("state"), var("bias"), var("i_wt"), var("h_wt"),
    )
    inp, tail = var("inp"), var("tail")
    sb = ScopeBuilder()
    inp_linear = sb.let("inp_linear", op.add(bias, op.dense(inp, i_wt)))
    new_state = sb.let("new_state", op.sigmoid(op.add(inp_linear, op.dense(state, h_wt))))
    sb.ret(ctor(cons, new_state, call(rnn_gv, tail, new_state, bias, i_wt, h_wt)))
    body = match(inps, [(pat_ctor(nil), ctor(nil)), (pat_ctor(cons, inp, tail), sb.get())])
    mod.add_function("rnn", function([inps, state, bias, i_wt, h_wt], body, name="rnn"))

    rnn_bias, rnn_i, rnn_h, rnn_init = var("rnn_bias"), var("rnn_i_wt"), var("rnn_h_wt"), var("rnn_init")
    c_wt, c_bias, m_inps = var("c_wt"), var("c_bias"), var("inps")
    p = var("p")
    out_fn = function([p], op.relu(op.add(c_bias, op.dense(p, c_wt))))
    msb = ScopeBuilder()
    rnn_res = msb.let("rnn_res", call(rnn_gv, m_inps, rnn_init, rnn_bias, rnn_i, rnn_h))
    msb.ret(call(mod.get_global_var("map"), out_fn, rnn_res))
    mod.add_function(
        "main",
        function([rnn_bias, rnn_i, rnn_h, rnn_init, c_wt, c_bias, m_inps], msb.get(), name="main"),
    )

    rng = np.random.default_rng(0)
    params = {
        "rnn_bias": rng.standard_normal((1, hidden)).astype(np.float32) * 0.1,
        "rnn_i_wt": rng.standard_normal((hidden, hidden)).astype(np.float32) * 0.1,
        "rnn_h_wt": rng.standard_normal((hidden, hidden)).astype(np.float32) * 0.1,
        "rnn_init": np.zeros((1, hidden), dtype=np.float32),
        "c_wt": rng.standard_normal((hidden, classes)).astype(np.float32) * 0.1,
        "c_bias": np.zeros((1, classes), dtype=np.float32),
    }
    return mod, params


def rnn_instances(mod, hidden: int, lengths, seed: int = 1):
    rng = np.random.default_rng(seed)
    return [
        mod.make_list(
            [rng.standard_normal((1, hidden)).astype(np.float32) * 0.1 for _ in range(n)]
        )
        for n in lengths
    ]


@pytest.fixture(scope="session")
def rnn_module_and_params():
    return build_listing1_rnn()


@pytest.fixture
def rng():
    return np.random.default_rng(0)
