"""Tests for IR expressions, ADTs and patterns."""

import numpy as np
import pytest

from repro.ir import (
    ADTDef,
    ADTValue,
    AnyType,
    Call,
    Constant,
    ConstructorRef,
    Function,
    GlobalVar,
    OpRef,
    PatternConstructor,
    PatternTuple,
    PatternVar,
    PatternWildcard,
    ScalarType,
    TensorType,
    Var,
    is_ctor_call,
    is_global_call,
    is_op_call,
    iter_let_chain,
    make_let_chain,
    op,
    pattern_bound_vars,
    prelude_module,
    var,
)
from repro.ir.adt import bind, matches


class TestExprBasics:
    def test_vars_have_unique_ids(self):
        a, b = Var("x"), Var("x")
        assert a.vid != b.vid
        assert a is not b

    def test_constant_infers_tensor_type(self):
        c = Constant(np.zeros((2, 3), dtype=np.float32))
        assert isinstance(c.ty, TensorType)
        assert c.ty.shape == (2, 3)

    def test_constant_infers_scalar_types(self):
        assert Constant(1.5).ty == ScalarType("float32")
        assert Constant(3).ty == ScalarType("int32")
        assert Constant(True).ty == ScalarType("bool")

    def test_call_args_are_tuple(self):
        c = Call(OpRef("add"), [Var("a"), Var("b")])
        assert isinstance(c.args, tuple) and len(c.args) == 2

    def test_call_attrs_copied(self):
        attrs = {"axis": 1}
        c = Call(OpRef("concat"), [Var("a")], attrs)
        attrs["axis"] = 2
        assert c.attrs["axis"] == 1

    def test_function_records_name_attr(self):
        f = Function([Var("x")], Var("x"), attrs={"name": "id"})
        assert f.attrs["name"] == "id"


class TestExprPredicates:
    def test_is_op_call(self):
        e = op.dense(var("x"), var("w"))
        assert is_op_call(e)
        assert is_op_call(e, "dense")
        assert not is_op_call(e, "add")
        assert not is_op_call(var("x"))

    def test_is_global_call(self):
        gv = GlobalVar("f")
        e = Call(gv, [var("x")])
        assert is_global_call(e)
        assert is_global_call(e, "f")
        assert not is_global_call(e, "g")

    def test_is_ctor_call(self):
        mod = prelude_module()
        nil = mod.get_constructor("Nil")
        e = Call(ConstructorRef(nil), [])
        assert is_ctor_call(e)
        assert is_ctor_call(e, "Nil")
        assert not is_ctor_call(e, "Cons")


class TestLetChains:
    def test_iter_and_make_roundtrip(self):
        x, y = var("x"), var("y")
        body = op.add(x, y)
        chain = make_let_chain([(x, Constant(1.0)), (y, Constant(2.0))], body)
        bindings, final = iter_let_chain(chain)
        assert [v.name for v, _ in bindings] == ["x", "y"]
        assert final is body

    def test_empty_chain(self):
        body = var("z")
        assert iter_let_chain(body) == ([], body)
        assert make_let_chain([], body) is body


class TestADT:
    def test_adtdef_constructor_lookup(self):
        adt = ADTDef("Pair", [("MkPair", [AnyType(), AnyType()])])
        ctor = adt.constructor("MkPair")
        assert ctor.arity == 2
        assert ctor.tag == 0
        assert "MkPair" in adt

    def test_adt_value_arity_check(self):
        adt = ADTDef("Pair", [("MkPair", [AnyType(), AnyType()])])
        with pytest.raises(ValueError):
            ADTValue(adt.constructor("MkPair"), [1])

    def test_constructor_tags_are_dense(self):
        mod = prelude_module()
        assert mod.get_constructor("Nil").tag == 0
        assert mod.get_constructor("Cons").tag == 1

    def test_make_and_from_list_roundtrip(self):
        mod = prelude_module()
        items = [1, 2, 3, 4]
        assert mod.from_list(mod.make_list(items)) == items

    def test_make_list_empty(self):
        mod = prelude_module()
        assert mod.from_list(mod.make_list([])) == []


class TestPatterns:
    def setup_method(self):
        self.mod = prelude_module()
        self.nil = self.mod.get_constructor("Nil")
        self.cons = self.mod.get_constructor("Cons")

    def test_matches_constructor(self):
        lst = self.mod.make_list([1])
        assert matches(PatternConstructor(self.cons, []), lst)
        assert not matches(PatternConstructor(self.nil, []), lst)

    def test_matches_wildcard_and_var(self):
        lst = self.mod.make_list([1])
        assert matches(PatternWildcard(), lst)
        assert matches(PatternVar(var("x")), lst)

    def test_bind_constructor_fields(self):
        h, t = var("h"), var("t")
        pattern = PatternConstructor(self.cons, [PatternVar(h), PatternVar(t)])
        lst = self.mod.make_list([7, 8])
        env = {}
        bind(pattern, lst, env)
        assert env[id(h)] == 7
        assert self.mod.from_list(env[id(t)]) == [8]

    def test_bind_tuple_pattern(self):
        a, b = var("a"), var("b")
        pattern = PatternTuple([PatternVar(a), PatternVar(b)])
        env = {}
        bind(pattern, (1, 2), env)
        assert env[id(a)] == 1 and env[id(b)] == 2

    def test_pattern_bound_vars_order(self):
        h, t = var("h"), var("t")
        pattern = PatternConstructor(self.cons, [PatternVar(h), PatternVar(t)])
        assert pattern_bound_vars(pattern) == [h, t]

    def test_constructor_pattern_arity_check(self):
        with pytest.raises(ValueError):
            PatternConstructor(self.cons, [PatternWildcard()])
