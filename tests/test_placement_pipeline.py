"""Tests for the depth-staged placements: the stage balancer, the pipeline
and tensor-parallel policies across models / device counts / scheduler
policies, per-lane timeline staging, and bitwise replay determinism."""

import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.devices import (
    DeviceGroup,
    PipelinePlacement,
    TensorParallelPlacement,
    make_placement,
    partition_stages,
)
from repro.models import MODEL_MODULES
from repro.serve.clock import SimulatedClock
from repro.serve.loop import DeviceTimeline
from repro.serve.traffic import bursty_arrivals, replay_continuous
from repro.utils import values_allclose

SCHEDULERS = ("inline_depth", "dynamic_depth", "agenda", "nobatch", "dynet")
STAGED_PLACEMENTS = ("pipeline", "tensor_parallel")


def build(model_name, batch=8, seed=11, scheduler=None):
    module = MODEL_MODULES[model_name]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, batch, seed=seed)
    reference = reference_run(mod, params, instances)
    compiled = compile_model(mod, params, CompilerOptions(scheduler=scheduler))
    return compiled, instances, reference


def _make_nodes(instance_ids, block_id=0):
    from repro.runtime.tensor import DFGNode

    return [
        DFGNode(
            block_id=block_id,
            args=(),
            depth=0,
            phase=0,
            instance_id=i,
            num_outputs=1,
        )
        for i in instance_ids
    ]


def _batch(block_id, size=4):
    from repro.runtime.scheduler import ScheduledBatch

    return ScheduledBatch(
        block_id=block_id, nodes=_make_nodes(range(size), block_id)
    )


def _assert_counters_sum(stats):
    assert stats.per_device
    total = sum(d["total_device_us"] for d in stats.per_device)
    assert total == pytest.approx(stats.device["total_device_us"])
    launches = sum(d["num_kernel_launches"] for d in stats.per_device)
    assert launches == stats.device["num_kernel_launches"]


# ---------------------------------------------------------------------------
# Stage balancer (the linear-partition DP)
# ---------------------------------------------------------------------------


class TestPartitionStages:
    def test_empty_and_single_stage(self):
        assert partition_stages([], 3) == []
        assert partition_stages([1.0, 2.0, 3.0], 1) == [(0, 3)]

    def test_balanced_split(self):
        assert partition_stages([1.0, 1.0, 1.0, 1.0], 2) == [(0, 2), (2, 4)]

    def test_heavy_head_isolated(self):
        # one dominant item gets its own stage regardless of position
        assert partition_stages([5.0, 1.0, 1.0, 1.0], 2) == [(0, 1), (1, 4)]

    def test_heavy_tail_isolated(self):
        assert partition_stages([1.0, 1.0, 1.0, 5.0], 2) == [(0, 3), (3, 4)]

    def test_fewer_items_than_stages(self):
        # each item its own stage; no empty stages emitted
        assert partition_stages([3.0, 1.0], 4) == [(0, 1), (1, 2)]

    def test_stages_cover_in_order(self):
        costs = [2.0, 4.0, 1.0, 3.0, 2.0, 5.0, 1.0]
        stages = partition_stages(costs, 3)
        assert stages[0][0] == 0 and stages[-1][1] == len(costs)
        for (_, e1), (s2, _) in zip(stages, stages[1:]):
            assert e1 == s2

    def test_deterministic(self):
        costs = [1.0, 2.0, 1.0, 2.0, 1.0]
        assert partition_stages(costs, 3) == partition_stages(costs, 3)


# ---------------------------------------------------------------------------
# PipelinePlacement: stage assignment and rebalancing
# ---------------------------------------------------------------------------


class TestPipelineStaging:
    def test_single_round_partition_follows_observed_cost(self):
        policy = PipelinePlacement()
        group = DeviceGroup(2)
        spec = group.spec
        heavy = 400.0 * 4 + spec.launch_overhead_us
        light = 10.0 * 4 + spec.launch_overhead_us
        for _ in range(3):
            policy.observe(0, 4, heavy, 1, spec)
            for b in (1, 2, 3):
                policy.observe(b, 4, light, 1, spec)
        batches = [_batch(b) for b in range(4)]
        policy.place_round(batches, group, {})
        # the heavy first block earns its own stage
        assert [b.device for b in batches] == [0, 1, 1, 1]

    def test_rebalances_when_observed_costs_shift(self):
        policy = PipelinePlacement()
        group = DeviceGroup(2)
        spec = group.spec
        heavy = 400.0 * 4 + spec.launch_overhead_us
        light = 10.0 * 4 + spec.launch_overhead_us
        for _ in range(3):
            policy.observe(0, 4, heavy, 1, spec)
            for b in (1, 2, 3):
                policy.observe(b, 4, light, 1, spec)
        batches = [_batch(b) for b in range(4)]
        policy.place_round(batches, group, {})
        assert [b.device for b in batches] == [0, 1, 1, 1]
        # the workload shifts: block 3 becomes the heavy one.  Enough fresh
        # observations move the EWMAs and the cut point follows.
        for _ in range(8):
            policy.observe(3, 4, heavy, 1, spec)
            for b in (0, 1, 2):
                policy.observe(b, 4, light, 1, spec)
        batches = [_batch(b) for b in range(4)]
        policy.place_round(batches, group, {})
        assert [b.device for b in batches] == [0, 0, 0, 1]

    def test_multi_round_runs_stage_across_rounds(self):
        # a fiber-shaped run: one single-batch round per depth step.  The
        # first run has no shape estimate and stays on stage 0 (ramp); the
        # second stages monotonically across the whole group.
        policy = PipelinePlacement()
        group = DeviceGroup(4)
        first_run = []
        for r in range(8):
            batches = [_batch(r)]
            policy.place_round(batches, group, {})
            first_run.append(batches[0].device)
        assert first_run == [0] * 8
        policy.note_reset()
        second_run = []
        for r in range(8):
            batches = [_batch(r)]
            policy.place_round(batches, group, {})
            second_run.append(batches[0].device)
        assert second_run == sorted(second_run)  # monotone depth staging
        assert second_run[0] == 0
        assert len(set(second_run)) == 4  # every member gets a stage
        policy.note_reset()

    def test_snapshot_restore_rolls_back_run_progress(self):
        policy = PipelinePlacement()
        group = DeviceGroup(2)
        policy.place_round([_batch(0)], group, {})
        state = policy.snapshot_state()
        policy.place_round([_batch(1)], group, {})
        policy.place_round([_batch(2)], group, {})
        policy.restore_state(state)
        assert policy.snapshot_state() == state

    def test_registry_construction(self):
        assert isinstance(make_placement("pipeline"), PipelinePlacement)
        assert isinstance(
            make_placement("tensor_parallel"), TensorParallelPlacement
        )


# ---------------------------------------------------------------------------
# Reference identity: staged placements x devices x scheduler policies
# ---------------------------------------------------------------------------


class TestStagedPlacementEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("placement", STAGED_PLACEMENTS)
    @pytest.mark.parametrize("devices", [2, 4])
    def test_reference_identical(self, scheduler, placement, devices):
        compiled, instances, reference = build("treelstm", scheduler=scheduler)
        engine = compiled.make_engine(devices=devices, placement=placement)
        # two runs: the first seeds the cost observer, the second places
        # with learned costs (splits / staging engaged)
        for _ in range(2):
            outputs, stats = engine.run(instances)
            assert all(
                values_allclose(a, b) for a, b in zip(reference, outputs)
            )
            _assert_counters_sum(stats)

    @pytest.mark.parametrize("model_name", ["stackrnn", "nestedrnn"])
    def test_pipeline_stages_fiber_programs(self, model_name):
        # deep fiber models are the pipeline's home turf: the second run
        # (learned run shape) spreads depth across members, results and
        # accounting identical
        compiled, instances, reference = build(model_name, batch=4)
        engine = compiled.make_engine(devices=2, placement="pipeline")
        outputs, _ = engine.run(instances)
        assert all(values_allclose(a, b) for a, b in zip(reference, outputs))
        outputs, stats = engine.run(instances)
        assert all(values_allclose(a, b) for a, b in zip(reference, outputs))
        _assert_counters_sum(stats)
        busy = [d["total_device_us"] for d in stats.per_device]
        assert sum(1 for b in busy if b > 0) == 2

    def test_tensor_parallel_gather_accounting(self):
        from repro.runtime.device import GPUSpec

        # a compute-starved spec: per-block work dwarfs launch overhead and
        # the gather cost, so the splitter's cost model actually fires at
        # test sizes (on a datacenter spec nothing amortizes a split)
        slow = GPUSpec(
            name="slow-test",
            launch_overhead_us=5.0,
            api_overhead_us=4.0,
            mem_bandwidth_gbps=1.0,
            peak_gflops=0.5,
            pcie_bandwidth_gbps=4.0,
            memcpy_overhead_us=7.0,
            saturation_flops=5.0e4,
            min_utilization=0.05,
        )
        compiled, instances, reference = build("treelstm")
        engine = compiled.make_engine(
            devices=DeviceGroup(2, spec=slow, interconnect="nvlink"),
            placement="tensor_parallel",
        )
        _, first = engine.run(instances)
        # unobserved blocks never split: no gathers, no partial arenas
        assert first.device["num_peer_transfers"] == 0
        assert first.memory.get("partial_arenas", 0) == 0
        outputs, second = engine.run(instances)
        assert all(values_allclose(a, b) for a, b in zip(reference, outputs))
        _assert_counters_sum(second)
        # observed heavy blocks split: 1/k-cost shards on both members,
        # peer-priced gathers assembling partials on the home device, and
        # the planner counts the partial-output arenas
        assert second.device["num_peer_transfers"] > 0
        assert second.device["peer_time_us"] > 0
        assert second.memory.get("partial_arenas", 0) > 0
        busy = [d["total_device_us"] for d in second.per_device]
        assert all(b > 0 for b in busy)
        # splitting charges extra launches (one per extra member)
        assert (
            second.device["num_kernel_launches"]
            > first.device["num_kernel_launches"]
        )


# ---------------------------------------------------------------------------
# Per-lane timeline staging
# ---------------------------------------------------------------------------


class TestDeviceTimelineLanes:
    def test_staged_shares_chain_across_lanes(self):
        tl = DeviceTimeline(start=0.0, num_devices=2)
        done = tl.launch_round(0.0, [(0, 1.0), (1, 2.0)], staged=True)
        assert done == pytest.approx(3.0)
        # lane 0 freed after its stage; lane 1 holds the round's tail
        assert tl._lanes[0] == pytest.approx(1.0)
        assert tl._lanes[1] == pytest.approx(3.0)
        # the next round's stage 0 starts the moment lane 0 frees — while
        # round 1's stage 1 still runs downstream — and its stage 1 queues
        # behind lane 1: steady state is set by the busiest stage
        done = tl.launch_round(0.5, [(0, 1.0), (1, 2.0)], staged=True)
        assert done == pytest.approx(5.0)
        assert tl._lanes[0] == pytest.approx(2.0)

    def test_concurrent_shares_occupy_lanes_independently(self):
        tl = DeviceTimeline(start=0.0, num_devices=2)
        done = tl.launch_round(0.0, [(0, 1.0), (1, 2.0)], staged=False)
        assert done == pytest.approx(2.0)
        assert tl._lanes[0] == pytest.approx(1.0)
        assert tl._lanes[1] == pytest.approx(2.0)
        assert tl.busy_until == pytest.approx(2.0)

    def test_empty_shares_degenerate_to_aggregate_launch(self):
        tl = DeviceTimeline(start=0.0, num_devices=2)
        done = tl.launch_round(1.0, [], staged=True)
        assert done == pytest.approx(1.0)
        assert tl.rounds_launched == 1

    def test_aggregate_launch_occupies_every_lane(self):
        tl = DeviceTimeline(start=0.0, num_devices=3)
        tl.launch(0.0, 2.0)
        assert all(lane == pytest.approx(2.0) for lane in tl._lanes)


# ---------------------------------------------------------------------------
# Bitwise replay determinism (continuous batching, prepare on)
# ---------------------------------------------------------------------------


class TestReplayDeterminism:
    @pytest.mark.parametrize("placement", STAGED_PLACEMENTS)
    def test_bitwise_with_prepare(self, placement):
        # a non-fiber model: fiber sessions defer and never prepare, so
        # treelstm is what actually exercises speculative placement
        # (snapshot/restore) against the staged timeline
        from repro.experiments.continuous import _bitwise_equal

        compiled, instances, reference = build("treelstm")
        arrivals = bursty_arrivals(500.0, len(instances), burst=4, seed=7)

        def once():
            session = compiled.serve(
                "size",
                n=4,
                clock=SimulatedClock(),
                devices=DeviceGroup(2, interconnect="nvlink"),
                placement=placement,
            )
            return replay_continuous(
                session,
                instances,
                arrivals,
                deterministic=True,
                host_model=(0.5, 0.05),
                prepare=True,
            )

        first, second = once(), once()
        assert all(
            values_allclose(a, b) for a, b in zip(reference, first.outputs)
        )
        assert first.latencies_ms == second.latencies_ms
        assert _bitwise_equal(first.outputs, second.outputs)
