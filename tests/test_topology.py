"""Tests for the sharded serving front door: the loop-topology registry
(single / per_device / per_endpoint), SLO-aware admission (priority
classes, token-bucket tenant quotas, deadline-slack shedding), cross-loop
work-stealing, the deterministic multi-loop trace driver behind
``Server.run_trace``, and the multi-tenant ``tenant_mix`` generator."""

import pytest

from tests.conftest import build_listing1_rnn, rnn_instances
from repro import CompilerOptions, compile_model, reference_run
from repro.serve import (
    QuotaExceeded,
    RequestShed,
    Server,
    SimulatedClock,
    TenantSpec,
    TokenBucket,
    available_topologies,
    make_topology,
    priority_rank,
    select_shed_victim,
    tenant_mix,
)
from repro.utils import values_allclose

HOST_MODEL = (2.0, 0.75)
LENGTHS = [3, 4, 5, 6] * 6


@pytest.fixture(scope="module")
def rnn_setup():
    mod, params = build_listing1_rnn()
    instances = rnn_instances(mod, 8, LENGTHS)
    reference = reference_run(mod, params, instances)
    model = compile_model(mod, params, CompilerOptions())
    return model, instances, reference


def _serve(model, instances, topology="single", gap=0.001, meta=None, **kw):
    """One fresh server, one endpoint, one deterministic trace replay."""
    srv = Server(clock=SimulatedClock(), devices=4, topology=topology, **kw)
    srv.add_endpoint("m", model, policy="adaptive")
    workload = []
    for i, inst in enumerate(instances):
        if meta is None:
            workload.append((gap * i, "m", inst))
        else:
            workload.append((gap * i, "m", inst, meta(i)))
    handles = srv.run_trace(workload, deterministic=True, host_model=HOST_MODEL)
    return srv, handles["m"]


class TestRegistry:
    def test_builtin_topologies_registered(self):
        names = available_topologies()
        assert {"single", "per_device", "per_endpoint"} <= set(names)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown loop topology"):
            make_topology("no-such-topology")

    def test_per_device_requires_even_slices(self, rnn_setup):
        model, instances, _ = rnn_setup
        srv = Server(
            clock=SimulatedClock(),
            devices=4,
            topology="per_device",
            topology_args={"members_per_loop": 3},
        )
        srv.add_endpoint("m", model, policy="adaptive")
        with pytest.raises(ValueError, match="divide evenly"):
            srv.run_trace([(0.0, "m", instances[0])])

    def test_reserved_endpoint_names(self, rnn_setup):
        model, _, _ = rnn_setup
        srv = Server(clock=SimulatedClock(), devices=2)
        for name in ("devices", "tenants", "loops"):
            with pytest.raises(ValueError, match="reserved"):
                srv.add_endpoint(name, model)


class TestTokenBucket:
    def test_burst_then_refill(self):
        b = TokenBucket(rate=10.0, burst=2)
        assert b.try_take(0.0)
        assert b.try_take(0.0)
        assert not b.try_take(0.0)  # burst exhausted
        assert not b.try_take(0.05)  # half a token refilled: still short
        assert b.try_take(0.1)  # one full token back

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=100.0, burst=3)
        for _ in range(3):
            assert b.try_take(0.0)
        # a long idle period refills to the cap, not beyond
        for _ in range(3):
            assert b.try_take(10.0)
        assert not b.try_take(10.0)


class TestShedVictimSelection:
    def test_priority_outranks_slack(self):
        # (handle-like) tuples: select_shed_victim works on objects with
        # priority + slack(now); use simple stand-ins
        class R:
            def __init__(self, priority, slack):
                self.priority = priority
                self._slack = slack

            def slack(self, now):
                return self._slack

        pool = [R("interactive", 0.001), R("batch", 0.0005), R("standard", 2.0)]
        # lowest priority class loses even with the least slack
        assert select_shed_victim(pool, now=0.0) == 1

    def test_most_slack_loses_within_class(self):
        class R:
            def __init__(self, slack):
                self.priority = "standard"
                self._slack = slack

            def slack(self, now):
                return self._slack

        pool = [R(0.010), R(0.050), R(0.002)]
        assert select_shed_victim(pool, now=0.0) == 1

    def test_priority_rank_ordering(self):
        assert (
            priority_rank("batch")
            < priority_rank("standard")
            < priority_rank("interactive")
        )


class TestTraceTopologies:
    def test_per_device_matches_reference_and_single(self, rnn_setup):
        model, instances, reference = rnn_setup
        _, h_single = _serve(model, instances, "single")
        _, h_multi = _serve(model, instances, "per_device")
        for hs in (h_single, h_multi):
            assert all(not h.failed for h in hs)
            assert all(
                values_allclose(h.result(), r) for h, r in zip(hs, reference)
            )

    def test_per_device_uses_every_loop(self, rnn_setup):
        model, instances, _ = rnn_setup
        srv, _ = _serve(model, instances, "per_device", gap=0.0)
        loops = srv.summary()["loops"]
        assert len(loops) == 4
        assert sum(g["admitted"] for g in loops.values()) == len(instances)

    def test_double_replay_bit_for_bit(self, rnn_setup):
        model, instances, _ = rnn_setup
        _, h1 = _serve(model, instances, "per_device")
        _, h2 = _serve(model, instances, "per_device")
        assert [h.stats.completed_at for h in h1] == [
            h.stats.completed_at for h in h2
        ]
        assert [h.stats.latency_ms for h in h1] == [
            h.stats.latency_ms for h in h2
        ]

    def test_per_device_beats_single_when_host_bound(self, rnn_setup):
        model, instances, _ = rnn_setup
        _, h1 = _serve(model, instances, "single")
        _, h4 = _serve(model, instances, "per_device")
        horizon = lambda hs: max(h.stats.completed_at for h in hs)  # noqa: E731
        assert horizon(h4) < horizon(h1)

    def test_per_endpoint_one_loop_per_model(self, rnn_setup):
        model, instances, reference = rnn_setup
        srv = Server(clock=SimulatedClock(), devices=4, topology="per_endpoint")
        srv.add_endpoint("a", model, policy="adaptive")
        srv.add_endpoint("b", model, policy="adaptive")
        workload = [
            (0.001 * i, "a" if i % 2 == 0 else "b", inst)
            for i, inst in enumerate(instances)
        ]
        handles = srv.run_trace(
            workload, deterministic=True, host_model=HOST_MODEL
        )
        assert len(srv.summary()["loops"]) == 2
        outs = {"a": handles["a"], "b": handles["b"]}
        for name, hs in outs.items():
            assert all(not h.failed for h in hs)
        merged = []
        ia = iter(handles["a"])
        ib = iter(handles["b"])
        for i in range(len(instances)):
            merged.append(next(ia if i % 2 == 0 else ib))
        assert all(
            values_allclose(h.result(), r) for h, r in zip(merged, reference)
        )


class TestWorkStealing:
    def test_stolen_run_matches_unstolen_bitwise(self, rnn_setup):
        """Pin every arrival to loop0: siblings steal.  Results must be
        bitwise identical to the same pinned run with stealing disabled."""
        model, instances, reference = rnn_setup
        pin = lambda i: {"loop": 0}  # noqa: E731
        srv_steal, h_steal = _serve(
            model,
            instances, "per_device", gap=0.00001, meta=pin
        )
        srv_nosteal, h_nosteal = _serve(
            model,
            instances,
            "per_device",
            gap=0.00001,
            meta=pin,
            topology_args={"steal_min": None},
        )
        stolen = sum(
            g["stolen_out"] for g in srv_steal.summary()["loops"].values()
        )
        assert stolen > 0, "pinned overload must trigger stealing"
        assert (
            sum(
                g["stolen_out"]
                for g in srv_nosteal.summary()["loops"].values()
            )
            == 0
        )
        for a, b, r in zip(h_steal, h_nosteal, reference):
            assert not a.failed and not b.failed
            assert values_allclose(a.result(), r)
            assert values_allclose(b.result(), r)

    def test_stealing_is_replay_deterministic(self, rnn_setup):
        model, instances, _ = rnn_setup
        pin = lambda i: {"loop": 0}  # noqa: E731
        srv1, h1 = _serve(model, instances, "per_device", gap=0.00001, meta=pin)
        srv2, h2 = _serve(model, instances, "per_device", gap=0.00001, meta=pin)
        assert srv1.summary()["loops"] == srv2.summary()["loops"]
        assert [h.stats.completed_at for h in h1] == [
            h.stats.completed_at for h in h2
        ]

    def test_stealing_shortens_pinned_backlog(self, rnn_setup):
        model, instances, _ = rnn_setup
        pin = lambda i: {"loop": 0}  # noqa: E731
        _, h_steal = _serve(model, instances, "per_device", gap=0.00001, meta=pin)
        _, h_nosteal = _serve(
            model,
            instances,
            "per_device",
            gap=0.00001,
            meta=pin,
            topology_args={"steal_min": None},
        )
        horizon = lambda hs: max(h.stats.completed_at for h in hs)  # noqa: E731
        assert horizon(h_steal) <= horizon(h_nosteal)


class TestSLOAdmission:
    def test_quota_enforced_at_admission(self, rnn_setup):
        model, instances, _ = rnn_setup
        srv, handles = _serve(
            model,
            instances[:8],
            "single",
            gap=0.0001,
            meta=lambda i: {"tenant": "small"},
            tenants={"small": (5.0, 2)},
        )
        rejected = [
            h for h in handles if h.failed and isinstance(h.exception(), QuotaExceeded)
        ]
        # burst of 2, negligible refill over 0.8ms: exactly 2 admitted
        assert len(rejected) == len(handles) - 2
        gauges = srv.summary()["tenants"]["small"]
        assert gauges["submitted"] == len(handles)
        assert gauges["rejected"] == len(rejected)
        assert gauges["completed"] == 2

    def test_quota_is_per_tenant(self, rnn_setup):
        model, instances, _ = rnn_setup
        srv, handles = _serve(
            model,
            instances[:8],
            "single",
            gap=0.0001,
            meta=lambda i: {"tenant": "capped" if i % 2 == 0 else "open"},
            tenants={"capped": (1.0, 1)},
        )
        capped = [h for i, h in enumerate(handles) if i % 2 == 0]
        open_ = [h for i, h in enumerate(handles) if i % 2 == 1]
        assert sum(1 for h in capped if h.failed) == len(capped) - 1
        assert all(not h.failed for h in open_)

    def test_shed_slack_beats_age_based_shed(self, rnn_setup):
        """shed-oldest evicts by age; shed-slack evicts the lowest
        priority class first and, within it, the request with the most
        deadline slack — the old policy's victims differ."""
        model, instances, _ = rnn_setup

        # two interactive requests arrive first (exactly the queue
        # capacity), then a burst of batch-class work floods in
        def meta(i):
            return {
                "priority": "interactive" if i < 2 else "batch",
                "deadline": 10.0 + i,
            }

        def victims(backpressure):
            _, handles = _serve(
                model,
                instances[:10],
                "single",
                gap=0.000001,
                meta=meta,
                max_pending=2,
                backpressure=backpressure,
            )
            return [
                i
                for i, h in enumerate(handles)
                if h.failed and isinstance(h.exception(), RequestShed)
            ]

        oldest = victims("shed-oldest")
        slack = victims("shed-slack")
        assert oldest and slack
        # age-based shedding evicts the early (interactive) arrivals;
        # slack-based shedding keeps them and evicts only batch-class work
        assert any(i < 2 for i in oldest)
        assert all(i >= 2 for i in slack)

    def test_expired_on_arrival_counted(self, rnn_setup):
        model, instances, _ = rnn_setup
        srv, handles = _serve(
            model,
            instances[:4],
            "single",
            gap=0.01,
            meta=lambda i: {"tenant": "t", "deadline": 0.005},
        )
        gauges = srv.summary()["tenants"]["t"]
        assert gauges["expired"] >= 1
        assert gauges["expired"] == sum(
            1 for h in handles if h.failed
        )


class TestSummarySchema:
    def test_tenant_and_loop_gauges(self, rnn_setup):
        model, instances, _ = rnn_setup
        srv, handles = _serve(
            model,
            instances,
            "per_device",
            meta=lambda i: {
                "tenant": "t%d" % (i % 2),
                "priority": "interactive" if i % 2 == 0 else "batch",
                "deadline": 10.0,
            },
        )
        summary = srv.summary()
        assert set(summary["loops"]) == {"loop0", "loop1", "loop2", "loop3"}
        for gauges in summary["loops"].values():
            assert {
                "admitted",
                "rejected",
                "shed",
                "expired",
                "cancelled",
                "stolen_in",
                "stolen_out",
                "queued",
            } <= set(gauges)
        tenants = summary["tenants"]
        assert set(tenants) == {"t0", "t1"}
        for name, priority in (("t0", "interactive"), ("t1", "batch")):
            g = tenants[name]
            assert g["submitted"] == len(instances) // 2
            assert g["completed"] == g["submitted"]
            assert g["slo_attainment"] == 1.0
            assert g["per_priority"][priority]["completed"] == g["completed"]

    def test_endpoint_summary_not_regressed(self, rnn_setup):
        model, instances, _ = rnn_setup
        srv, _ = _serve(model, instances, "per_device")
        summary = srv.summary()
        assert "m" in summary and "devices" in summary
        # endpoint gauges aggregate over every per-loop replica
        assert summary["m"]["requests"] == len(instances)
        assert summary["m"]["pending"] == 0


class TestTenantMix:
    SPECS = (
        TenantSpec("interactive", rate_rps=200.0, burst=1, priority="interactive", deadline_ms=30.0),
        TenantSpec("standard", rate_rps=100.0, burst=2, priority="standard", deadline_ms=100.0),
        TenantSpec("batch", rate_rps=50.0, burst=4, priority="batch"),
    )

    def test_deterministic_on_seed(self):
        a = tenant_mix(self.SPECS, 60, endpoints=["m"], seed=7)
        b = tenant_mix(self.SPECS, 60, endpoints=["m"], seed=7)
        c = tenant_mix(self.SPECS, 60, endpoints=["m"], seed=8)
        assert a == b
        assert a != c

    def test_counts_proportional_to_rates(self):
        trace = tenant_mix(self.SPECS, 70, endpoints=["m"], seed=1)
        assert len(trace) == 70
        by_tenant = {}
        for _, _, meta in trace:
            by_tenant[meta["tenant"]] = by_tenant.get(meta["tenant"], 0) + 1
        assert by_tenant["interactive"] == 40
        assert by_tenant["standard"] == 20
        assert by_tenant["batch"] == 10

    def test_tags_and_deadlines(self):
        trace = tenant_mix(self.SPECS, 35, endpoints=["m"], seed=3)
        assert all(t0 <= t1 for (t0, _, _), (t1, _, _) in zip(trace, trace[1:]))
        for at, ep, meta in trace:
            assert ep == "m"
            if meta["tenant"] == "interactive":
                assert meta["priority"] == "interactive"
                assert meta["deadline"] == pytest.approx(at + 0.030)
            if meta["tenant"] == "batch":
                assert "deadline" not in meta

    def test_replays_through_server(self, rnn_setup):
        model, instances, reference = rnn_setup
        trace = tenant_mix(self.SPECS, len(instances), endpoints=["m"], seed=5)
        srv = Server(clock=SimulatedClock(), devices=4, topology="per_device")
        srv.add_endpoint("m", model, policy="adaptive")
        workload = [
            (at, ep, inst, meta)
            for (at, ep, meta), inst in zip(trace, instances)
        ]
        handles = srv.run_trace(
            workload, deterministic=True, host_model=HOST_MODEL
        )["m"]
        done = [h for h in handles if not h.failed]
        assert done, "a loose-deadline mix must complete work"
        tenants = srv.summary()["tenants"]
        assert set(tenants) == {"interactive", "standard", "batch"}


class TestWallClockTopology:
    def test_multi_loop_wall_run(self, rnn_setup):
        model, instances, reference = rnn_setup
        srv = Server(devices=4, topology="per_device")
        srv.add_endpoint("m", model, policy="adaptive")
        with srv.run():
            handles = [srv.submit("m", inst) for inst in instances]
            results = [h.result(timeout=60) for h in handles]
        assert all(
            values_allclose(out, r) for out, r in zip(results, reference)
        )
        loops = srv.summary()["loops"]
        assert len(loops) == 4
        assert sum(g["admitted"] for g in loops.values()) == len(instances)
