"""End-to-end correctness of every evaluation model under every backend and
under each ablation configuration: batched execution must always match the
unbatched eager reference."""

import numpy as np
import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.models import MODEL_MODULES, get_size
from repro.utils import flatten_arrays, values_allclose

BATCH = 3
SEED = 11

MODEL_NAMES = list(MODEL_MODULES)


@pytest.fixture(scope="module")
def built():
    """Build every model once (test size) with a reference output."""
    out = {}
    for name, module in MODEL_MODULES.items():
        mod, params, size = module.build_for("test")
        instances = module.make_batch(mod, size, BATCH, seed=SEED)
        reference = reference_run(mod, params, instances)
        out[name] = (mod, params, size, instances, reference)
    return out


@pytest.mark.parametrize("model_name", MODEL_NAMES)
def test_acrobat_matches_reference(built, model_name):
    mod, params, _, instances, reference = built[model_name]
    compiled = compile_model(mod, params, CompilerOptions(validate=True))
    outs, stats = compiled.run(instances)
    assert all(values_allclose(r, o) for r, o in zip(reference, outs))
    assert stats.num_dfg_nodes > 0


@pytest.mark.parametrize("model_name", MODEL_NAMES)
@pytest.mark.parametrize("level", range(6))
def test_every_ablation_level_is_correct(built, model_name, level):
    mod, params, _, instances, reference = built[model_name]
    _, options = CompilerOptions.ablation_levels()[level]
    compiled = compile_model(mod, params, options)
    outs, _ = compiled.run(instances)
    assert all(values_allclose(r, o) for r, o in zip(reference, outs))


@pytest.mark.parametrize("model_name", MODEL_NAMES)
def test_acrobat_batches_fewer_kernels_than_eager(built, model_name):
    from repro.baselines import compile_eager

    mod, params, _, instances, _ = built[model_name]
    compiled = compile_model(mod, params, CompilerOptions())
    _, acro = compiled.run(instances)
    eager = compile_eager(mod, params)
    _, eg = eager.run(instances)
    assert acro.kernel_calls < eg.kernel_calls


@pytest.mark.parametrize("model_name", MODEL_NAMES)
def test_results_are_deterministic_across_runs(built, model_name):
    mod, params, _, instances, _ = built[model_name]
    compiled = compile_model(mod, params, CompilerOptions())
    out1, _ = compiled.run(instances)
    out2, _ = compiled.run(instances)
    assert all(values_allclose(a, b, atol=0, rtol=0) for a, b in zip(out1, out2))


@pytest.mark.parametrize("model_name", MODEL_NAMES)
def test_batch_size_one_works(built, model_name):
    mod, params, _, instances, reference = built[model_name]
    compiled = compile_model(mod, params, CompilerOptions())
    outs, stats = compiled.run(instances[:1])
    assert values_allclose(reference[0], outs[0])
    assert stats.batch_size == 1


@pytest.mark.parametrize("model_name", ["treelstm", "mvrnn", "birnn"])
def test_vm_backend_matches_reference_for_recursive_models(built, model_name):
    mod, params, _, instances, reference = built[model_name]
    vm = compile_model(mod, params, CompilerOptions(aot=False))
    outs, _ = vm.run(instances)
    assert all(values_allclose(r, o) for r, o in zip(reference, outs))


@pytest.mark.parametrize("model_name", MODEL_NAMES)
def test_outputs_are_finite(built, model_name):
    _, _, _, _, reference = built[model_name]
    for out in reference:
        for arr in flatten_arrays(out):
            assert np.all(np.isfinite(arr))


@pytest.mark.parametrize("model_name", MODEL_NAMES)
def test_paper_and_test_sizes_exist(model_name):
    small = get_size(model_name, "small")
    large = get_size(model_name, "large")
    test = get_size(model_name, "test")
    assert small.hidden <= large.hidden
    assert test.hidden <= small.hidden


def test_tdc_models_use_fibers(built):
    mod, params, _, instances, _ = built["drnn"]
    compiled = compile_model(mod, params, CompilerOptions())
    _, stats = compiled.run(instances)
    assert compiled.uses_tdc
    assert stats.sync_rounds > 0


def test_berxit_early_exit_varies_depth(built):
    """With random weights some instances exit earlier than others, so the
    number of layer blocks differs across instances."""
    mod, params, size, _, _ = built["berxit"]
    module = MODEL_MODULES["berxit"]
    instances = module.make_batch(mod, size, 8, seed=3)
    compiled = compile_model(mod, params, CompilerOptions())
    _, stats = compiled.run(instances)
    # at least one exit decision happened before the maximum layer count for
    # some instance (otherwise nodes would be a multiple of the batch size)
    assert stats.num_dfg_nodes > 0


def test_stackrnn_uses_batched_argmax(built):
    mod, params, _, instances, _ = built["stackrnn"]
    compiled = compile_model(mod, params, CompilerOptions())
    assert any("argmax" in name for name in compiled.kernel_names())


def test_treelstm_horizontal_fusion_merges_gate_projections(built):
    mod, params, _, _, _ = built["treelstm"]
    compiled = compile_model(mod, params, CompilerOptions())
    assert any(name.startswith("h") and "dense" in name for name in compiled.kernel_names())
