"""Tests for the overlapped host pipeline: speculative round preparation.

Covers bit-for-bit deterministic replay with overlap+speculation on,
reference identity across every scheduler policy and device count with the
preparer active, mis-speculation being observably free (device counters and
plan/specialization caches untouched), preparer-crash surfacing in both
loop modes, the ``predict_next_flush`` policy hook, and the wall-clock
``RoundPreparer`` end to end."""

import threading
import time

import numpy as np
import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.models import MODEL_MODULES
from repro.serve import (
    LoopStopped,
    Server,
    SimulatedClock,
    bursty_arrivals,
    poisson_arrivals,
    replay_continuous,
)
from repro.serve.policy import (
    AdaptivePolicy,
    DeadlinePolicy,
    ManualPolicy,
    SizePolicy,
)
from repro.utils import flatten_arrays, values_allclose

ALL_POLICIES = ("inline_depth", "dynamic_depth", "agenda", "nobatch", "dynet")

#: deterministic host-cost model steep enough that hiding prepare work is
#: visible in the replayed timeline
HOST_MODEL = (6.0, 1.0)


def exact_equal(a, b):
    """Bitwise reference identity over nested output structures."""
    fa, fb = flatten_arrays(a), flatten_arrays(b)
    return len(fa) == len(fb) and all(
        np.array_equal(np.asarray(x), np.asarray(y)) for x, y in zip(fa, fb)
    )


def build_setup(model_name, batch=6, seed=11):
    module = MODEL_MODULES[model_name]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, batch, seed=seed)
    reference = reference_run(mod, params, instances)
    return mod, params, instances, reference


@pytest.fixture(scope="module")
def treelstm_setup():
    return build_setup("treelstm")


class TestPredictNextFlush:
    """The speculation hook: policies that cannot see a flush coming must
    say so, and the ones that can must predict their flush horizon —
    mis-speculation is free, so likely arrivals before the horizon are no
    reason to hold back."""

    class _FakeSession:
        round_started_at = 0.0
        expected_gap_s = None
        timeline = None
        pending_requests = 2

    def test_manual_and_size_never_predict(self):
        session = self._FakeSession()
        session.expected_gap_s = 1.0
        assert ManualPolicy().predict_next_flush(session, 0.0) is None
        assert SizePolicy(n=4).predict_next_flush(session, 0.0) is None

    def test_deadline_predicts_its_deadline(self):
        policy = DeadlinePolicy(ms=5.0)
        session = self._FakeSession()
        # the deadline is a definite flush horizon — predicted even with no
        # arrival history (a composition change costs a free rebuild)
        assert policy.predict_next_flush(session, 0.004) == pytest.approx(0.005)
        session.expected_gap_s = 0.0005
        assert policy.predict_next_flush(session, 0.004) == pytest.approx(0.005)
        # empty session: no round, no horizon
        empty = self._FakeSession()
        empty.round_started_at = None
        assert policy.predict_next_flush(empty, 0.004) is None
        # deadline already passed: the flush is due, not predictable
        assert policy.predict_next_flush(session, 0.006) is None

    def test_adaptive_prediction_clamps_to_busy_horizon(self):
        policy = AdaptivePolicy(max_wait_ms=20.0)

        class _Timeline:
            busy_until = 0.004

            def in_flight(self, now):
                return 1

        session = self._FakeSession()
        assert policy.predict_next_flush(session, 0.001) == pytest.approx(0.020)
        session.timeline = _Timeline()
        # a round in flight: the on_idle launch at the busy horizon comes first
        assert policy.predict_next_flush(session, 0.001) == pytest.approx(0.004)
        # horizon already reached: the flush is due, not predictable
        assert policy.predict_next_flush(session, 0.004) is None


class TestDeterministicOverlap:
    """run_trace / replay_continuous with overlap+speculation on must be a
    pure function of the trace: the same trace replays bit-for-bit."""

    def test_replay_twice_bit_for_bit(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        arrivals = bursty_arrivals(2500.0, len(instances), burst=3, seed=21)
        latencies, counters = [], []
        for _ in range(2):
            session = model.serve("adaptive", clock=SimulatedClock())
            report = replay_continuous(
                session, instances, arrivals, host_model=HOST_MODEL, prepare=True
            )
            assert all(
                values_allclose(a, b) for a, b in zip(reference, report.outputs)
            )
            latencies.append(report.latencies_ms)
            counters.append(
                (
                    session.prepare_attempts,
                    session.speculation_hits,
                    session.speculation_aborts,
                    session.prepare_hidden_ms,
                )
            )
        assert latencies[0] == latencies[1]  # exact float equality
        assert counters[0] == counters[1]
        # the pipeline must actually have engaged for this to test anything
        assert counters[0][1] > 0, "no speculation hit in the replay"

    def test_overlap_beats_serial_replay(self, treelstm_setup):
        """Hiding prepare work must shorten the replayed timeline, and
        never at the cost of reference identity."""
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        arrivals = bursty_arrivals(2500.0, len(instances), burst=3, seed=21)
        durations = {}
        for prepare in (False, True):
            session = model.serve("adaptive", clock=SimulatedClock())
            report = replay_continuous(
                session, instances, arrivals, host_model=HOST_MODEL, prepare=prepare
            )
            assert all(
                values_allclose(a, b) for a, b in zip(reference, report.outputs)
            )
            durations[prepare] = report.duration_s
        assert durations[True] < durations[False]


class TestReferenceIdentityMatrix:
    """Overlapped serving must stay bitwise reference-identical across every
    scheduler policy and device count."""

    @pytest.mark.parametrize("scheduler", ALL_POLICIES)
    @pytest.mark.parametrize("devices", [1, 4])
    def test_prepared_matches_reference(self, treelstm_setup, scheduler, devices):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions(scheduler=scheduler))
        kwargs = {"devices": 4, "placement": "round_robin"} if devices == 4 else {}
        session = model.serve("adaptive", clock=SimulatedClock(), **kwargs)
        arrivals = bursty_arrivals(2500.0, len(instances), burst=3, seed=21)
        report = replay_continuous(
            session, instances, arrivals, host_model=HOST_MODEL, prepare=True
        )
        assert all(
            exact_equal(a, b) for a, b in zip(reference, report.outputs)
        ), f"{scheduler}/dev{devices}"


class TestMisSpeculationIsFree:
    """A wrong speculation must cost only wasted host work: after the abort,
    every observable — outputs, device counters, plan cache, specialization
    tier, placement state — matches a session that never speculated."""

    @pytest.mark.parametrize("devices", [1, 4])
    def test_abort_leaves_no_trace(self, devices):
        mod, params, instances, reference = build_setup("treelstm", batch=6)
        kwargs = (
            {"devices": 4, "placement": "data_parallel"} if devices == 4 else {}
        )

        def drive(speculate):
            model = compile_model(
                mod, params, CompilerOptions(kernel_specialization=True)
            )
            clock = SimulatedClock()
            session = model.serve("deadline", ms=5.0, clock=clock, **kwargs)
            # warm round: populates the plan cache and the gap history
            for inst in instances[:3]:
                session.submit(inst)
            outs = [session.flush()]
            clock.advance(0.010)
            session.submit(instances[0])
            clock.advance(0.001)
            session.submit(instances[1])
            # just before the deadline, with the expected gap overshooting
            # it: the deadline policy predicts this composition will flush
            clock.advance(0.0035)
            if speculate:
                assert session.consider_prepare(clock.now()) is True
                assert session.has_prepared_round
            # admission diverges: the speculated composition is now stale
            session.submit(instances[2])
            outs.append(session.flush())
            return session, outs

        control, control_outs = drive(speculate=False)
        tested, tested_outs = drive(speculate=True)

        assert tested.speculation_aborts == 1
        assert tested.speculation_hits == 0
        assert tested.prepare_attempts == 1
        # outputs bitwise identical to the never-speculated control
        assert exact_equal(control_outs, tested_outs)
        # device counters untouched by the aborted preparation
        assert control.last_stats.device == tested.last_stats.device
        # plan cache evolution identical: the abandoned staging never
        # committed its hit/miss/template
        cp = control.engine.runtime.planner
        tp = tested.engine.runtime.planner
        assert (cp.cache_hits, cp.cache_misses, cp.cache_evictions) == (
            tp.cache_hits,
            tp.cache_misses,
            tp.cache_evictions,
        )
        assert len(cp._plan_cache) == len(tp._plan_cache)
        assert cp.operand_counts == tp.operand_counts
        # specialization tier untouched (no slot allocated by the abort)
        assert control.last_stats.specialize == tested.last_stats.specialize

    def test_abort_round_discards_prepared(self, treelstm_setup):
        """A round abort (poisoned request) drops the held speculation."""
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        clock = SimulatedClock()
        session = model.serve("deadline", ms=5.0, clock=clock)
        for inst in instances[:3]:
            session.submit(inst)
        session.flush()
        clock.advance(0.010)
        session.submit(instances[0])
        clock.advance(0.001)
        session.submit(instances[1])
        clock.advance(0.0035)
        assert session.consider_prepare(clock.now()) is True
        session._abort_round(RuntimeError("poisoned"))
        assert not session.has_prepared_round
        assert session.speculation_aborts == 1


class TestPreparerCrash:
    """A preparer failure is an infrastructure failure: both loop modes must
    surface it exactly like any other loop death — sessions aborted,
    ``LoopStopped`` with the original error as ``__cause__``."""

    def test_simulated_crash_takes_loop_death_path(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        server = Server(clock=SimulatedClock(), prepare=True)
        endpoint = server.add_endpoint("trees", model, policy="adaptive")
        boom = RuntimeError("prepare exploded")

        def bad_consider(now):
            raise boom

        endpoint.session.consider_prepare = bad_consider
        workload = [
            (t, "trees", inst)
            for t, inst in zip(
                poisson_arrivals(2000.0, len(instances), seed=1), instances
            )
        ]
        with pytest.raises(LoopStopped) as excinfo:
            server.loop.run_trace(workload)
        assert excinfo.value.__cause__ is boom
        # the session was aborted: no handle left pending forever
        assert endpoint.session.pending_requests == 0

    def test_wall_crash_fails_handles_and_stops_loop(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        server = Server(prepare=True)
        endpoint = server.add_endpoint("trees", model, policy="manual")
        boom = RuntimeError("prepare exploded")

        def bad_consider(now):
            raise boom

        endpoint.session.consider_prepare = bad_consider
        server.run()
        handle = server.submit("trees", instances[0])
        with pytest.raises(Exception) as excinfo:
            handle.result(timeout=5.0)
        # the crash surfaced as a loop death: the handle failed with the
        # original error (round abort) or LoopStopped chaining it
        exc = excinfo.value
        assert exc is boom or isinstance(exc, LoopStopped) or exc.__cause__ is boom
        # the loop thread died with the error and stopped its preparer
        server.loop._thread.join(timeout=5.0)
        assert not server.loop.running
        assert server.loop._preparer is None
        assert server.loop._error is boom
        # new submissions are refused by the dead loop
        with pytest.raises(LoopStopped):
            server.submit("trees", instances[0])


class TestWallClockPreparer:
    """The RoundPreparer thread end to end: overlapped wall-clock serving
    stays correct and shuts down cleanly."""

    def test_server_smoke(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        server = Server(prepare=True)
        server.add_endpoint("trees", model, policy="size", n=2)
        with server.run():
            handles = [server.submit("trees", inst) for inst in instances]
            server.drain()
            outputs = [h.result(timeout=10.0) for h in handles]
        assert all(values_allclose(a, b) for a, b in zip(reference, outputs))
        assert server.loop._preparer is None  # stopped with the loop
        summary = server.summary()["trees"]
        assert "speculation_hits" in summary
        assert "speculation_aborts" in summary

    def test_preparer_handshake_single_pass_per_grant(self, treelstm_setup):
        """One allow() grants exactly one pass, and pause() waits it out."""
        from repro.serve.prepare import RoundPreparer

        calls = []
        ran = threading.Event()

        class _FakeSession:
            def consider_prepare(self, now):
                calls.append(now)
                ran.set()

        class _FakeLoop:
            clock = SimulatedClock()
            _cond = threading.Condition()

            def sessions(self):
                return {"s": _FakeSession()}

        preparer = RoundPreparer(_FakeLoop())
        try:
            preparer.allow()
            assert ran.wait(timeout=2.0)
            preparer.pause()
            assert len(calls) == 1
            # the grant was one-shot: no further passes without allow()
            time.sleep(0.05)
            assert len(calls) == 1
            preparer.reraise()  # no stored error
        finally:
            preparer.stop()
        assert not preparer._thread.is_alive()

class TestCappedFlush:
    """The ``round_cap`` policy hook: a capped flush takes the oldest-cap
    request prefix (which is a node prefix — requests are independent),
    leaves the overflow pending as the next round's prefix, and thereby
    lets a speculatively prepared round survive later arrivals."""

    def test_prefix_flush_leaves_overflow_pending(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        clock = SimulatedClock()
        session = model.serve("adaptive", clock=clock, max_batch=4)
        clock.advance(1.0)  # arrivals at t=0 are backdated: no submit flush
        handles = [session.submit(inst, at=0.0) for inst in instances]
        assert session.pending_requests == len(instances)
        first = session.flush()
        assert len(first) == 4
        assert session.pending_requests == len(instances) - 4
        second = session.flush()
        assert len(second) == len(instances) - 4
        assert session.pending_requests == 0
        assert session.num_flushes == 2
        # submission order preserved across the split, results identical
        outputs = [h.result() for h in handles]
        assert all(values_allclose(a, b) for a, b in zip(reference, outputs))

    def test_prepared_prefix_survives_later_arrivals(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        clock = SimulatedClock()
        # huge max_wait keeps the flush horizon in the future, so the
        # policy predicts and the session prepares
        session = model.serve(
            "adaptive", clock=clock, max_batch=3, max_wait_ms=10_000.0
        )
        clock.advance(1.0)
        for inst in instances[:4]:
            session.submit(inst, at=0.0)
        assert session.consider_prepare(clock.now()) is True
        assert session.has_prepared_round
        # a later arrival appends *behind* the capped prefix: the prepared
        # round stays valid (under flush-takes-all it would be stale now)
        session.submit(instances[4], at=0.0)
        assert session.consider_prepare(clock.now()) is True
        assert session.speculation_aborts == 0
        first = session.flush()
        assert len(first) == 3
        assert session.speculation_hits == 1
        second = session.flush()
        assert len(second) == 2
        outputs = first + second
        assert all(
            values_allclose(a, b) for a, b in zip(reference[:5], outputs)
        )

    def test_uncapped_policies_flush_everything(self, treelstm_setup):
        """round_cap is adaptive-only: deadline/size/manual keep the
        flush-takes-all semantics."""
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("manual", clock=SimulatedClock())
        for inst in instances:
            session.submit(inst)
        outs = session.flush()
        assert len(outs) == len(instances)
        assert session.pending_requests == 0

    def test_context_exit_drains_capped_backlog(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        clock = SimulatedClock()
        with model.serve("adaptive", clock=clock, max_batch=4) as session:
            clock.advance(1.0)
            handles = [session.submit(inst, at=0.0) for inst in instances]
        assert session.pending_requests == 0
        assert session.num_flushes == 2
        outputs = [h.result() for h in handles]
        assert all(values_allclose(a, b) for a, b in zip(reference, outputs))

    def test_reentrant_submission_appends_behind_prepared_prefix(
        self, treelstm_setup
    ):
        """Submissions landing mid-drain (between the capped flushes of one
        backlog) append *behind* the leftover prefix: the next speculation
        covers the merged composition and every hit still lands."""
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        clock = SimulatedClock()
        session = model.serve(
            "adaptive", clock=clock, max_batch=3, max_wait_ms=10_000.0
        )
        clock.advance(1.0)
        handles = [session.submit(inst, at=0.0) for inst in instances[:4]]
        assert session.consider_prepare(clock.now()) is True
        first = session.flush()
        assert len(first) == 3
        assert session.speculation_hits == 1
        # mid-drain: two new arrivals while one request is still pending —
        # they queue behind it, preserving submission order
        handles += [session.submit(inst, at=0.0) for inst in instances[4:6]]
        assert session.pending_requests == 3
        assert session.consider_prepare(clock.now()) is True
        second = session.flush()
        assert len(second) == 3
        assert session.speculation_hits == 2
        assert session.speculation_aborts == 0
        assert session.pending_requests == 0
        outputs = [h.result() for h in handles]
        assert all(
            exact_equal(a, b) for a, b in zip(reference[:6], outputs)
        )

    def test_reentrant_submission_from_done_callback(self, treelstm_setup):
        """The fully re-entrant case: a handle's done callback submits a
        new request *while the capped flush that resolves it is still
        running*.  The submission must append behind the overflow prefix
        without corrupting node offsets, arrival tracking, or the adopted
        speculation."""
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        clock = SimulatedClock()
        session = model.serve(
            "adaptive", clock=clock, max_batch=3, max_wait_ms=10_000.0
        )
        clock.advance(1.0)
        handles = [session.submit(inst, at=0.0) for inst in instances[:4]]
        late = []
        handles[0].add_done_callback(
            lambda h: late.append(session.submit(instances[4], at=0.0))
        )
        assert session.consider_prepare(clock.now()) is True
        first = session.flush()
        assert len(first) == 3
        assert session.speculation_hits == 1
        # the callback fired mid-flush: its submission queued behind the
        # leftover prefix
        assert session.pending_requests == 2
        second = session.flush()
        assert len(second) == 2
        assert session.speculation_aborts == 0
        outputs = [h.result() for h in handles] + [late[0].result()]
        assert all(
            exact_equal(a, b) for a, b in zip(reference[:5], outputs)
        )

    def test_capped_replay_is_deterministic_and_reference_identical(
        self, treelstm_setup
    ):
        """End to end through run_trace: capped rounds + speculation still
        replay bit-for-bit and match the eager reference."""
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        arrivals = poisson_arrivals(2000.0, len(instances), seed=33)

        def replay():
            session = model.serve(
                "adaptive",
                clock=SimulatedClock(),
                max_batch=2,
                max_wait_ms=300.0,
            )
            report = replay_continuous(
                session, instances, arrivals, host_model=HOST_MODEL, prepare=True
            )
            return session, report

        s1, r1 = replay()
        s2, r2 = replay()
        assert r1.latencies_ms == r2.latencies_ms
        assert exact_equal(r1.outputs, r2.outputs)
        assert all(exact_equal(a, b) for a, b in zip(reference, r1.outputs))
        assert s1.speculation_hits == s2.speculation_hits
        assert s1.speculation_hits > 0
