"""Tests for the engine layer: the scheduler-policy registry, policy
equivalence across backends, and cross-request batching sessions."""

import pytest

from repro import CompilerOptions, compile_model, open_session, reference_run
from repro.engine import (
    available_policies,
    make_scheduler,
    register_scheduler,
    unregister_scheduler,
)
from repro.serve import InferenceSession
from repro.models import MODEL_MODULES
from repro.runtime.scheduler import (
    AgendaScheduler,
    DynamicDepthScheduler,
    InlineDepthScheduler,
    NoBatchScheduler,
)
from repro.utils import ensure_recursion_limit, values_allclose

BATCH = 4

ALL_POLICIES = ("inline_depth", "dynamic_depth", "agenda", "nobatch")


@pytest.fixture(scope="module")
def treelstm_setup():
    module = MODEL_MODULES["treelstm"]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, BATCH, seed=7)
    reference = reference_run(mod, params, instances)
    return mod, params, instances, reference


class TestRegistry:
    def test_builtin_policy_lookup(self):
        assert isinstance(make_scheduler("inline_depth"), InlineDepthScheduler)
        assert isinstance(make_scheduler("dynamic_depth"), DynamicDepthScheduler)
        assert isinstance(make_scheduler("agenda"), AgendaScheduler)
        assert isinstance(make_scheduler("nobatch"), NoBatchScheduler)

    def test_builtins_are_listed(self):
        names = available_policies()
        for name in ALL_POLICIES + ("dynet",):
            assert name in names

    def test_unknown_name_error_lists_policies(self):
        with pytest.raises(ValueError, match="inline_depth"):
            make_scheduler("does_not_exist")

    def test_registration_and_unregistration(self):
        class CustomScheduler(InlineDepthScheduler):
            pass

        register_scheduler("custom_test_policy", lambda **_: CustomScheduler())
        try:
            assert "custom_test_policy" in available_policies()
            assert isinstance(make_scheduler("custom_test_policy"), CustomScheduler)
        finally:
            unregister_scheduler("custom_test_policy")
        assert "custom_test_policy" not in available_policies()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("inline_depth", lambda **_: InlineDepthScheduler())

    def test_decorator_registration(self):
        @register_scheduler("custom_decorated_policy")
        def factory(**_):
            return NoBatchScheduler()

        try:
            assert isinstance(make_scheduler("custom_decorated_policy"), NoBatchScheduler)
        finally:
            unregister_scheduler("custom_decorated_policy")

    def test_dynet_policy_validates_kind(self):
        with pytest.raises(ValueError, match="agenda"):
            make_scheduler("dynet", kind="bogus")


class TestPolicyEquivalence:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_policy_matches_reference(self, treelstm_setup, policy):
        """All registered policies produce the reference outputs: they differ
        only in how they group the same DFG into batches."""
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions(scheduler=policy))
        assert model.make_engine().policy == policy
        outs, stats = model.run(instances)
        assert all(values_allclose(r, o) for r, o in zip(reference, outs))
        assert stats.num_dfg_nodes > 0

    def test_custom_registered_policy_runs_through_engine(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        register_scheduler("custom_equiv_policy", lambda **_: DynamicDepthScheduler())
        try:
            model = compile_model(
                mod, params, CompilerOptions(scheduler="custom_equiv_policy")
            )
            outs, _ = model.run(instances)
            assert all(values_allclose(r, o) for r, o in zip(reference, outs))
        finally:
            unregister_scheduler("custom_equiv_policy")

    def test_nobatch_launches_one_batch_per_node(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions(scheduler="nobatch"))
        _, stats = model.run(instances)
        batched_model = compile_model(mod, params, CompilerOptions())
        _, batched_stats = batched_model.run(instances)
        assert stats.num_batches == stats.num_dfg_nodes
        assert batched_stats.num_batches < stats.num_batches

    def test_harness_selects_policy_by_name(self):
        from repro.experiments.harness import run_acrobat

        stats = run_acrobat("treelstm", "small", 2, scheduler="agenda")
        assert stats.num_dfg_nodes > 0


class TestExecutionEngine:
    def test_run_collects_sync_rounds(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        _, stats = model.run(instances)
        # sync rounds are accounted inside AcrobatRuntime.trigger now
        assert stats.sync_rounds >= 1

    def test_engine_is_reusable_across_runs(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        engine = compile_model(mod, params, CompilerOptions()).make_engine()
        out1, stats1 = engine.run(instances)
        out2, stats2 = engine.run(instances)
        assert all(values_allclose(a, b) for a, b in zip(out1, out2))
        assert stats1.num_dfg_nodes == stats2.num_dfg_nodes

    def test_recursion_limit_never_lowered(self):
        import sys

        before = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(100000)
            assert ensure_recursion_limit() == 100000
            assert sys.getrecursionlimit() == 100000
        finally:
            sys.setrecursionlimit(before)


class TestInferenceSession:
    def test_session_matches_batch_run(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        batch_outs, _ = model.run(instances)

        session = model.session()
        handles = [session.submit(instance) for instance in instances]
        assert all(not h.done for h in handles)
        outs = session.flush()
        assert all(h.done for h in handles)
        assert all(values_allclose(a, b) for a, b in zip(batch_outs, outs))
        assert all(
            values_allclose(h.result(), o) for h, o in zip(handles, outs)
        )

    def test_session_batches_across_requests(self, treelstm_setup):
        """N submitted requests flush as one batched round with fewer kernel
        launches than N separate per-request runs."""
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())

        per_request_calls = 0
        for instance in instances:
            _, stats = model.run([instance])
            per_request_calls += stats.kernel_calls

        session = model.session()
        for instance in instances:
            session.submit(instance)
        session.flush()
        assert session.last_stats.kernel_calls < per_request_calls
        assert session.last_stats.batch_size == len(instances)

    def test_max_batch_autoflushes(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(max_batch=2)
        h1 = session.submit(instances[0])
        assert session.pending_requests == 1 and not h1.done
        h2 = session.submit(instances[1])
        # hitting max_batch flushed the round
        assert session.pending_requests == 0
        assert h1.done and h2.done
        assert session.num_flushes == 1

    def test_result_before_flush_raises(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).session()
        handle = session.submit(instances[0])
        with pytest.raises(RuntimeError, match="flush"):
            handle.result()
        session.flush()

    def test_flush_empty_session_is_noop(self, treelstm_setup):
        """Flushing an empty session is a cheap no-op returning None (and
        does not count as a flush), so periodic policy-driven flushing is
        safe."""
        mod, params, _, _ = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).session()
        assert session.flush() is None
        assert session.num_flushes == 0
        assert session.poll() is None
        assert session.last_stats is None

    def test_multiple_rounds(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).session()
        for round_instances in (instances[:2], instances[2:]):
            outs = [session.submit(i) for i in round_instances] and session.flush()
            assert len(outs) == len(round_instances)
        assert session.num_requests == len(instances)
        assert session.num_flushes == 2

    def test_open_session_api(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        session = open_session(mod, params, max_batch=len(instances))
        assert isinstance(session, InferenceSession)
        handles = [session.submit(i) for i in instances]
        # max_batch reached: auto-flushed
        assert all(h.done for h in handles)
        assert all(
            values_allclose(r, h.result()) for r, h in zip(reference, handles)
        )

    def test_context_manager_flushes(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        with model.session() as session:
            handle = session.submit(instances[0])
        assert handle.done

    def test_deferred_session_for_tdc_model(self):
        """Programs with tensor-dependent control flow cannot build the DFG
        ahead of synchronization points, so the session defers them and still
        executes all requests as one fiber-interleaved batch."""
        module = MODEL_MODULES["drnn"]
        mod, params, size = module.build_for("test")
        instances = module.make_batch(mod, size, 2, seed=3)
        model = compile_model(mod, params, CompilerOptions())
        assert model.uses_tdc

        batch_outs, _ = model.run(instances)
        session = model.session()
        handles = [session.submit(i) for i in instances]
        outs = session.flush()
        assert all(h.done for h in handles)
        assert all(values_allclose(a, b) for a, b in zip(batch_outs, outs))

    def test_session_survives_interleaved_runs(self, treelstm_setup):
        """A persistent session stays correct when other engines of the same
        model execute between submits: the generated program's shared
        namespace is rebound per call, so interleaved model.run() calls (or a
        second session) cannot steal the session's DFG nodes."""
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())

        session = model.session()
        h1 = session.submit(instances[0])
        model.run(instances)  # unrelated batch on the same model
        h2 = session.submit(instances[1])

        other = model.session()  # second concurrent session
        h3 = other.submit(instances[2])

        outs = session.flush()
        assert len(outs) == 2
        assert values_allclose(reference[0], h1.result())
        assert values_allclose(reference[1], h2.result())
        other.flush()
        assert values_allclose(reference[2], h3.result())

    def test_vm_model_session(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        vm = compile_model(mod, params, CompilerOptions(aot=False))
        session = vm.session()
        for instance in instances:
            session.submit(instance)
        outs = session.flush()
        assert all(values_allclose(r, o) for r, o in zip(reference, outs))
