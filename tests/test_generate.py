"""Tests for the autoregressive generation subsystem: per-step re-batching
through the serving stack, bitwise reference identity of batched
trajectories, EOS/max-token stopping, streaming, cancellation and deadline
expiry at round-boundary granularity (round-mates untouched), recurrent
state residency, per-step SLO metrics, deterministic replay, and the
wall-clock pump behind a running Server."""

from functools import lru_cache

import numpy as np
import pytest

from repro import CompilerOptions, compile_model
from repro.generate import (
    GenerationCancelled,
    GenerationExpired,
    GenerationRequest,
    GenerationSession,
    reference_generate,
)
from repro.models import MODEL_MODULES
from repro.serve import Server, SimulatedClock
from repro.serve.request import RequestCancelled, RequestExpired

#: deterministic host cost model for flushes: (per_round_ms, per_request_ms)
HOST_MODEL = (0.2, 0.05)


@lru_cache(maxsize=None)
def _setup(name):
    module = MODEL_MODULES[name]
    mod, params, size = module.build_for("test")
    compiled = compile_model(mod, params, CompilerOptions())
    return module, mod, params, size, compiled


def _make_requests(vocab, n, max_new, seed, prompt_lens=(1, 5)):
    """The experiment's open-loop trace in miniature: exponential gaps,
    random prompts."""
    rng = np.random.default_rng(seed)
    t = 0.0
    out = []
    for _ in range(n):
        t += float(rng.exponential(0.0004))
        length = int(rng.integers(*prompt_lens))
        prompt = [int(tok) for tok in rng.integers(0, vocab, length)]
        out.append(GenerationRequest(prompt, max_new_tokens=max_new, arrival=t))
    return out


def _references(name, requests, eos_id=None):
    module, mod, params, size, _ = _setup(name)
    return [
        reference_generate(
            mod, params, module, size, r.prompt, r.max_new_tokens, eos_id=eos_id
        )
        for r in requests
    ]


def _generate(name, requests, policy="adaptive", prepare=False, eos_id=None,
              host_model=None, **policy_args):
    module, _, _, size, compiled = _setup(name)
    session = compiled.serve(policy, clock=SimulatedClock(), **policy_args)
    gen = GenerationSession(session, module, size, eos_id=eos_id)
    handles = gen.generate(requests, host_model=host_model, prepare=prepare)
    return handles, session, gen


def _snapshot(handles):
    return [
        (
            tuple(h.tokens),
            h.stats.first_token_at,
            h.stats.finished_at,
            tuple(h.stats.inter_step_ms),
            h.stats.status,
        )
        for h in handles
    ]


class TestReferenceIdentity:
    @pytest.mark.parametrize("name", ["declm", "declm_gru"])
    @pytest.mark.parametrize(
        "policy,args", [("adaptive", {}), ("size", {"n": 1})]
    )
    def test_batched_trajectories_match_eager_reference(self, name, policy, args):
        """Every decode trajectory — continuously batched or one round per
        step — equals the eager unbatched loop bitwise."""
        _, _, _, size, _ = _setup(name)
        requests = _make_requests(size.classes, 6, 6, seed=3)
        reference = _references(name, requests)
        handles, session, _ = _generate(name, requests, policy=policy, **args)
        assert [h.result() for h in handles] == reference
        assert all(h.stats.status == "done" for h in handles)
        if policy == "adaptive":
            # the win is real cross-request rounds, not degenerate batches
            assert session.requests_flushed / session.num_flushes > 1.5

    def test_prepare_pipeline_is_reference_identical(self):
        """Speculative round preparation adopts real rounds and changes no
        token."""
        _, _, _, size, _ = _setup("declm")
        requests = _make_requests(size.classes, 8, 8, seed=4)
        reference = _references("declm", requests)
        handles, session, _ = _generate(
            "declm", requests, prepare=True, host_model=HOST_MODEL
        )
        assert [h.result() for h in handles] == reference
        # decode cohorts are speculatable: composition is known before the
        # barrier, so the overlapped host pipeline must actually fire
        assert session.speculation_hits > 0

    def test_eos_early_stop(self):
        """A sequence hitting EOS stops there — exactly where the eager
        reference with the same eos_id stops — and still batches with
        longer round-mates."""
        _, _, _, size, _ = _setup("declm")
        requests = _make_requests(size.classes, 5, 8, seed=5)
        full = _references("declm", requests)
        eos = full[0][1]  # first sequence emits it at index <= 1
        ref_eos = _references("declm", requests, eos_id=eos)
        assert len(ref_eos[0]) < len(full[0])
        handles, _, _ = _generate("declm", requests, eos_id=eos)
        assert [h.result() for h in handles] == ref_eos
        assert handles[0].tokens[-1] == eos
        assert handles[0].stats.status == "done"

    def test_variable_lengths(self):
        """Per-request max_new_tokens: sequences retire at different steps
        while the survivors keep batching."""
        _, _, _, size, _ = _setup("declm")
        rng = np.random.default_rng(6)
        requests = [
            GenerationRequest(
                [int(t) for t in rng.integers(0, size.classes, 2)],
                max_new_tokens=m,
                arrival=i * 0.0003,
            )
            for i, m in enumerate([3, 7, 2, 9, 5])
        ]
        reference = _references("declm", requests)
        handles, _, _ = _generate("declm", requests)
        assert [h.result() for h in handles] == reference
        assert [len(h.tokens) for h in handles] == [3, 7, 2, 9, 5]

    def test_replay_is_bitwise_deterministic(self):
        """Same trace, same tokens AND same timestamps — with and without
        the prepare pipeline."""
        _, _, _, size, _ = _setup("declm")
        for prepare in (False, True):
            requests = _make_requests(size.classes, 6, 6, seed=7)
            first, _, _ = _generate(
                "declm", requests, prepare=prepare, host_model=HOST_MODEL
            )
            requests = _make_requests(size.classes, 6, 6, seed=7)
            again, _, _ = _generate(
                "declm", requests, prepare=prepare, host_model=HOST_MODEL
            )
            assert _snapshot(first) == _snapshot(again)


class TestStreamingAndStats:
    def test_on_token_streams_in_order(self):
        _, _, _, size, _ = _setup("declm")
        seen = []
        requests = _make_requests(size.classes, 3, 5, seed=8)
        requests[1].on_token = lambda h, tok, i, at: seen.append((tok, i, at))
        handles, _, _ = _generate("declm", requests)
        assert [tok for tok, _, _ in seen] == handles[1].tokens
        assert [i for _, i, _ in seen] == list(range(len(handles[1].tokens)))
        ats = [at for _, _, at in seen]
        assert ats == sorted(ats)

    def test_stream_iterator_yields_full_sequence(self):
        _, _, _, size, _ = _setup("declm")
        requests = _make_requests(size.classes, 3, 5, seed=9)
        handles, _, _ = _generate("declm", requests)
        for h in handles:
            assert list(h.stream(timeout=1.0)) == h.tokens

    def test_per_sequence_stats(self):
        _, _, _, size, _ = _setup("declm")
        requests = _make_requests(size.classes, 4, 6, seed=10)
        handles, _, _ = _generate("declm", requests)
        for h in handles:
            s = h.stats
            assert s.status == "done"
            assert s.tokens == len(h.tokens) == h.request.max_new_tokens
            # one step per consumed prompt token beyond the first, plus one
            # per emitted token
            assert s.steps == len(h.request.prompt) - 1 + s.tokens
            assert s.ttfs_ms is not None and s.ttfs_ms > 0
            assert len(s.inter_step_ms) == s.tokens - 1
            assert s.finished_at >= s.first_token_at >= s.submitted_at

    def test_metrics_summary(self):
        _, _, _, size, _ = _setup("declm")
        requests = _make_requests(size.classes, 4, 5, seed=11)
        _, _, gen = _generate("declm", requests)
        m = gen.metrics.summary()
        assert m["gen_requests"] == 4
        assert m["gen_tokens"] == 4 * 5
        assert m["gen_cancelled"] == 0 and m["gen_expired"] == 0
        assert m["ttfs_p50_ms"] > 0
        assert m["ttfs_p99_ms"] >= m["ttfs_p50_ms"]
        assert m["inter_step_p99_ms"] > 0

    def test_request_validation(self):
        with pytest.raises(ValueError, match="non-empty prompt"):
            GenerationRequest([])
        with pytest.raises(ValueError, match="max_new_tokens"):
            GenerationRequest([1], max_new_tokens=0)


class TestCancellation:
    def _paired_requests(self, size, n=3, max_new=6):
        """Simultaneous prompt-length-1 requests: every cohort contains one
        step of each live sequence, processed in index order."""
        rng = np.random.default_rng(13)
        return [
            GenerationRequest(
                [int(rng.integers(0, size.classes))],
                max_new_tokens=max_new,
                arrival=0.0,
            )
            for _ in range(n)
        ]

    def test_self_cancel_from_stream_callback(self):
        """A sequence cancelling itself mid-generation is dropped at the
        next round boundary; round-mates stay bitwise identical to the
        uncancelled run."""
        _, _, _, size, _ = _setup("declm")
        requests = self._paired_requests(size)
        reference = _references("declm", requests)
        requests[1].on_token = (
            lambda h, tok, i, at: h.cancel() if i == 1 else None
        )
        handles, session, gen = _generate("declm", requests)

        assert handles[1].stats.status == "cancelled"
        assert handles[1].failed
        with pytest.raises(GenerationCancelled):
            handles[1].result()
        # partial tokens survive, and are the reference prefix
        assert handles[1].tokens == reference[1][:2]
        # round-mates: every token bitwise identical to the reference
        assert handles[0].result() == reference[0]
        assert handles[2].result() == reference[2]
        assert gen.metrics.cancelled == 1
        # the pending step was withdrawn from the shared round before it
        # flushed
        assert session.num_cancelled == 1

    def test_cancel_peer_pending_step_withdrawn(self):
        """Cancelling a sequence whose next step is already pending in the
        round: the sweep withdraws its DFG nodes at the round boundary and
        the round flushes as if it had never stepped."""
        _, _, _, size, _ = _setup("declm")
        requests = self._paired_requests(size)
        reference = _references("declm", requests)
        box = {}
        requests[0].on_token = lambda h, tok, i, at: box.__setitem__(0, h)
        # sequence 2 is processed after sequence 0 in each cohort, so by the
        # time this fires, sequence 0's next step is pending un-flushed
        requests[2].on_token = (
            lambda h, tok, i, at: box[0].cancel() if i == 1 else None
        )
        handles, session, gen = _generate("declm", requests)

        assert handles[0].stats.status == "cancelled"
        assert handles[0].tokens == reference[0][:2]
        with pytest.raises(RequestCancelled):  # superclass catches it too
            handles[0].result()
        assert session.num_cancelled == 1
        assert handles[1].result() == reference[1]
        assert handles[2].result() == reference[2]
        assert gen.metrics.cancelled == 1

    def test_cancel_peer_mid_cohort(self):
        """Cancelling a sequence after its step flushed but before its
        result was consumed: the result is discarded, no token is emitted
        from it."""
        _, _, _, size, _ = _setup("declm")
        requests = self._paired_requests(size)
        reference = _references("declm", requests)
        box = {}
        requests[2].on_token = lambda h, tok, i, at: box.__setitem__(2, h)
        # sequence 0 is processed before sequence 2 in each cohort: at
        # cohort k>0 this cancels sequence 2 between its flush and its
        # consume
        requests[0].on_token = (
            lambda h, tok, i, at: box[2].cancel() if i == 1 else None
        )
        handles, _, gen = _generate("declm", requests)

        assert handles[2].stats.status == "cancelled"
        assert handles[2].tokens == reference[2][:1]
        assert handles[0].result() == reference[0]
        assert handles[1].result() == reference[1]
        assert gen.metrics.cancelled == 1

    def test_cancel_after_done_returns_false(self):
        _, _, _, size, _ = _setup("declm")
        requests = self._paired_requests(size, n=1, max_new=2)
        handles, _, _ = _generate("declm", requests)
        assert handles[0].stats.status == "done"
        assert handles[0].cancel() is False

    def test_raising_on_token_fails_only_its_sequence(self):
        _, _, _, size, _ = _setup("declm")
        requests = self._paired_requests(size)
        reference = _references("declm", requests)

        def boom(h, tok, i, at):
            if i == 1:
                raise RuntimeError("consumer exploded")

        requests[1].on_token = boom
        handles, _, _ = _generate("declm", requests)
        assert handles[1].stats.status == "failed"
        with pytest.raises(RuntimeError, match="consumer exploded"):
            handles[1].result()
        assert handles[0].result() == reference[0]
        assert handles[2].result() == reference[2]


class TestDeadlines:
    def test_deadline_expiry_mid_generation(self):
        """A deadline passing mid-decode drops the sequence at the next
        round boundary with its partial tokens; round-mates finish
        untouched."""
        _, _, _, size, _ = _setup("declm")
        rng = np.random.default_rng(17)
        mk = lambda: [  # noqa: E731
            GenerationRequest(
                [int(rng.integers(0, size.classes))],
                max_new_tokens=8,
                arrival=i * 0.0002,
            )
            for i in range(3)
        ]
        baseline = _generate("declm", mk())[0]
        reference = [list(h.tokens) for h in baseline]
        # place the deadline between token 1 and token 2 of sequence 1
        s = baseline[1].stats
        emit_at = [s.first_token_at]
        for gap in s.inter_step_ms:
            emit_at.append(emit_at[-1] + gap / 1e3)
        deadline = (emit_at[1] + emit_at[2]) / 2

        rng = np.random.default_rng(17)
        requests = mk()
        requests[1].deadline = deadline
        handles, _, gen = _generate("declm", requests)

        assert handles[1].stats.status == "expired"
        assert handles[1].tokens == reference[1][:2]
        with pytest.raises(GenerationExpired):
            handles[1].result()
        with pytest.raises(RequestExpired):  # superclass catches it too
            handles[1].result()
        assert handles[0].result() == reference[0]
        assert handles[2].result() == reference[2]
        assert gen.metrics.expired == 1

    def test_deadline_dead_on_arrival(self):
        _, _, _, size, _ = _setup("declm")
        requests = [
            GenerationRequest([1], max_new_tokens=4, arrival=0.0),
            GenerationRequest(
                [2], max_new_tokens=4, arrival=0.002, deadline=0.001
            ),
        ]
        reference = _references("declm", requests)
        handles, _, gen = _generate("declm", requests)
        assert handles[1].stats.status == "expired"
        assert handles[1].tokens == []
        assert handles[1].stats.steps == 0
        with pytest.raises(GenerationExpired):
            handles[1].result()
        assert handles[0].result() == reference[0]
        assert gen.metrics.expired == 1


class TestStateResidency:
    def test_feedback_state_stays_on_device(self):
        """The fed-back recurrent state is a device-born arena view marked
        resident: steady-state decode rounds charge no host->device copy
        for it.  Disabling the residency mark must strictly increase memcpy
        traffic and change no token."""
        _, _, _, size, _ = _setup("declm")

        def run(mark):
            requests = _make_requests(size.classes, 4, 6, seed=19)
            module, _, _, _, compiled = _setup("declm")
            session = compiled.serve("adaptive", clock=SimulatedClock())
            gen = GenerationSession(session, module, size)
            gen._mark_resident = mark
            copies = []
            flush = session.flush

            def counting_flush(*a, **k):
                out = flush(*a, **k)
                if session.last_stats is not None:
                    copies.append(session.last_stats.device["num_memcpy"])
                return out

            session.flush = counting_flush
            handles = gen.generate(requests)
            return [h.result() for h in handles], sum(copies)

        tokens_on, copies_on = run(True)
        tokens_off, copies_off = run(False)
        assert tokens_on == tokens_off
        assert copies_on < copies_off


class TestModes:
    def test_exactly_one_driver(self):
        module, mod, params, size, compiled = _setup("declm")
        with pytest.raises(ValueError, match="exactly one"):
            GenerationSession(model=module, size=size)

    def test_generate_requires_simulated_clock(self):
        module, _, _, size, compiled = _setup("declm")
        session = compiled.serve("adaptive")  # wall clock
        gen = GenerationSession(session, module, size)
        with pytest.raises(RuntimeError, match="SimulatedClock"):
            gen.generate([GenerationRequest([1])])

    def test_submit_requires_server_mode(self):
        module, _, _, size, compiled = _setup("declm")
        session = compiled.serve("adaptive", clock=SimulatedClock())
        gen = GenerationSession(session, module, size)
        with pytest.raises(RuntimeError, match="wall-clock"):
            gen.submit(GenerationRequest([1]))

    def test_wall_clock_generation_through_server(self):
        """End-to-end wall-clock mode: the pump thread resubmits steps
        through a running Server's loop, streams tokens, and the endpoint
        summary surfaces the decode SLO metrics."""
        module, mod, params, size, _ = _setup("declm")
        requests = [
            GenerationRequest([3, 1], max_new_tokens=4),
            GenerationRequest([5], max_new_tokens=3),
        ]
        reference = [
            reference_generate(
                mod, params, module, size, r.prompt, r.max_new_tokens
            )
            for r in requests
        ]
        server = Server()
        server.add_endpoint(
            "dec", compile_model(mod, params, CompilerOptions()), policy="size", n=1
        )
        with server.run():
            with GenerationSession(
                server=server, endpoint="dec", model=module, size=size
            ) as gen:
                handles = [gen.submit(r) for r in requests]
                streamed = list(handles[0].stream(timeout=10.0))
                assert [h.result(timeout=10.0) for h in handles] == reference
                assert streamed == reference[0]
                gen.drain(timeout=10.0)
            summary = server.summary()["dec"]
            assert summary["gen_requests"] == 2
            assert summary["gen_tokens"] == 7
            assert summary["ttfs_p50_ms"] > 0

    def test_wall_clock_cancel_before_first_step(self):
        module, mod, params, size, _ = _setup("declm")
        server = Server()
        server.add_endpoint(
            "dec", compile_model(mod, params, CompilerOptions()), policy="size", n=1
        )
        with server.run():
            with GenerationSession(
                server=server, endpoint="dec", model=module, size=size
            ) as gen:
                req = GenerationRequest([1], max_new_tokens=4)
                done = GenerationRequest([2], max_new_tokens=2)
                h_done = gen.submit(done)
                h_done.result(timeout=10.0)
                h = gen.submit(req)
                h.cancel()
                gen.drain(timeout=10.0)
                assert h.stats.status in ("cancelled", "done")
                if h.stats.status == "cancelled":
                    with pytest.raises(GenerationCancelled):
                        h.result(timeout=1.0)
