"""Tests for the primitive operator registry (numerics and metadata)."""

import numpy as np
import pytest

from repro.kernels import all_ops, get_op, has_op
from repro.kernels.registry import OpDef, register


class TestRegistryLookup:
    def test_has_and_get(self):
        assert has_op("dense")
        assert get_op("dense").name == "dense"
        assert not has_op("not_an_op")

    def test_unknown_op_error_is_helpful(self):
        with pytest.raises(KeyError, match="unknown operator"):
            get_op("definitely_missing")

    def test_all_ops_returns_copy(self):
        ops = all_ops()
        ops["fake"] = None
        assert not has_op("fake")

    def test_expected_operator_inventory(self):
        expected = {
            "dense", "matmul", "add", "sub", "mul", "scale", "sigmoid", "tanh",
            "relu", "gelu", "softmax", "layer_norm", "argmax", "concat",
            "reshape", "transpose", "full", "zeros", "item", "item_int",
            "scalar_gt", "scalar_add", "mean", "sum", "bias_add",
        }
        assert expected <= set(all_ops())

    def test_kinds(self):
        assert get_op("dense").kind == "tensor"
        assert get_op("scalar_gt").kind == "host"
        assert get_op("item").kind == "sync"


class TestOpNumerics:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_dense(self):
        x = self.rng.standard_normal((1, 4)).astype(np.float32)
        w = self.rng.standard_normal((4, 3)).astype(np.float32)
        np.testing.assert_allclose(get_op("dense").compute(x, w), x @ w, rtol=1e-6)

    def test_matmul_batched_semantics(self):
        a = self.rng.standard_normal((2, 3, 4)).astype(np.float32)
        b = self.rng.standard_normal((2, 4, 5)).astype(np.float32)
        np.testing.assert_allclose(get_op("matmul").compute(a, b), a @ b, rtol=1e-6)

    @pytest.mark.parametrize(
        "name,fn",
        [
            ("add", lambda a, b: a + b),
            ("sub", lambda a, b: a - b),
            ("mul", lambda a, b: a * b),
            ("scale", lambda a, b: a * b),
            ("maximum", np.maximum),
            ("minimum", np.minimum),
        ],
    )
    def test_binary_elementwise(self, name, fn):
        a = self.rng.standard_normal((2, 5)).astype(np.float32)
        b = self.rng.standard_normal((2, 5)).astype(np.float32)
        np.testing.assert_allclose(get_op(name).compute(a, b), fn(a, b), rtol=1e-6)

    @pytest.mark.parametrize(
        "name,fn",
        [
            ("relu", lambda a: np.maximum(a, 0)),
            ("sigmoid", lambda a: 1 / (1 + np.exp(-a))),
            ("tanh", np.tanh),
            ("exp", np.exp),
            ("neg", lambda a: -a),
            ("sqrt", np.sqrt),
        ],
    )
    def test_unary_elementwise(self, name, fn):
        a = np.abs(self.rng.standard_normal((3, 4)).astype(np.float32)) + 0.1
        np.testing.assert_allclose(get_op(name).compute(a), fn(a), rtol=1e-5)

    def test_softmax_rows_sum_to_one(self):
        x = self.rng.standard_normal((2, 6)).astype(np.float32)
        out = get_op("softmax").compute(x, axis=-1)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(2), atol=1e-6)

    def test_softmax_is_shift_invariant(self):
        x = self.rng.standard_normal((1, 5)).astype(np.float32)
        a = get_op("softmax").compute(x, axis=-1)
        b = get_op("softmax").compute(x + 100.0, axis=-1)
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_layer_norm_zero_mean_unit_var(self):
        x = self.rng.standard_normal((4, 8)).astype(np.float32)
        out = get_op("layer_norm").compute(x, np.ones((1, 8), np.float32), np.zeros((1, 8), np.float32))
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_argmax(self):
        x = np.array([[0.1, 0.9, 0.3]], dtype=np.float32)
        assert get_op("argmax").compute(x, axis=-1)[0] == 1

    def test_concat(self):
        a = np.ones((1, 2), np.float32)
        b = np.zeros((1, 3), np.float32)
        assert get_op("concat").compute(a, b, axis=1).shape == (1, 5)

    def test_reshape_transpose(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert get_op("reshape").compute(x, newshape=(4, 3)).shape == (4, 3)
        np.testing.assert_allclose(get_op("transpose").compute(x, axes=(1, 0)), x.T)

    def test_full_and_zeros(self):
        f = get_op("full").compute(shape=(2, 2), value=3.0)
        np.testing.assert_allclose(f, np.full((2, 2), 3.0))
        np.testing.assert_allclose(get_op("zeros").compute(shape=(1, 3)), np.zeros((1, 3)))

    def test_item_and_item_int(self):
        x = np.array([[2.5, 7.0]], dtype=np.float32)
        assert get_op("item").compute(x, index=1) == pytest.approx(7.0)
        assert get_op("item_int").compute(np.array([3], np.int32)) == 3

    @pytest.mark.parametrize(
        "name,a,b,expected",
        [
            ("scalar_gt", 2.0, 1.0, True),
            ("scalar_lt", 2.0, 1.0, False),
            ("scalar_ge", 1.0, 1.0, True),
            ("scalar_eq", 3, 3, True),
            ("scalar_and", True, False, False),
            ("scalar_or", True, False, True),
            ("scalar_add", 2, 3, 5),
            ("scalar_sub", 2, 3, -1),
            ("scalar_mul", 2, 3, 6),
        ],
    )
    def test_host_scalar_ops(self, name, a, b, expected):
        assert get_op(name).compute(a, b) == expected


class TestShapeInferenceAndCost:
    def test_dense_shape_and_flops(self):
        od = get_op("dense")
        assert od.infer_shape([(1, 8), (8, 16)], {}) == (1, 16)
        assert od.estimate_flops([(1, 8), (8, 16)], {}) == pytest.approx(2 * 8 * 16)

    def test_broadcast_shape(self):
        assert get_op("add").infer_shape([(4, 1, 8), (1, 8)], {}) == (4, 1, 8)

    def test_reduce_shape_keepdims(self):
        assert get_op("mean").infer_shape([(4, 8)], {"axis": 1, "keepdims": True}) == (4, 1)
        assert get_op("mean").infer_shape([(4, 8)], {"axis": 0}) == (8,)

    def test_concat_shape(self):
        assert get_op("concat").infer_shape([(1, 4), (1, 6)], {"axis": 1}) == (1, 10)

    def test_matmul_flops_with_batch(self):
        flops = get_op("matmul").estimate_flops([(2, 3, 4), (2, 4, 5)], {})
        assert flops == pytest.approx(2 * 2 * 3 * 4 * 5)

    def test_elementwise_flags(self):
        assert get_op("add").is_elementwise
        assert not get_op("dense").is_elementwise
        assert get_op("reshape").is_injective

    def test_register_overwrites(self):
        original = get_op("relu")
        try:
            register(OpDef(name="relu", compute=lambda a, **k: a, infer_shape=lambda s, a: s[0]))
            assert get_op("relu").compute is not original.compute
        finally:
            register(original)

    def test_default_flops_falls_back_to_output_size(self):
        od = OpDef(name="tmp", compute=lambda a, **k: a, infer_shape=lambda s, a: (2, 3))
        assert od.estimate_flops([(2, 3)], {}) == 6.0
