"""Tests for the shape-keyed kernel-specialization tier: the promotion
state machine, end-to-end reference identity of specialized serving across
scheduler policies / models / device counts, and the tier's accounting."""

import numpy as np
import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.models import MODEL_MODULES
from repro.specialize import (
    BUILD,
    COLD,
    DEMOTED,
    PROMOTED,
    UNSUPPORTED,
    SpecializationCache,
)
from repro.utils import flatten_arrays, values_allclose

ALL_POLICIES = ("inline_depth", "dynamic_depth", "agenda", "nobatch", "dynet")
MODELS = ("treelstm", "birnn", "stackrnn")


def exact_equal(a, b):
    """Bitwise reference identity over nested output structures."""
    fa, fb = flatten_arrays(a), flatten_arrays(b)
    return len(fa) == len(fb) and all(
        np.array_equal(np.asarray(x), np.asarray(y)) for x, y in zip(fa, fb)
    )


def build_setup(model_name, batch=4, seed=3):
    module = MODEL_MODULES[model_name]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, batch, seed=seed)
    reference = reference_run(mod, params, instances)
    return mod, params, instances, reference


class _FakeEntry:
    frozen_nbytes = 64.0

    @classmethod
    def build(cls, *args, **kwargs):
        return cls()


class _UnsupportedEntry:
    @classmethod
    def build(cls, *args, **kwargs):
        return None


class TestStateMachine:
    """Unit tests of the promotion state machine, with the entry builder
    stubbed so no runtime is needed."""

    def test_arm_is_idempotent(self):
        cache = SpecializationCache()
        assert not cache.armed
        assert cache.arm() is True
        assert cache.arm() is False
        assert cache.armed

    def test_cold_counts_to_threshold_then_builds(self):
        cache = SpecializationCache(threshold=3)
        slot = cache.make_slot()
        assert slot.state == COLD
        assert cache.poll(slot) is None
        assert cache.poll(slot) is None
        assert cache.poll(slot) is BUILD  # third launch crosses threshold
        assert cache.misses == 3

    def test_threshold_of_one_builds_immediately(self):
        cache = SpecializationCache(threshold=1)
        slot = cache.make_slot()
        assert cache.poll(slot) is BUILD

    def test_build_promotes_and_counts(self, monkeypatch):
        monkeypatch.setattr("repro.specialize.cache.SpecializedEntry", _FakeEntry)
        cache = SpecializationCache(threshold=1)
        slot = cache.make_slot()
        assert cache.poll(slot) is BUILD
        entry = cache.build_and_install(slot, None, None, None, None, None, None)
        assert entry is not None
        assert slot.state == PROMOTED
        assert cache.promotions == 1 and cache.entries == 1
        assert cache.frozen_bytes == 64.0
        # promoted slots now dispatch through the entry, without misses
        misses_before = cache.misses
        assert cache.poll(slot) is entry
        assert cache.misses == misses_before

    def test_unfreezable_layout_is_terminally_unsupported(self, monkeypatch):
        monkeypatch.setattr(
            "repro.specialize.cache.SpecializedEntry", _UnsupportedEntry
        )
        cache = SpecializationCache(threshold=1)
        slot = cache.make_slot()
        assert cache.poll(slot) is BUILD
        assert cache.build_and_install(slot, None, None, None, None, None, None) is None
        assert slot.state == UNSUPPORTED
        assert cache.unsupported == 1 and cache.entries == 0
        # unsupported is terminal: never BUILD again
        for _ in range(5):
            assert cache.poll(slot) is None
        assert slot.state == UNSUPPORTED

    def test_demotion_is_terminal_and_releases_state(self, monkeypatch):
        monkeypatch.setattr("repro.specialize.cache.SpecializedEntry", _FakeEntry)
        cache = SpecializationCache(threshold=1)
        slot = cache.make_slot()
        cache.poll(slot)
        cache.build_and_install(slot, None, None, None, None, None, None)
        cache.demote(slot)
        assert slot.state == DEMOTED and slot.entry is None
        assert cache.demotions == 1
        assert cache.entries == 0 and cache.frozen_bytes == 0.0
        for _ in range(5):
            assert cache.poll(slot) is None  # never promotes again
        assert slot.state == DEMOTED

    def test_max_entries_caps_new_promotions(self, monkeypatch):
        monkeypatch.setattr("repro.specialize.cache.SpecializedEntry", _FakeEntry)
        cache = SpecializationCache(threshold=1, max_entries=2)
        promoted = []
        for _ in range(2):
            slot = cache.make_slot()
            assert cache.poll(slot) is BUILD
            cache.build_and_install(slot, None, None, None, None, None, None)
            promoted.append(slot)
        capped = cache.make_slot()
        assert cache.poll(capped) is None  # at capacity: no new BUILDs
        assert capped.state == COLD
        # existing entries keep hitting
        assert cache.poll(promoted[0]) is promoted[0].entry

    def test_release_slots_returns_capacity(self, monkeypatch):
        monkeypatch.setattr("repro.specialize.cache.SpecializedEntry", _FakeEntry)
        cache = SpecializationCache(threshold=1, max_entries=1)
        slot = cache.make_slot()
        cache.poll(slot)
        cache.build_and_install(slot, None, None, None, None, None, None)
        assert cache.entries == 1
        cache.release_slots([slot])
        assert cache.entries == 0 and cache.frozen_bytes == 0.0
        # capacity freed: a fresh fingerprint can promote again
        fresh = cache.make_slot()
        assert cache.poll(fresh) is BUILD
        cache.release_slots(None)  # tolerated

    def test_stats_dict_shape(self):
        stats = SpecializationCache().stats_dict()
        assert set(stats) == {
            "promotions",
            "demotions",
            "hits",
            "misses",
            "unsupported",
            "entries",
            "frozen_bytes",
        }


class TestPromotionEndToEnd:
    def test_sessions_promote_and_hit(self):
        mod, params, instances, reference = build_setup("treelstm")
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(max_batch=len(instances))
        for round_no in range(6):
            handles = [session.submit(i) for i in instances]
            session.flush()
            assert all(
                exact_equal(r, h.result())
                for r, h in zip(reference, handles)
            ), f"round {round_no} diverged"
        spec = session.last_stats.specialize
        assert spec["promotions"] > 0
        assert spec["hits"] > 0
        assert spec["demotions"] == 0
        assert spec["entries"] == spec["promotions"]
        assert spec["frozen_bytes"] > 0
        # the host-time ledger has a specialize bucket once armed
        assert "specialize" in session.last_stats.host_ms

    def test_promotion_respects_threshold(self):
        mod, params, instances, _ = build_setup("treelstm")
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(max_batch=len(instances))
        # rounds 1-3 count (the third launch builds, still generic) …
        for _ in range(3):
            for i in instances:
                session.submit(i)
            session.flush()
        spec = session.last_stats.specialize
        assert spec["promotions"] > 0
        assert spec["hits"] == 0
        # … and round 4 is the first specialized dispatch
        for i in instances:
            session.submit(i)
        session.flush()
        assert session.last_stats.specialize["hits"] > 0

    def test_shape_never_seen_twice_never_promotes(self):
        module = MODEL_MODULES["treelstm"]
        mod, params, size = module.build_for("test")
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(max_batch=4)
        for round_no in range(6):
            batch = module.make_batch(mod, size, 4, seed=100 + round_no)
            reference = reference_run(mod, params, batch)
            handles = [session.submit(i) for i in batch]
            session.flush()
            assert all(
                values_allclose(r, h.result())
                for r, h in zip(reference, handles)
            )
        spec = session.last_stats.specialize
        assert spec["promotions"] == 0
        assert spec["hits"] == 0

    def test_demotion_falls_back_to_identical_results(self, monkeypatch):
        mod, params, instances, reference = build_setup("treelstm")
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(max_batch=len(instances))
        for _ in range(4):
            for i in instances:
                session.submit(i)
            session.flush()
        spec = session.last_stats.specialize
        assert spec["hits"] > 0 and spec["entries"] > 0
        # break every entry's invariant check: each promoted fingerprint
        # must demote once and the round must still be reference-identical
        from repro.specialize.entry import SpecializedEntry

        monkeypatch.setattr(
            SpecializedEntry, "try_resolve", lambda self, *a, **k: None
        )
        handles = [session.submit(i) for i in instances]
        session.flush()
        assert all(
            exact_equal(r, h.result()) for r, h in zip(reference, handles)
        )
        spec = session.last_stats.specialize
        assert spec["demotions"] > 0
        assert spec["entries"] == 0
        monkeypatch.undo()
        # demotion is permanent: later rounds run generic, hits stop growing
        hits_before = spec["hits"]
        handles = [session.submit(i) for i in instances]
        session.flush()
        assert all(
            exact_equal(r, h.result()) for r, h in zip(reference, handles)
        )
        spec = session.last_stats.specialize
        assert spec["hits"] == hits_before
        assert spec["misses"] > 0

    def test_knob_disables_tier(self):
        mod, params, instances, _ = build_setup("treelstm")
        model = compile_model(mod, params, CompilerOptions(kernel_specialization=False))
        session = model.session(max_batch=len(instances))
        for _ in range(5):
            for i in instances:
                session.submit(i)
            session.flush()
        assert session.engine.runtime.specializer is None
        assert session.last_stats.specialize == {}
        assert "specialize" not in session.last_stats.host_ms

    def test_one_shot_runs_leave_tier_dormant(self):
        mod, params, instances, _ = build_setup("treelstm")
        model = compile_model(mod, params, CompilerOptions())
        engine = model.make_engine()
        for _ in range(5):
            engine.run(instances)
        _, stats = engine.run(instances)
        assert stats.specialize.get("promotions", 0) == 0
        assert stats.specialize.get("misses", 0) == 0


class TestReferenceIdentity:
    """Specialized serving must be bitwise-identical to the NumPy oracle
    across every scheduler policy, model, and device count — enforced both
    end-to-end and per-launch (crosscheck re-runs the oracle on the same
    operands for every specialized dispatch)."""

    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @pytest.mark.parametrize("devices", [1, 4])
    def test_specialized_matches_oracle(self, model_name, policy, devices):
        mod, params, instances, reference = build_setup(model_name)
        model = compile_model(
            mod, params, CompilerOptions(kernel_specialization=True, scheduler=policy)
        )
        kwargs = (
            {"devices": 4, "placement": "round_robin"} if devices == 4 else {}
        )
        session = model.session(max_batch=len(instances), **kwargs)
        session.engine.runtime.specializer.crosscheck = True
        for round_no in range(5):
            handles = [session.submit(i) for i in instances]
            session.flush()
            assert all(
                exact_equal(r, h.result())
                for r, h in zip(reference, handles)
            ), f"{model_name}/{policy}/dev{devices} round {round_no}"
        spec = session.last_stats.specialize
        assert spec["promotions"] > 0, "steady-state rounds must promote"
