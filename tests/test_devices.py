"""Tests for the multi-device subsystem: GPU presets, interconnects, device
groups, placement policies, cross-device transfer pricing, and
reference-identity of every placement across models and device counts."""

import importlib
import sys
import warnings

import numpy as np
import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.devices import (
    DataParallelPlacement,
    DeviceGroup,
    Interconnect,
    PlacementPolicy,
    RoundRobinPlacement,
    SinglePlacement,
    available_placements,
    make_placement,
    register_placement,
    unregister_placement,
)
from repro.kernels.batched import LaunchRecord
from repro.models import MODEL_MODULES
from repro.runtime.device import DeviceCounters, DeviceSimulator, GPUSpec
from repro.runtime.scheduler import ScheduledBatch
from repro.serve import Server, SimulatedClock
from repro.utils import values_allclose

BATCH = 8

ALL_PLACEMENTS = ("single", "round_robin", "data_parallel")


def build(model_name, batch=BATCH, seed=11):
    module = MODEL_MODULES[model_name]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, batch, seed=seed)
    reference = reference_run(mod, params, instances)
    compiled = compile_model(mod, params, CompilerOptions())
    return compiled, instances, reference


@pytest.fixture(scope="module")
def treelstm():
    return build("treelstm")


@pytest.fixture(scope="module")
def birnn():
    return build("birnn")


# ---------------------------------------------------------------------------
# GPUSpec presets and validation
# ---------------------------------------------------------------------------


class TestGPUSpecPresets:
    def test_named_presets_exist(self):
        for name in ("rtx3070", "a100", "laptop"):
            spec = GPUSpec.preset(name)
            assert isinstance(spec, GPUSpec)
            assert name in GPUSpec.available_presets()

    def test_preset_returns_a_copy(self):
        a = GPUSpec.preset("laptop")
        a.mem_bandwidth_gbps = 1.0
        assert GPUSpec.preset("laptop").mem_bandwidth_gbps != 1.0

    def test_preset_overrides(self):
        spec = GPUSpec.preset("a100", launch_overhead_us=9.0)
        assert spec.launch_overhead_us == 9.0
        assert spec.name == "simulated-a100"

    def test_unknown_preset_lists_available(self):
        with pytest.raises(ValueError, match="rtx3070"):
            GPUSpec.preset("tpu9000")

    def test_default_spec_matches_rtx3070(self):
        assert GPUSpec.preset("rtx3070").mem_bandwidth_gbps == GPUSpec().mem_bandwidth_gbps

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mem_bandwidth_gbps": 0.0},
            {"peak_gflops": -1.0},
            {"launch_overhead_us": 0.0},
            {"min_utilization": 0.0},
            {"min_utilization": 1.5},
            {"scattered_read_penalty": 0.5},
            {"memcpy_overhead_us": -1.0},
        ],
    )
    def test_field_validation(self, kwargs):
        with pytest.raises(ValueError):
            GPUSpec(**kwargs)

    def test_simulator_accepts_preset_name(self):
        sim = DeviceSimulator(spec="laptop")
        assert sim.spec.name == "simulated-laptop"


# ---------------------------------------------------------------------------
# Interconnect
# ---------------------------------------------------------------------------


class TestInterconnect:
    def test_presets(self):
        pcie = Interconnect.preset("pcie")
        nvlink = Interconnect.preset("nvlink")
        assert nvlink.bandwidth_gbps > pcie.bandwidth_gbps
        assert set(Interconnect.available_presets()) >= {"pcie", "nvlink"}

    def test_transfer_time(self):
        link = Interconnect(name="x", bandwidth_gbps=1.0, latency_us=3.0)
        # 1 GB/s == 1e3 bytes/us: 2000 bytes -> 2 us + 3 us latency
        assert link.transfer_time_us(2000.0) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Interconnect(bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            Interconnect(latency_us=-1.0)

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="nvlink"):
            Interconnect.preset("carrier_pigeon")


# ---------------------------------------------------------------------------
# DeviceGroup
# ---------------------------------------------------------------------------


class TestDeviceGroup:
    def test_basic_construction(self):
        group = DeviceGroup(3, spec="laptop")
        assert len(group) == 3
        assert group.num_devices == 3
        assert [d.device_id for d in group] == [0, 1, 2]
        assert group.device_for(2) is group[2]
        assert group.spec.name == "simulated-laptop"

    def test_heterogeneous_specs(self):
        group = DeviceGroup(["a100", GPUSpec.preset("laptop")])
        assert group[0].spec.name == "simulated-a100"
        assert group[1].spec.name == "simulated-laptop"
        assert "heterogeneous" in repr(group)

    def test_spec_list_with_count(self):
        group = DeviceGroup(2, spec=["a100", "laptop"])
        assert group[1].spec.name == "simulated-laptop"
        with pytest.raises(ValueError, match="one spec per device"):
            DeviceGroup(3, spec=["a100", "laptop"])

    def test_adopts_existing_simulators_without_mutating(self):
        sims = [DeviceSimulator(), DeviceSimulator()]
        group = DeviceGroup(sims)
        assert group[0] is sims[0]
        # adoption must not touch the simulators: they may still back a
        # standalone runtime that addresses them as device 0
        assert sims[1].device_id == 0
        assert sims[1].device_for(0) is sims[1]
        # the group reports members by position regardless
        assert [d["device"] for d in group.per_device_dicts()] == [0.0, 1.0]

    def test_mixed_simulators_and_specs_rejected(self):
        with pytest.raises(TypeError, match="not a mixture"):
            DeviceGroup([DeviceSimulator(), "a100"])

    def test_needs_at_least_one_device(self):
        with pytest.raises(ValueError):
            DeviceGroup(0)
        with pytest.raises(ValueError):
            DeviceGroup([])

    def test_device_for_out_of_range(self):
        with pytest.raises(IndexError, match="2 devices"):
            DeviceGroup(2).device_for(5)

    def test_peer_transfer_charges_destination(self):
        group = DeviceGroup(2, interconnect=Interconnect("x", 1.0, 3.0))
        t = group.peer_transfer(0, 1, 2000.0)
        assert t == pytest.approx(5.0)
        assert group[1].counters.peer_time_us == pytest.approx(5.0)
        assert group[1].counters.num_peer_transfers == 1
        assert group[1].counters.bytes_peer == 2000.0
        assert group[1].counters.api_time_us == group[1].spec.api_overhead_us
        assert group[0].counters.peer_time_us == 0.0
        # peer time is device time: it delays the consuming launch
        assert group[1].counters.total_device_us == pytest.approx(5.0)

    def test_same_device_transfer_is_free(self):
        group = DeviceGroup(2)
        assert group.peer_transfer(1, 1, 1e9) == 0.0
        assert group.counters.num_peer_transfers == 0

    def test_single_simulator_rejects_peers(self):
        sim = DeviceSimulator()
        assert sim.peer_transfer(0, 0, 100.0) == 0.0
        with pytest.raises(RuntimeError, match="DeviceGroup"):
            sim.peer_transfer(0, 1, 100.0)

    def test_counters_aggregate_and_elapsed(self):
        group = DeviceGroup(2)
        record = LaunchRecord(
            kernel_name="k", batch_size=4, flops=1e6, bytes_read=1e6, bytes_written=1e6
        )
        group[0].launch(record)
        group[0].launch(record)
        group[1].launch(record)
        merged = group.counters
        assert merged.num_kernel_launches == 3
        assert merged.launches_by_kernel == {"k": 3}
        assert merged.total_device_us == pytest.approx(
            group[0].counters.total_device_us + group[1].counters.total_device_us
        )
        d = group.counters_dict()
        assert d["elapsed_device_us"] == pytest.approx(
            group[0].counters.total_device_us
        )
        per = group.per_device_dicts()
        assert [p["device"] for p in per] == [0.0, 1.0]
        assert sum(p["num_kernel_launches"] for p in per) == 3

    def test_device_summary_balance(self):
        group = DeviceGroup(2)
        record = LaunchRecord(
            kernel_name="k", batch_size=4, flops=1e6, bytes_read=1e6, bytes_written=1e6
        )
        group[0].launch(record)
        summary = group.device_summary()
        assert summary["count"] == 2
        # balance is over *participating* members: one busy device is
        # perfectly balanced with itself, the idle member shows up in
        # active_devices instead
        assert summary["active_devices"] == 1
        assert summary["balance"] == pytest.approx(1.0)
        group[1].launch(record)
        summary = group.device_summary()
        assert summary["active_devices"] == 2
        assert summary["balance"] == pytest.approx(1.0)

    def test_reset_and_schedule_quality_fan_out(self):
        group = DeviceGroup(2)
        group.set_schedule_quality("k", 0.5)
        assert group[1].schedule_table["k"] == 0.5
        record = LaunchRecord(
            kernel_name="k", batch_size=1, flops=1.0, bytes_read=1.0, bytes_written=1.0
        )
        group[1].launch(record)
        group.reset()
        assert group.counters.num_kernel_launches == 0

    def test_per_device_residency(self):
        group = DeviceGroup(2)
        host = np.zeros(1024, np.float32)
        assert group[0].ensure_resident(host) > 0.0
        assert group[0].ensure_resident(host) == 0.0  # cached on device 0
        assert group[1].ensure_resident(host) > 0.0  # but not on device 1


# ---------------------------------------------------------------------------
# Placement registry and policies
# ---------------------------------------------------------------------------


def _make_nodes(runtime_like_args, instance_ids, block_id=0):
    """Synthetic DFG nodes (no runtime needed for placement decisions)."""
    from repro.runtime.tensor import DFGNode

    return [
        DFGNode(
            block_id=block_id,
            args=runtime_like_args,
            depth=0,
            phase=0,
            instance_id=i,
            num_outputs=1,
        )
        for i in instance_ids
    ]


class TestPlacementRegistry:
    def test_builtins_listed(self):
        names = available_placements()
        for name in ALL_PLACEMENTS:
            assert name in names

    def test_make_placement(self):
        assert isinstance(make_placement("single"), SinglePlacement)
        assert isinstance(make_placement("round_robin"), RoundRobinPlacement)
        policy = make_placement("data_parallel", min_shard=4)
        assert isinstance(policy, DataParallelPlacement)
        assert policy.min_shard == 4

    def test_unknown_placement_lists_available(self):
        with pytest.raises(ValueError, match="round_robin"):
            make_placement("astrology")

    def test_register_and_unregister(self):
        class Custom(PlacementPolicy):
            name = "custom_test_placement"

        register_placement("custom_test_placement", lambda **_: Custom())
        try:
            assert "custom_test_placement" in available_placements()
            assert isinstance(make_placement("custom_test_placement"), Custom)
            with pytest.raises(ValueError, match="already registered"):
                register_placement("custom_test_placement", lambda **_: Custom())
        finally:
            unregister_placement("custom_test_placement")
        assert "custom_test_placement" not in available_placements()


class TestRoundRobinPlacement:
    def test_splits_by_instance(self):
        group = DeviceGroup(2)
        nodes = _make_nodes((), [0, 1, 2, 3])
        batches = [ScheduledBatch(block_id=0, nodes=nodes)]
        placed = RoundRobinPlacement().place_round(batches, group, {})
        assert len(placed) == 2
        assert [b.device for b in placed] == [0, 1]
        assert [n.instance_id for n in placed[0].nodes] == [0, 2]
        assert [n.instance_id for n in placed[1].nodes] == [1, 3]

    def test_single_device_passthrough(self):
        group = DeviceGroup(1)
        batches = [ScheduledBatch(block_id=0, nodes=_make_nodes((), [0, 1]))]
        assert RoundRobinPlacement().place_round(batches, group, {}) is batches

    def test_same_instance_stays_on_one_device(self):
        group = DeviceGroup(4)
        nodes = _make_nodes((), [5, 5, 5])
        placed = RoundRobinPlacement().place_round(
            [ScheduledBatch(block_id=0, nodes=nodes)], group, {}
        )
        assert len(placed) == 1
        assert placed[0].device == 5 % 4


class TestDataParallelPlacement:
    def test_small_batches_stay_whole(self):
        group = DeviceGroup(4)
        policy = DataParallelPlacement(min_shard=2)
        batches = [ScheduledBatch(block_id=0, nodes=_make_nodes((), [0, 1, 2]))]
        placed = policy.place_round(batches, group, {})
        assert len(placed) == 1 and placed[0].device == 0

    def test_unsplit_batches_route_round_robin(self):
        """Unsplit batches must not pile onto device 0: each one takes the
        next device in rotation (the ROADMAP balance angle)."""
        group = DeviceGroup(4)
        policy = DataParallelPlacement(min_shard=2)
        homes = []
        for _ in range(6):
            batches = [ScheduledBatch(block_id=0, nodes=_make_nodes((), [0, 1, 2]))]
            placed = policy.place_round(batches, group, {})
            assert len(placed) == 1  # still whole
            homes.append(placed[0].device)
        assert homes == [0, 1, 2, 3, 0, 1]

    def test_partial_splits_rotate_with_the_base_per_run(self):
        """A k-way split occupies devices base..base+k-1 (mod N), and the
        base rotates at run boundaries (note_reset), so k<N splits stop
        favouring the low device indices."""
        group = DeviceGroup(4)
        policy = DataParallelPlacement(min_shard=2)
        spec = group.spec
        # per-instance work where a 2-way split pays but 4-way does not
        # (see test_intermediate_shard_count_chosen_when_max_does_not_pay)
        policy.observe(0, 8, 8 * 1.6 + spec.launch_overhead_us, 1, spec)
        seen = []
        for _ in range(4):
            batches = [ScheduledBatch(block_id=0, nodes=_make_nodes((), range(8)))]
            placed = policy.place_round(batches, group, {})
            seen.append([b.device for b in placed])
            policy.note_reset()  # the runtime calls this between runs
        assert seen == [[0, 1], [1, 2], [2, 3], [3, 0]]

    def test_sync_rounds_within_a_run_share_the_base(self):
        """No rotation between a run's sync rounds: fiber chains spanning
        rounds keep producer/consumer shards device-aligned."""
        group = DeviceGroup(4)
        policy = DataParallelPlacement(min_shard=2)
        spec = group.spec
        policy.observe(0, 8, 8 * 1.6 + spec.launch_overhead_us, 1, spec)
        policy.note_reset()  # an empty reset must not rotate either
        seen = []
        for _ in range(3):  # three sync rounds of one run
            batches = [ScheduledBatch(block_id=0, nodes=_make_nodes((), range(8)))]
            placed = policy.place_round(batches, group, {})
            seen.append([b.device for b in placed])
        assert seen == [[0, 1], [0, 1], [0, 1]]

    def test_unsplit_rotation_spans_batches_and_rounds(self):
        """The unsplit round-robin is per batch and persists across rounds,
        so unsplittable work spreads over the whole group even when every
        round carries several unsplit batches."""
        group = DeviceGroup(4)
        policy = DataParallelPlacement(min_shard=2)
        batches = [
            ScheduledBatch(block_id=0, nodes=_make_nodes((), [0, 1, 2])),
            ScheduledBatch(block_id=1, nodes=_make_nodes((), [0, 1, 2])),
        ]
        placed = policy.place_round(batches, group, {})
        assert [b.device for b in placed] == [0, 1]
        placed = policy.place_round(
            [ScheduledBatch(block_id=0, nodes=_make_nodes((), [0, 1, 2]))],
            group,
            {},
        )
        assert [b.device for b in placed] == [2]

    def test_learned_work_drives_split(self):
        group = DeviceGroup(4)
        policy = DataParallelPlacement(min_shard=2)
        spec = group.spec
        # expensive per-instance work: splitting a batch of 8 clearly pays
        policy.observe(0, 8, 8 * 1000.0 + spec.launch_overhead_us, 1, spec)
        batches = [ScheduledBatch(block_id=0, nodes=_make_nodes((), range(8)))]
        placed = policy.place_round(batches, group, {})
        assert len(placed) == 4
        assert [b.device for b in placed] == [0, 1, 2, 3]
        assert [len(b.nodes) for b in placed] == [2, 2, 2, 2]
        # contiguous runs: order preserved
        assert [n.instance_id for b in placed for n in b.nodes] == list(range(8))

    def test_intermediate_shard_count_chosen_when_max_does_not_pay(self):
        group = DeviceGroup(4)
        policy = DataParallelPlacement(min_shard=2)
        spec = group.spec  # api_overhead_us = 4.0
        # per-instance work 1.6us on a batch of 8: a 4-way split saves
        # 1.6*(8-2)=9.6us < 12us serial cost, but a 2-way split saves
        # 1.6*(8-4)=6.4us > 4us — the intermediate split must win
        policy.observe(0, 8, 8 * 1.6 + spec.launch_overhead_us, 1, spec)
        batches = [ScheduledBatch(block_id=0, nodes=_make_nodes((), range(8)))]
        placed = policy.place_round(batches, group, {})
        assert [b.device for b in placed] == [0, 1]
        assert [len(b.nodes) for b in placed] == [4, 4]

    def test_cheap_work_refuses_split(self):
        group = DeviceGroup(4)
        policy = DataParallelPlacement(min_shard=2)
        spec = group.spec
        # work so cheap the serial API overhead of extra launches dominates
        policy.observe(0, 8, spec.launch_overhead_us + 0.001, 1, spec)
        batches = [ScheduledBatch(block_id=0, nodes=_make_nodes((), range(8)))]
        assert len(policy.place_round(batches, group, {})) == 1

    def test_min_shard_validation(self):
        with pytest.raises(ValueError):
            DataParallelPlacement(min_shard=0)


# ---------------------------------------------------------------------------
# End-to-end equivalence: placement x model x device count
# ---------------------------------------------------------------------------


class TestMultiDeviceEquivalence:
    @pytest.mark.parametrize("model_name", ["treelstm", "birnn"])
    @pytest.mark.parametrize("placement", ALL_PLACEMENTS)
    @pytest.mark.parametrize("devices", [2, 4])
    def test_reference_identical(self, model_name, placement, devices, request):
        compiled, instances, reference = request.getfixturevalue(model_name)
        engine = compiled.make_engine(devices=devices, placement=placement)
        outputs, stats = engine.run(instances)
        assert all(values_allclose(a, b) for a, b in zip(reference, outputs))
        # per-device counters must sum to the group totals
        assert stats.per_device
        total = sum(d["total_device_us"] for d in stats.per_device)
        assert total == pytest.approx(stats.device["total_device_us"])
        launches = sum(d["num_kernel_launches"] for d in stats.per_device)
        assert launches == stats.device["num_kernel_launches"]

    def test_single_placement_matches_single_device_totals(self, treelstm):
        compiled, instances, reference = treelstm
        solo_outputs, solo_stats = compiled.make_engine().run(instances)
        engine = compiled.make_engine(devices=4, placement="single")
        outputs, stats = engine.run(instances)
        assert all(values_allclose(a, b) for a, b in zip(reference, outputs))
        # all work on device 0; other members idle
        assert stats.per_device[0]["total_device_us"] == pytest.approx(
            solo_stats.device["total_device_us"]
        )
        assert stats.per_device[0]["num_kernel_launches"] == (
            solo_stats.device["num_kernel_launches"]
        )
        for idle in stats.per_device[1:]:
            assert idle["total_device_us"] == 0.0
        # and the group aggregate equals the single-device run
        assert stats.device["total_device_us"] == pytest.approx(
            solo_stats.device["total_device_us"]
        )

    def test_elapsed_is_busiest_member(self, treelstm):
        compiled, instances, _ = treelstm
        _, stats = compiled.make_engine(devices=2, placement="round_robin").run(
            instances
        )
        busiest = max(d["total_device_us"] for d in stats.per_device)
        assert stats.device["elapsed_device_us"] == pytest.approx(busiest)
        assert stats.device_total_ms == pytest.approx(busiest / 1e3)
        assert stats.device_work_ms == pytest.approx(
            stats.device["total_device_us"] / 1e3
        )

    def test_round_robin_keeps_chains_device_local(self, treelstm):
        compiled, instances, _ = treelstm
        engine = compiled.make_engine(devices=2, placement="round_robin")
        _, stats = engine.run(instances)
        # independent requests shard along instance boundaries: no
        # cross-device operand traffic
        assert stats.device["num_peer_transfers"] == 0
        assert stats.memory.get("peer", 0) == 0

    def test_cross_device_operands_are_priced(self, treelstm):
        """A placement that alternates whole batches across devices forces
        consumer batches to read producer arenas from the other device —
        classified as peer traffic and priced, with identical results."""
        compiled, instances, reference = treelstm

        class Alternate(PlacementPolicy):
            name = "alternate_test"

            def place_round(self, batches, group, kernels):
                for i, batch in enumerate(batches):
                    batch.device = i % group.num_devices
                return batches

        engine = compiled.make_engine(devices=2, placement=Alternate())
        outputs, stats = engine.run(instances)
        assert all(values_allclose(a, b) for a, b in zip(reference, outputs))
        assert stats.device["num_peer_transfers"] > 0
        assert stats.device["peer_time_us"] > 0.0
        peer_ops = stats.memory.get("peer", 0)
        assert peer_ops > 0

        # singleton batches (nobatch scheduler) classify on the planning
        # fast path but must still report their remote reads as peer
        # operands, in agreement with the device transfer counters
        solo_engine = compiled.make_engine(
            devices=2, placement=Alternate(), scheduler="nobatch"
        )
        solo_outputs, solo_stats = solo_engine.run(instances)
        assert all(values_allclose(a, b) for a, b in zip(reference, solo_outputs))
        assert solo_stats.device["num_peer_transfers"] > 0
        assert solo_stats.memory.get("peer", 0) > 0
        assert solo_stats.memory.get("contiguous", 0) >= 0

    def test_broadcast_peer_transfer_ships_once(self):
        """A broadcast arena read from another device ships its single
        underlying array once, not once per batch instance."""
        from repro.memory import StorageArena
        from repro.memory.planner import BatchPlan, OperandKind, OperandPlan
        from repro.runtime.executor import ExecutionOptions

        shared_out = np.arange(8.0, dtype=np.float32)
        arena = StorageArena.from_broadcast(shared_out, batch_size=4, device_index=1)
        nodes = _make_nodes((), [0, 1, 2, 3])
        for node in nodes:
            node.outputs[0].storage = arena.slot(0)
            node.executed = True
        consumers = _make_nodes(tuple(), [0, 1, 2, 3], block_id=1)
        for consumer, producer in zip(consumers, nodes):
            consumer.args = (producer.outputs[0],)
        plan = BatchPlan(
            batch=ScheduledBatch(block_id=1, nodes=consumers, device=0),
            batch_size=4,
            operands=[
                OperandPlan(
                    0, OperandKind.PEER, arena_id=arena.arena_id, start=0
                )
            ],
            output_arena_ids=[],
            device=0,
        )
        group = DeviceGroup(2)
        from repro.memory import MemoryPlanner

        class _Kernel:
            class block:
                name = "b"
                inputs = ()

        MemoryPlanner().resolve(plan, _Kernel, group, ExecutionOptions())
        assert group.counters.num_peer_transfers == 1
        assert group.counters.bytes_peer == arena.nbytes  # once, not x4

    def test_fiber_program_multi_device(self):
        """Tensor-dependent control flow (fiber scheduling) composes with
        placement: nestedrnn runs reference-identical on a sharded group."""
        compiled, instances, reference = build("nestedrnn", batch=4)
        engine = compiled.make_engine(devices=2, placement="round_robin")
        outputs, _ = engine.run(instances)
        assert all(values_allclose(a, b) for a, b in zip(reference, outputs))


# ---------------------------------------------------------------------------
# Engine / session / server wiring
# ---------------------------------------------------------------------------


class TestEngineWiring:
    def test_devices_count_builds_group(self, treelstm):
        compiled, _, _ = treelstm
        engine = compiled.make_engine(devices=3)
        assert engine.num_devices == 3
        assert isinstance(engine.device, DeviceGroup)
        # multi-device default placement is request-level sharding
        assert isinstance(engine.placement, RoundRobinPlacement)

    def test_single_device_engine_unchanged(self, treelstm):
        compiled, _, _ = treelstm
        engine = compiled.make_engine()
        assert engine.num_devices == 1
        assert engine.placement is None
        assert isinstance(engine.device, DeviceSimulator)

    def test_devices_and_device_conflict(self, treelstm):
        compiled, _, _ = treelstm
        with pytest.raises(ValueError, match="not both"):
            compiled.make_engine(device=DeviceSimulator(), devices=2)

    def test_placement_instance_and_args(self, treelstm):
        compiled, _, _ = treelstm
        engine = compiled.make_engine(
            devices=2, placement="data_parallel", placement_args={"min_shard": 3}
        )
        assert isinstance(engine.placement, DataParallelPlacement)
        assert engine.placement.min_shard == 3

    def test_placement_instance_shared_across_engines_rejected(self, treelstm):
        """Placement instances carry per-runtime rotation/EWMA state: a
        second engine adopting the same instance must be refused (it would
        rotate the first runtime's split base mid-run)."""
        compiled, _, _ = treelstm
        policy = DataParallelPlacement()
        compiled.make_engine(devices=2, placement=policy)
        with pytest.raises(ValueError, match="exactly one runtime"):
            compiled.make_engine(devices=2, placement=policy)

    def test_placement_args_with_instance_rejected(self, treelstm):
        compiled, _, _ = treelstm
        with pytest.raises(ValueError, match="by name"):
            compiled.make_engine(
                devices=2,
                placement=DataParallelPlacement(),
                placement_args={"min_shard": 3},
            )

    def test_placement_args_without_placement_rejected(self, treelstm):
        compiled, _, _ = treelstm
        with pytest.raises(ValueError, match="no placement"):
            compiled.make_engine(placement_args={"min_shard": 3})

    def test_group_passthrough(self, treelstm):
        compiled, _, _ = treelstm
        group = DeviceGroup(2, spec="laptop", interconnect="nvlink")
        engine = compiled.make_engine(devices=group)
        assert engine.device is group

    def test_explicit_interconnect_with_ready_group_rejected(self, treelstm):
        # an adopted group keeps its own interconnect; silently ignoring a
        # contradictory interconnect= would fake e.g. an interconnect sweep
        compiled, _, _ = treelstm
        group = DeviceGroup(2, interconnect="pcie")
        with pytest.raises(ValueError, match="own interconnect"):
            compiled.make_engine(devices=group, interconnect="nvlink")

    def test_tuned_schedule_table_with_ready_group_rejected(self, treelstm):
        # a tuned model's schedule table must not silently vanish into an
        # adopted group built without it — the kernels would simulate at
        # default_schedule_quality; a group built WITH the same table (and
        # an untuned model with any group) still adopts as-is
        compiled, _, _ = treelstm
        assert not compiled.schedule_table  # untuned: adoption is fine
        assert compiled.make_engine(devices=DeviceGroup(2)) is not None
        compiled.schedule_table.update({"fused_node_block_0": 0.97})
        try:
            with pytest.raises(ValueError, match="schedule_table"):
                compiled.make_engine(devices=DeviceGroup(2))
            tuned = DeviceGroup(2, schedule_table=compiled.schedule_table)
            assert compiled.make_engine(devices=tuned).device is tuned
        finally:
            compiled.schedule_table.clear()

    def test_session_plan_cache_with_placement(self, treelstm):
        """Structurally identical sharded flushes hit the plan cache, and
        cached replays keep placement identity (reference-identical)."""
        compiled, instances, reference = treelstm
        session = compiled.session(
            max_batch=len(instances), devices=2, placement="round_robin"
        )
        for _ in range(3):
            handles = [session.submit(i) for i in instances]
            assert all(
                values_allclose(a, h.result())
                for a, h in zip(reference, handles)
            )
        memory = session.last_stats.memory
        assert memory["plan_cache_hits"] > 0


class TestServerSharding:
    def test_server_devices(self, treelstm):
        compiled, instances, reference = treelstm
        server = Server(devices=2, clock=SimulatedClock(), interconnect="nvlink")
        assert server.num_devices == 2
        endpoint = server.add_endpoint("m", compiled, policy="manual")
        handles = [endpoint.submit(i) for i in instances]
        endpoint.flush()
        assert all(
            values_allclose(a, h.result()) for a, h in zip(reference, handles)
        )
        summary = server.summary()
        assert summary["devices"]["count"] == 2
        assert 0.0 <= summary["devices"]["balance"] <= 1.0
        assert summary["m"]["requests"] == len(instances)

    def test_server_single_device_summary(self, treelstm):
        compiled, _, _ = treelstm
        server = Server(clock=SimulatedClock())
        server.add_endpoint("m", compiled)
        assert server.summary()["devices"]["count"] == 1

    def test_server_device_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            Server(device=DeviceSimulator(), devices=2)

    def test_server_wide_placement_instance_rejected(self):
        # a stateful instance shared across endpoints would mix per-block
        # cost observations between models; names resolve fresh per engine
        with pytest.raises(TypeError, match="registry name"):
            Server(devices=2, placement=RoundRobinPlacement())

    def test_devices_endpoint_name_reserved(self, treelstm):
        compiled, _, _ = treelstm
        server = Server(clock=SimulatedClock())
        with pytest.raises(ValueError, match="reserved"):
            server.add_endpoint("devices", compiled)

    def test_serve_forwards_interconnect_and_placement_args(self, treelstm):
        """serve() must route sharding kwargs to the engine, not into the
        flush policy's argument list."""
        compiled, instances, reference = treelstm
        session = compiled.serve(
            "size",
            n=len(instances),
            clock=SimulatedClock(),
            devices=2,
            placement="data_parallel",
            placement_args={"min_shard": 3},
            interconnect="nvlink",
        )
        assert session.engine.device.interconnect.name == "nvlink"
        assert session.engine.placement.min_shard == 3
        handles = [session.submit(i) for i in instances]
        assert all(
            values_allclose(a, h.result()) for a, h in zip(reference, handles)
        )


# ---------------------------------------------------------------------------
# Counters merge helper
# ---------------------------------------------------------------------------


class TestCountersMerge:
    def test_merge_sums_everything(self):
        a = DeviceCounters(kernel_time_us=1.0, num_kernel_launches=2)
        a.launches_by_kernel["x"] = 2
        b = DeviceCounters(kernel_time_us=3.0, num_kernel_launches=1, peer_time_us=4.0)
        b.launches_by_kernel["x"] = 1
        b.launches_by_kernel["y"] = 5
        merged = DeviceCounters.merge([a, b])
        assert merged.kernel_time_us == 4.0
        assert merged.num_kernel_launches == 3
        assert merged.peer_time_us == 4.0
        assert merged.launches_by_kernel == {"x": 3, "y": 5}
        assert merged.total_device_us == pytest.approx(8.0)


# ---------------------------------------------------------------------------
# Compat shim (engine/session.py) deprecation path
# ---------------------------------------------------------------------------


class TestEngineSessionShim:
    def test_shim_warns_and_aliases(self):
        sys.modules.pop("repro.engine.session", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.import_module("repro.engine.session")
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.serve" in str(w.message)
            for w in caught
        )
        from repro.serve.request import RequestHandle
        from repro.serve.session import InferenceSession

        assert shim.InferenceRequest is RequestHandle
        assert shim.RequestHandle is RequestHandle
        assert shim.InferenceSession is InferenceSession

    def test_engine_package_lazily_reexports(self):
        import repro.engine as engine_pkg

        from repro.serve.session import InferenceSession

        assert engine_pkg.InferenceSession is InferenceSession
        with pytest.raises(AttributeError):
            engine_pkg.does_not_exist
