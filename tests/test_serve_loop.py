"""Tests for the event-loop serving core: the device timeline, monotonic
arrival validation, backpressure, Server.run()/drain()/shutdown(), awaitable
request handles, multi-producer thread safety, continuous-batching
reference identity across scheduler policies, and bit-for-bit deterministic
replay."""

import asyncio
import threading

import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.serve import (
    BackpressureFull,
    DeviceTimeline,
    RequestShed,
    ServeLoop,
    Server,
    SimulatedClock,
    bursty_arrivals,
    poisson_arrivals,
    replay,
    replay_continuous,
    replay_server_continuous,
)
from repro.models import MODEL_MODULES
from repro.utils import values_allclose

BATCH = 6

#: every scheduler policy the engine registry ships; continuous batching
#: must be reference-identical under all of them
SCHEDULERS = ("inline_depth", "dynamic_depth", "agenda", "nobatch", "dynet")


@pytest.fixture(scope="module")
def treelstm_setup():
    module = MODEL_MODULES["treelstm"]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, BATCH, seed=11)
    reference = reference_run(mod, params, instances)
    return mod, params, instances, reference


@pytest.fixture(scope="module")
def birnn_setup():
    module = MODEL_MODULES["birnn"]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, 4, seed=12)
    reference = reference_run(mod, params, instances)
    return mod, params, instances, reference


class TestDeviceTimeline:
    def test_idle_launch_runs_immediately(self):
        tl = DeviceTimeline()
        assert tl.launch(1.0, 0.5) == pytest.approx(1.5)
        assert tl.busy_until == pytest.approx(1.5)
        assert tl.in_flight(1.2) == 1
        assert tl.in_flight(1.5) == 0

    def test_busy_launch_queues_behind(self):
        tl = DeviceTimeline()
        tl.launch(0.0, 1.0)
        # launched while busy: begins at the horizon, not at `now`
        assert tl.launch(0.2, 0.5) == pytest.approx(1.5)
        assert tl.in_flight(0.3) == 2
        assert tl.rounds_launched == 2

    def test_pop_completions(self):
        tl = DeviceTimeline()
        tl.launch(0.0, 1.0)
        tl.launch(0.0, 1.0)  # completes at 2.0
        assert tl.next_completion() == pytest.approx(1.0)
        assert tl.pop_completions(1.0) == 1
        assert tl.next_completion() == pytest.approx(2.0)
        assert tl.pop_completions(5.0) == 1
        assert tl.next_completion() is None


class TestMonotonicArrivals:
    """Satellite: submit(at=) must reject non-monotonic backdated
    timestamps — an `at` behind the previous arrival corrupts queue_ms and
    adaptive backlog detection."""

    def test_backdated_behind_previous_arrival_rejected(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock(start=10.0)
        session = compile_model(mod, params, CompilerOptions()).serve(
            "manual", clock=clock
        )
        session.submit(instances[0], at=9.0)
        with pytest.raises(ValueError, match="non-monotonic"):
            session.submit(instances[1], at=8.0)

    def test_equal_and_forward_timestamps_accepted(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock(start=10.0)
        session = compile_model(mod, params, CompilerOptions()).serve(
            "manual", clock=clock
        )
        session.submit(instances[0], at=9.0)
        session.submit(instances[1], at=9.0)  # bursts: equal is fine
        session.submit(instances[2], at=9.5)  # still behind the clock: fine
        assert session.pending_requests == 3

    def test_flush_resets_the_tracker(self, treelstm_setup):
        """Monotonicity is per round: a long-lived session may replay a
        fresh trace whose timestamps start over after a flush (the
        successive-replay contract of traffic._snapshot)."""
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock(start=10.0)
        session = compile_model(mod, params, CompilerOptions()).serve(
            "manual", clock=clock
        )
        session.submit(instances[0], at=9.0)
        session.flush()
        session.submit(instances[1], at=8.5)  # fresh round: legal again
        assert session.pending_requests == 1


class TestLoopValidation:
    def test_bad_backpressure_name(self):
        with pytest.raises(ValueError, match="backpressure"):
            Server(backpressure="drop-newest")

    def test_bad_max_pending(self):
        with pytest.raises(ValueError, match="max_pending"):
            Server(max_pending=0)

    def test_loop_needs_exactly_one_owner(self):
        with pytest.raises(ValueError, match="exactly one"):
            ServeLoop(Server(), sessions={})
        with pytest.raises(ValueError, match="exactly one"):
            ServeLoop()

    def test_start_rejects_simulated_clock(self):
        server = Server(clock=SimulatedClock())
        with pytest.raises(TypeError, match="run_trace"):
            server.run()

    def test_run_trace_rejects_wall_clock(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        server = Server()  # wall clock
        server.add_endpoint("m", compile_model(mod, params, CompilerOptions()))
        with pytest.raises(TypeError, match="SimulatedClock"):
            server.loop.run_trace([(0.0, "m", instances[0])])

    def test_add_endpoint_while_running_rejected(self, treelstm_setup):
        mod, params, _, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        server = Server()
        server.add_endpoint("a", model, policy="manual")
        with server.run():
            with pytest.raises(RuntimeError, match="while the serve loop"):
                server.add_endpoint("b", model, policy="manual")

    def test_endpoint_bypass_rejected_while_running(self, treelstm_setup):
        """The pre-loop idiom server.endpoint(name).submit(...) would
        mutate a lock-free session concurrently with the loop thread; it
        must refuse while the loop runs (and work again after shutdown)."""
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        server = Server()
        endpoint = server.add_endpoint("a", model, policy="manual")
        with server.run():
            with pytest.raises(RuntimeError, match="loop thread owns"):
                endpoint.submit(instances[0])
            with pytest.raises(RuntimeError, match="loop thread owns"):
                endpoint.poll()
            with pytest.raises(RuntimeError, match="loop thread owns"):
                endpoint.flush()
        handle = endpoint.submit(instances[0])  # inline again after shutdown
        endpoint.flush()
        assert handle.done


class TestBackpressure:
    def test_inline_reject(self, treelstm_setup):
        """Without a running loop, reject fires against the sessions'
        pending backlog."""
        mod, params, instances, _ = treelstm_setup
        server = Server(max_pending=2, backpressure="reject")
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="manual"
        )
        server.submit("m", instances[0])
        server.submit("m", instances[1])
        with pytest.raises(BackpressureFull):
            server.submit("m", instances[2])
        assert server.loop.num_rejected == 1
        server.flush_all()  # backlog drains: capacity frees up
        server.submit("m", instances[2])

    def test_inline_block_is_inert(self, treelstm_setup):
        """block needs a loop thread to drain the queue: on the historical
        caller-driven path the bound stays inert (exactly as documented),
        rather than deadlocking or erroring."""
        mod, params, instances, _ = treelstm_setup
        server = Server(max_pending=1, backpressure="block")
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="manual"
        )
        server.submit("m", instances[0])
        server.submit("m", instances[1])  # beyond max_pending: still fine
        assert server.endpoint("m").pending_requests == 2
        server.flush_all()

    def test_threaded_shed_oldest(self, treelstm_setup):
        """Holding the loop's condition stalls the drain deterministically:
        overflowing the queue sheds the oldest request, whose handle fails
        with RequestShed."""
        mod, params, instances, _ = treelstm_setup
        server = Server(max_pending=2, backpressure="shed-oldest")
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="manual"
        )
        loop = server.run()
        try:
            with loop._cond:  # loop thread cannot drain while we hold this
                h1 = server.submit("m", instances[0])
                h2 = server.submit("m", instances[1])
                h3 = server.submit("m", instances[2])  # sheds h1
            server.drain()
            assert h1.failed
            with pytest.raises(RequestShed):
                h1.result(timeout=1.0)
            assert h2.done and not h2.failed
            assert h3.done and not h3.failed
            assert loop.num_shed == 1
        finally:
            server.shutdown()

    def test_threaded_block_waits_for_space(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        server = Server(max_pending=1, backpressure="block")
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="manual"
        )
        loop = server.run()
        try:
            submitted = threading.Event()
            handles = []

            def producer():
                handles.append(server.submit("m", instances[0]))
                handles.append(server.submit("m", instances[1]))  # may block
                submitted.set()

            with loop._cond:
                t = threading.Thread(target=producer)
                t.start()
                # the producer can at best enqueue one; give it a moment
                submitted.wait(timeout=0.2)
            t.join(timeout=5.0)
            assert not t.is_alive()
            assert submitted.is_set()
            server.drain()
            assert all(h.done and not h.failed for h in handles)
        finally:
            server.shutdown()


class TestServerLifecycle:
    def test_run_drain_shutdown(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        server = Server()
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()),
            policy="size", n=len(instances),
        )
        with server.run():
            handles = [server.submit("m", inst) for inst in instances]
            server.drain()
            assert all(h.done for h in handles)
        assert all(
            values_allclose(a, h.result()) for a, h in zip(reference, handles)
        )
        # shutdown is idempotent
        server.shutdown()

    def test_result_timeout_blocks_until_loop_flushes(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        server = Server()
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()),
            policy="size", n=2,
        )
        with server.run():
            h1 = server.submit("m", instances[0])
            h2 = server.submit("m", instances[1])
            # the size(2) policy flushes on the loop thread; result() blocks
            # until it does
            assert values_allclose(reference[0], h1.result(timeout=10.0))
            assert values_allclose(reference[1], h2.result(timeout=10.0))
        server.shutdown()

    def test_facade_with_running_loop(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        server = Server()
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="manual"
        )
        with server.run():
            server.submit("m", instances[0])
            assert server.poll() == 0  # loop owns deadline polling
            assert server.flush_all() == {}  # delegates to drain()
        server.shutdown()

    def test_submit_after_shutdown_raises_until_rerun(self, treelstm_setup):
        """A shut-down loop refuses silent inline intake (nothing would
        ever flush it); Server.run() again revives the server."""
        from repro.serve import LoopStopped

        mod, params, instances, reference = treelstm_setup
        server = Server()
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="manual"
        )
        with server.run():
            server.submit("m", instances[0])
        with pytest.raises(LoopStopped, match="run"):
            server.submit("m", instances[1])
        with server.run():  # revive
            handle = server.submit("m", instances[1])
            server.drain()
        assert values_allclose(reference[1], handle.result())

    def test_result_without_timeout_still_raises_unmanaged(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).serve("manual")
        handle = session.submit(instances[0])
        with pytest.raises(RuntimeError, match="flush"):
            handle.result()
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.01)


class TestAwaitableHandles:
    def test_await_handle(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        server = Server()
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()),
            policy="size", n=2,
        )

        async def client():
            h1 = server.submit("m", instances[0])
            h2 = server.submit("m", instances[1])
            return await h1, await h2

        with server.run():
            out1, out2 = asyncio.run(client())
        assert values_allclose(reference[0], out1)
        assert values_allclose(reference[1], out2)

    def test_await_failed_handle_raises(self):
        from repro.serve.request import RequestHandle

        handle = RequestHandle(0)
        handle._fail(RequestShed("shed"))

        async def client():
            return await handle

        with pytest.raises(RequestShed):
            asyncio.run(client())
        assert handle.failed
        assert isinstance(handle.exception(), RequestShed)

    def test_await_already_done_handle(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).serve("manual")
        handle = session.submit(instances[0])
        session.flush()

        async def client():
            return await handle

        assert values_allclose(reference[0], asyncio.run(client()))


class TestMultiProducerStress:
    """Satellite: concurrent Server.submit must lose no handles, duplicate
    none, and keep every counter summing up."""

    THREADS = 4
    PER_THREAD = 8

    def test_stress(self, treelstm_setup, birnn_setup):
        t_mod, t_params, t_instances, t_reference = treelstm_setup
        b_mod, b_params, b_instances, b_reference = birnn_setup
        server = Server()
        server.add_endpoint(
            "trees", compile_model(t_mod, t_params, CompilerOptions()),
            policy="size", n=4,
        )
        server.add_endpoint(
            "seqs", compile_model(b_mod, b_params, CompilerOptions()),
            policy="size", n=4,
        )
        results: dict = {}

        def producer(tid):
            mine = []
            for i in range(self.PER_THREAD):
                name = "trees" if (tid + i) % 2 == 0 else "seqs"
                idx = (tid * self.PER_THREAD + i) % len(
                    t_instances if name == "trees" else b_instances
                )
                inst = (t_instances if name == "trees" else b_instances)[idx]
                mine.append((name, idx, server.submit(name, inst)))
            results[tid] = mine

        with server.run():
            threads = [
                threading.Thread(target=producer, args=(tid,))
                for tid in range(self.THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert not any(t.is_alive() for t in threads)
            server.drain()
        server.shutdown()

        all_handles = [h for mine in results.values() for _, _, h in mine]
        total = self.THREADS * self.PER_THREAD
        # no lost handles: every producer got one per submit, all resolved
        assert len(all_handles) == total
        assert all(h.done and not h.failed for h in all_handles)
        # no duplicated handles
        assert len({id(h) for h in all_handles}) == total
        # every result is the right model's reference output
        for mine in results.values():
            for name, idx, handle in mine:
                reference = t_reference if name == "trees" else b_reference
                assert values_allclose(reference[idx], handle.result())
        # counters sum: sessions saw exactly the submitted requests, and
        # every request was flushed in exactly one round
        summary = server.summary()
        by_name = {"trees": 0, "seqs": 0}
        for mine in results.values():
            for name, _, _ in mine:
                by_name[name] += 1
        for name, count in by_name.items():
            session = server.endpoint(name).session
            assert summary[name]["requests"] == count
            assert session.requests_flushed == count
            assert sum(s.batch_size for s in session.history) == count
            assert session.pending_requests == 0
        assert server.loop.num_admitted == total


class TestContinuousReferenceIdentity:
    """Satellite: continuous batching returns the same outputs as one-shot
    reference_run for every scheduler policy."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_scheduler_matrix(self, treelstm_setup, scheduler):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve(
            "deadline", ms=2.0, clock=SimulatedClock(), scheduler=scheduler
        )
        arrivals = bursty_arrivals(3000.0, len(instances), burst=3, seed=9)
        report = replay_continuous(session, instances, arrivals)
        assert all(
            values_allclose(a, b) for a, b in zip(reference, report.outputs)
        )
        assert report.num_requests == len(instances)

    @pytest.mark.parametrize("policy,policy_args", [
        ("manual", {}),
        ("size", {"n": 2}),
        ("deadline", {"ms": 2.0}),
        ("adaptive", {}),
    ])
    def test_flush_policy_matrix(self, treelstm_setup, policy, policy_args):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve(policy, clock=SimulatedClock(), **policy_args)
        arrivals = poisson_arrivals(2000.0, len(instances), seed=10)
        report = replay_continuous(session, instances, arrivals)
        assert all(
            values_allclose(a, b) for a, b in zip(reference, report.outputs)
        )

    def test_fiber_programs(self):
        """Tensor-dependent control flow (deferred sessions) under the
        loop: flushes run through engine.run and stay reference-identical."""
        module = MODEL_MODULES["drnn"]
        mod, params, size = module.build_for("test")
        instances = module.make_batch(mod, size, 4, seed=13)
        reference = reference_run(mod, params, instances)
        model = compile_model(mod, params, CompilerOptions())
        assert model.uses_tdc
        session = model.serve("deadline", ms=2.0, clock=SimulatedClock())
        arrivals = bursty_arrivals(2000.0, len(instances), burst=2, seed=14)
        report = replay_continuous(session, instances, arrivals)
        assert all(
            values_allclose(a, b) for a, b in zip(reference, report.outputs)
        )

    def test_server_trace_matches_reference(self, treelstm_setup, birnn_setup):
        t_mod, t_params, t_instances, t_reference = treelstm_setup
        b_mod, b_params, b_instances, b_reference = birnn_setup
        server = Server(clock=SimulatedClock())
        server.add_endpoint(
            "trees", compile_model(t_mod, t_params, CompilerOptions()),
            policy="deadline", ms=3.0,
        )
        server.add_endpoint(
            "seqs", compile_model(b_mod, b_params, CompilerOptions()),
            policy="adaptive",
        )
        workload = [
            (t, "trees", inst)
            for t, inst in zip(
                poisson_arrivals(2000.0, len(t_instances), seed=1), t_instances
            )
        ] + [
            (t, "seqs", inst)
            for t, inst in zip(
                poisson_arrivals(2000.0, len(b_instances), seed=2), b_instances
            )
        ]
        reports = replay_server_continuous(server, workload)
        assert all(
            values_allclose(a, b)
            for a, b in zip(t_reference, reports["trees"].outputs)
        )
        assert all(
            values_allclose(a, b)
            for a, b in zip(b_reference, reports["seqs"].outputs)
        )


class TestDeterministicReplay:
    def test_continuous_bit_for_bit(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        arrivals = bursty_arrivals(2500.0, len(instances), burst=3, seed=21)
        latencies = []
        for _ in range(2):
            session = model.serve("adaptive", clock=SimulatedClock())
            report = replay_continuous(
                session, instances, arrivals, host_model=(1.0, 0.25)
            )
            latencies.append(report.latencies_ms)
        assert latencies[0] == latencies[1]  # exact float equality

    def test_caller_driven_bit_for_bit(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        arrivals = poisson_arrivals(2500.0, len(instances), seed=22)
        latencies = []
        for _ in range(2):
            session = model.serve("deadline", ms=2.0, clock=SimulatedClock())
            report = replay(
                session, instances, arrivals,
                deterministic=True, host_model=(1.0, 0.25),
            )
            latencies.append(report.latencies_ms)
        assert latencies[0] == latencies[1]

    def test_wall_time_restored_after_replay(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("manual", clock=SimulatedClock())
        replay_continuous(session, instances[:2], [0.0, 0.0])
        assert session.charge_host is True
        assert session.timeline is None
        assert session.host_cost_model is None


class TestFailureIsolation:
    """One malformed request must not take down the loop, and no handle may
    ever be lost (pending forever) when a round fails."""

    def test_bad_request_fails_only_itself(self, treelstm_setup):
        mod, params, instances, reference = treelstm_setup
        server = Server()
        server.add_endpoint(
            "m", compile_model(mod, params, CompilerOptions()), policy="manual"
        )
        with server.run():
            bad = server.submit("m", object())  # not a valid instance
            with pytest.raises(Exception):
                bad.result(timeout=10.0)
            assert bad.failed
            # the loop survived: subsequent requests serve normally
            good = server.submit("m", instances[0])
            server.drain()
            assert values_allclose(reference[0], good.result(timeout=10.0))
        server.shutdown()

    def test_poisoned_round_fails_roundmates_with_round_aborted(
        self, treelstm_setup
    ):
        from repro.serve.session import RoundAborted

        mod, params, instances, _ = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).serve("manual")
        innocent = session.submit(instances[0])
        with pytest.raises(Exception):
            session.submit(object())  # poisons the shared lazy graph
        # the round-mate fails with RoundAborted chaining the cause, and
        # the session is reset to a clean empty round
        assert innocent.failed
        assert isinstance(innocent.exception(), RoundAborted)
        assert session.pending_requests == 0
        # the session still serves after the abort
        replacement = session.submit(instances[1])
        session.flush()
        assert replacement.done and not replacement.failed

    def test_flush_failure_fails_popped_handles(self, treelstm_setup, monkeypatch):
        mod, params, instances, _ = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).serve("manual")
        handle = session.submit(instances[0])
        monkeypatch.setattr(
            session.engine.runtime,
            "trigger",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("kernel died")),
        )
        with pytest.raises(RuntimeError, match="kernel died"):
            session.flush()
        # the popped handle is not lost: it resolved exceptionally
        assert handle.failed
        assert session.pending_requests == 0

    def test_exception_accessor_matches_result_contract(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        session = compile_model(mod, params, CompilerOptions()).serve("manual")
        handle = session.submit(instances[0])
        # unmanaged + pending: both accessors raise instead of blocking
        with pytest.raises(RuntimeError, match="flush"):
            handle.exception()
        session.flush()
        assert handle.exception() is None


class TestInFlightVisibility:
    def test_in_flight_rounds_counted(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock()
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("manual", clock=clock)
        session.timeline = DeviceTimeline()
        session.charge_host = False
        try:
            session.submit(instances[0])
            assert session.in_flight_rounds == 0
            session.flush()
            # the round launched onto the timeline instead of blocking the
            # clock: it is still executing now
            assert session.in_flight_rounds == 1
            clock.advance_to(session.timeline.busy_until)
            assert session.in_flight_rounds == 0
        finally:
            session.timeline = None
            session.charge_host = True

    def test_adaptive_defers_to_in_flight_round(self, treelstm_setup):
        mod, params, instances, _ = treelstm_setup
        clock = SimulatedClock()
        model = compile_model(mod, params, CompilerOptions())
        session = model.serve("adaptive", clock=clock)
        session.timeline = DeviceTimeline()
        session.charge_host = False
        try:
            # a long round is executing on the device
            session.timeline.launch(clock.now(), 10.0)
            assert session.in_flight_rounds == 1
            # while the device is busy, waiting is free: even arrival gaps
            # that would normally flush must keep accumulating
            clock.advance(0.001)
            session.submit(instances[0], at=clock.now())
            clock.advance(0.001)
            session.submit(instances[1], at=clock.now())
            clock.advance(0.001)
            session.submit(instances[2], at=clock.now())
            assert session.pending_requests == 3
            # device idle again: the policy launches the backlog
            clock.advance_to(session.timeline.busy_until)
            assert session.in_flight_rounds == 0
            assert session.policy.on_idle(session, clock.now())
        finally:
            session.timeline = None
            session.charge_host = True
