"""Tests for the IR builder helpers, visitors, printer and structural equality."""

import numpy as np
import pytest

from repro.ir import (
    Call,
    Constant,
    ExprMutator,
    If,
    Let,
    Match,
    OpRef,
    ScopeBuilder,
    TupleExpr,
    call,
    collect,
    concurrent,
    const,
    expr_to_text,
    free_vars,
    function,
    function_to_text,
    if_else,
    match,
    module_to_text,
    op,
    pat_ctor,
    pat_wild,
    phase_boundary,
    post_order,
    prelude_module,
    structural_equal,
    tuple_expr,
    tuple_get,
    var,
)


class TestBuilder:
    def test_op_namespace_builds_calls(self):
        e = op.dense(var("x"), var("w"))
        assert isinstance(e, Call) and isinstance(e.op, OpRef)
        assert e.op.name == "dense"

    def test_op_attrs_become_call_attrs(self):
        e = op.concat(var("a"), var("b"), axis=1)
        assert e.attrs == {"axis": 1}

    def test_literals_are_lifted(self):
        e = op.add(var("x"), 1.0)
        assert isinstance(e.args[1], Constant)

    def test_unliftable_literal_raises(self):
        with pytest.raises(TypeError):
            op.add(var("x"), {"not": "liftable"})

    def test_scope_builder_nests_lets(self):
        sb = ScopeBuilder()
        a = sb.let("a", const(1.0))
        b = sb.let("b", op.add(a, 2.0))
        sb.ret(b)
        body = sb.get()
        assert isinstance(body, Let) and isinstance(body.body, Let)

    def test_scope_builder_requires_ret(self):
        sb = ScopeBuilder()
        sb.let("a", const(1.0))
        with pytest.raises(ValueError):
            sb.get()

    def test_concurrent_marks_calls(self):
        gv_call1 = call(prelude_module().get_global_var("map"), var("f"), var("xs"))
        gv_call2 = call(prelude_module().get_global_var("map"), var("f"), var("ys"))
        concurrent(gv_call1, gv_call2)
        assert gv_call1.attrs["concurrent_group"] == gv_call2.attrs["concurrent_group"]

    def test_phase_boundary_annotation(self):
        c = call(prelude_module().get_global_var("map"), var("f"), var("xs"))
        assert phase_boundary(c).attrs["phase_boundary"] is True

    def test_if_else_and_match_builders(self):
        mod = prelude_module()
        nil = mod.get_constructor("Nil")
        e = if_else(op.scalar_gt(1.0, 0.0), const(1.0), const(2.0))
        assert isinstance(e, If)
        m = match(var("xs"), [(pat_ctor(nil), const(0.0)), (pat_wild(), const(1.0))])
        assert isinstance(m, Match) and len(m.clauses) == 2

    def test_tuple_helpers(self):
        t = tuple_expr(var("a"), var("b"))
        assert isinstance(t, TupleExpr)
        g = tuple_get(t, 1)
        assert g.index == 1


class TestVisitors:
    def test_free_vars_simple(self):
        x, w = var("x"), var("w")
        e = op.sigmoid(op.dense(x, w))
        assert free_vars(e) == [x, w]

    def test_free_vars_excludes_bound(self):
        x, y = var("x"), var("y")
        e = Let(x, const(1.0), op.add(x, y))
        assert free_vars(e) == [y]

    def test_free_vars_function_params_bound(self):
        x, y = var("x"), var("y")
        f = function([x], op.add(x, y))
        assert free_vars(f) == [y]

    def test_free_vars_match_pattern_bound(self):
        mod = prelude_module()
        cons = mod.get_constructor("Cons")
        h, t, xs = var("h"), var("t"), var("xs")
        m = match(xs, [(pat_ctor(cons, h, t), op.add(h, var("outer")))])
        names = [v.name for v in free_vars(m)]
        assert "xs" in names and "outer" in names and "h" not in names

    def test_collect_and_post_order(self):
        e = op.add(op.dense(var("x"), var("w")), var("b"))
        calls = collect(e, lambda n: isinstance(n, Call))
        assert len(calls) == 2
        seen = []
        post_order(e, lambda n: seen.append(type(n).__name__))
        assert seen[-1] == "Call"  # root visited last

    def test_mutator_preserves_unchanged_nodes(self):
        e = op.add(var("x"), var("y"))
        assert ExprMutator().visit(e) is e

    def test_mutator_rewrites(self):
        class Renamer(ExprMutator):
            def visit_opref(self, expr):
                return OpRef("mul") if expr.name == "add" else expr

        e = op.add(var("x"), var("y"))
        out = Renamer().visit(e)
        assert out is not e and out.op.name == "mul"


class TestPrinterAndEquality:
    def test_expr_to_text_mentions_ops_and_vars(self):
        text = expr_to_text(op.sigmoid(op.dense(var("x"), var("w"))))
        assert "sigmoid" in text and "dense" in text and "%x" in text

    def test_function_to_text(self):
        x = var("x")
        text = function_to_text("f", function([x], op.relu(x)))
        assert text.startswith("def @f(") and "relu" in text

    def test_module_to_text_skips_prelude_by_default(self):
        mod = prelude_module()
        mod.add_function("main", function([var("x")], op.relu(var("x"))))
        assert "@map" not in module_to_text(mod)
        assert "@map" in module_to_text(mod, include_prelude=True)

    def test_structural_equal_alpha_equivalence(self):
        x1, x2 = var("x"), var("other_name")
        f1 = function([x1], op.relu(x1))
        f2 = function([x2], op.relu(x2))
        assert structural_equal(f1, f2)

    def test_structural_equal_detects_difference(self):
        x1, x2 = var("x"), var("x")
        assert not structural_equal(function([x1], op.relu(x1)), function([x2], op.tanh(x2)))

    def test_structural_equal_constants(self):
        a = const(np.ones((2, 2), dtype=np.float32))
        b = const(np.ones((2, 2), dtype=np.float32))
        c = const(np.zeros((2, 2), dtype=np.float32))
        assert structural_equal(a, b)
        assert not structural_equal(a, c)

    def test_structural_equal_free_vars_by_identity(self):
        x, y = var("x"), var("x")
        assert structural_equal(op.relu(x), op.relu(x))
        assert not structural_equal(op.relu(x), op.relu(y))
