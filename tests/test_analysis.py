"""Tests for the static analyses: taint/parameter reuse, hoisting, recursion,
tensor-dependent control flow, program phases and code duplication."""

import pytest

from repro.analysis import (
    analyze_taint,
    concurrent_groups,
    hoistable_bindings,
    infer_phases,
    reachable_functions,
    recursive_functions,
    specialize_functions,
    uses_tensor_dependent_control_flow,
)
from repro.ir import Call, GlobalVar, iter_let_chain
from repro.ir.visitor import collect
from repro.models import berxit, birnn, drnn, mvrnn, nestedrnn, stackrnn, treelstm
from tests.conftest import build_listing1_rnn


@pytest.fixture(scope="module")
def rnn_setup():
    mod, params = build_listing1_rnn()
    instance_params = ["inps"]
    taint = analyze_taint(mod, instance_params)
    return mod, params, taint


class TestTaint:
    def test_weights_are_invariant(self, rnn_setup):
        mod, params, taint = rnn_setup
        main = mod.main
        for p in main.params:
            if p.name_hint in params:
                assert taint.is_invariant(p), p.name_hint
            else:
                assert taint.is_tainted(p), p.name_hint

    def test_rnn_state_becomes_tainted(self, rnn_setup):
        mod, _, taint = rnn_setup
        rnn = mod.functions["rnn"]
        names = {p.name_hint: taint.is_tainted(p) for p in rnn.params}
        assert names["inps"] and names["state"]
        assert not names["bias"] and not names["i_wt"] and not names["h_wt"]

    def test_reachability(self, rnn_setup):
        mod, _, taint = rnn_setup
        assert {"main", "rnn"} <= taint.reachable

    def test_control_dependent_state_is_tainted(self):
        # NestedRNN: state values diverge across instances only because the
        # number of iterations differs (implicit flow through the match/if)
        mod, params, _ = nestedrnn.build_for("test")
        taint = analyze_taint(mod, ["segs"])
        inner = mod.functions["inner_rnn"]
        istate = [p for p in inner.params if p.name_hint == "istate"][0]
        assert taint.is_tainted(istate)

    def test_treelstm_weights_shared(self):
        mod, params, _ = treelstm.build_for("test")
        taint = analyze_taint(mod, ["tree"])
        cell = mod.functions["treelstm_cell"]
        flags = {p.name_hint: taint.is_tainted(p) for p in cell.params}
        assert flags["tree"]
        assert not flags["i_l_wt"] and not flags["leaf_wt"]


class TestStructure:
    def test_recursive_functions(self, rnn_setup):
        mod, _, _ = rnn_setup
        rec = recursive_functions(mod)
        assert "rnn" in rec and "main" not in rec

    def test_reachable_functions_order(self, rnn_setup):
        mod, _, _ = rnn_setup
        reach = reachable_functions(mod)
        assert reach[0] == "main" and "rnn" in reach

    def test_hoisting_finds_input_transformation(self, rnn_setup):
        mod, _, _ = rnn_setup
        rnn = mod.functions["rnn"]
        hoisted = hoistable_bindings("rnn", rnn, mod)
        assert len(hoisted) >= 1
        bindings, _ = iter_let_chain(rnn.body.clauses[1].body)
        by_name = {v.name_hint: value for v, value in bindings}
        assert id(by_name["inp_linear"]) in hoisted
        assert id(by_name["new_state"]) not in hoisted

    def test_non_recursive_function_hoists_nothing(self, rnn_setup):
        mod, _, _ = rnn_setup
        assert hoistable_bindings("main", mod.main, mod) == set()

    def test_treelstm_node_ops_not_hoisted(self):
        mod, _, _ = treelstm.build_for("test")
        cell = mod.functions["treelstm_cell"]
        hoisted = hoistable_bindings("treelstm_cell", cell, mod)
        node_clause = cell.body.clauses[1].body
        bindings, _ = iter_let_chain(node_clause)
        gate_ops = [value for v, value in bindings if v.name_hint == "i"]
        assert gate_ops and all(id(g) not in hoisted for g in gate_ops)

    @pytest.mark.parametrize(
        "model,expected",
        [
            (treelstm, False),
            (mvrnn, False),
            (birnn, False),
            (nestedrnn, True),
            (drnn, True),
            (berxit, True),
            (stackrnn, True),
        ],
    )
    def test_tdc_detection(self, model, expected):
        mod, _, _ = model.build_for("test")
        assert uses_tensor_dependent_control_flow(mod) is expected

    def test_concurrent_groups_found(self):
        mod, _, _ = treelstm.build_for("test")
        groups = concurrent_groups(mod.functions["treelstm_cell"])
        assert len(groups) == 1
        assert len(next(iter(groups.values()))) == 2


class TestPhases:
    def test_rnn_output_stage_is_second_phase(self, rnn_setup):
        mod, _, _ = rnn_setup
        phases = infer_phases(mod)
        assert phases.num_phases >= 2
        assert phases.result_phase >= 1

    def test_phases_disabled_collapse_to_zero(self, rnn_setup):
        mod, _, _ = rnn_setup
        phases = infer_phases(mod, enabled=False)
        assert phases.num_phases == 1 and phases.result_phase == 0

    def test_birnn_forward_backward_share_phase(self):
        mod, _, _ = birnn.build_for("test")
        spec = specialize_functions(mod)
        phases = infer_phases(spec)
        main = spec.main
        bindings, _ = iter_let_chain(main.body)
        by_name = {v.name_hint: phases.phase_of(value) for v, value in bindings}
        assert by_name["f_states"] == by_name["b_states_rev"] == 0
        assert phases.result_phase > 0


class TestDuplication:
    def test_birnn_rnn_is_specialized_per_weight_binding(self):
        mod, _, _ = birnn.build_for("test")
        spec = specialize_functions(mod)
        rnn_like = [n for n in spec.functions if n.startswith("rnn")]
        assert len(rnn_like) == 2  # forward + backward copies
        calls = [
            c
            for c in collect(spec.main.body, lambda e: isinstance(e, Call))
            if isinstance(c.op, GlobalVar) and c.op.name.startswith("rnn")
        ]
        assert len({c.op.name for c in calls}) == 2

    def test_single_context_functions_are_not_duplicated(self):
        mod, _, _ = treelstm.build_for("test")
        spec = specialize_functions(mod)
        assert set(spec.functions) == set(mod.functions)

    def test_disabled_returns_module_unchanged(self):
        mod, _, _ = birnn.build_for("test")
        assert specialize_functions(mod, enabled=False) is mod

    def test_specialized_copy_calls_itself(self):
        mod, _, _ = birnn.build_for("test")
        spec = specialize_functions(mod)
        copy_name = [n for n in spec.functions if n.startswith("rnn$")][0]
        body_calls = collect(
            spec.functions[copy_name].body,
            lambda e: isinstance(e, Call) and isinstance(e.op, GlobalVar),
        )
        assert any(c.op.name == copy_name for c in body_calls)
        assert all(c.op.name != "rnn" for c in body_calls)
