"""Tests for the IR type system."""


from repro.ir import (
    ADTType,
    AnyType,
    FuncType,
    ListType,
    ScalarType,
    TensorType,
    TupleType,
    is_scalar,
    is_tensor,
)


class TestTensorType:
    def test_shape_is_normalized_to_int_tuple(self):
        t = TensorType([1, 256])
        assert t.shape == (1, 256)
        assert all(isinstance(s, int) for s in t.shape)

    def test_default_dtype(self):
        assert TensorType((4,)).dtype == "float32"

    def test_size_and_nbytes(self):
        t = TensorType((2, 3, 4))
        assert t.size == 24
        assert t.nbytes == 96

    def test_bool_nbytes_uses_one_byte(self):
        assert TensorType((8,), "bool").nbytes == 8

    def test_equality_is_structural(self):
        assert TensorType((1, 4)) == TensorType((1, 4))
        assert TensorType((1, 4)) != TensorType((1, 5))
        assert TensorType((1, 4)) != TensorType((1, 4), "int32")

    def test_hashable(self):
        assert len({TensorType((1, 4)), TensorType((1, 4)), TensorType((2, 4))}) == 2

    def test_str(self):
        assert "256" in str(TensorType((1, 256)))


class TestCompositeTypes:
    def test_list_type_equality(self):
        assert ListType(TensorType((1, 4))) == ListType(TensorType((1, 4)))
        assert ListType(TensorType((1, 4))) != ListType(TensorType((1, 8)))

    def test_tuple_type_fields(self):
        t = TupleType([TensorType((1, 2)), ScalarType("int32")])
        assert len(t.fields) == 2
        assert t == TupleType([TensorType((1, 2)), ScalarType("int32")])

    def test_func_type(self):
        f = FuncType([TensorType((1, 2))], TensorType((1, 3)))
        assert f.params == (TensorType((1, 2)),)
        assert f.ret == TensorType((1, 3))

    def test_adt_type_with_args(self):
        a = ADTType("Tree", [TensorType((1, 2))])
        assert a == ADTType("Tree", [TensorType((1, 2))])
        assert a != ADTType("Tree")
        assert "Tree" in str(a)

    def test_cross_type_inequality(self):
        assert TensorType((1,)) != ScalarType()
        assert AnyType() != TensorType((1,))

    def test_scalar_type(self):
        assert ScalarType("bool") == ScalarType("bool")
        assert ScalarType("bool") != ScalarType("int32")


class TestPredicates:
    def test_is_tensor(self):
        assert is_tensor(TensorType((1,)))
        assert not is_tensor(ScalarType())
        assert not is_tensor(None)

    def test_is_scalar(self):
        assert is_scalar(ScalarType())
        assert not is_scalar(TensorType((1,)))
