"""Tests for static blocks, kernel fusion and batched execution, including
property-based checks that batched execution matches the unbatched reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    BatchedOperand,
    BlockInput,
    BlockKernel,
    BlockOp,
    StaticBlock,
    fuse_block,
    fused_kernel_name,
    input_ref,
    op_ref,
    single_op_block,
)


def rnn_cell_block(shared_weights=True):
    """sigmoid(bias + dense(x, w) + dense(h, u)) with two outputs."""
    return StaticBlock(
        block_id=0,
        name="cell",
        inputs=[
            BlockInput(0, "x"),
            BlockInput(1, "h"),
            BlockInput(2, "w", shared=shared_weights),
            BlockInput(3, "u", shared=shared_weights),
            BlockInput(4, "b", shared=shared_weights),
        ],
        ops=[
            BlockOp(0, "dense", [input_ref(0), input_ref(2)]),
            BlockOp(1, "dense", [input_ref(1), input_ref(3)]),
            BlockOp(2, "add", [op_ref(0), op_ref(1)]),
            BlockOp(3, "bias_add", [op_ref(2), input_ref(4)]),
            BlockOp(4, "sigmoid", [op_ref(3)]),
            BlockOp(5, "tanh", [op_ref(3)]),
        ],
        outputs=[op_ref(4), op_ref(5)],
    )


class TestStaticBlock:
    def test_validate_accepts_wellformed(self):
        rnn_cell_block().validate()

    def test_validate_rejects_forward_reference(self):
        block = StaticBlock(
            0, "bad", [BlockInput(0, "x")],
            [BlockOp(0, "relu", [op_ref(1)]), BlockOp(1, "relu", [input_ref(0)])],
            [op_ref(1)],
        )
        with pytest.raises(ValueError):
            block.validate()

    def test_validate_rejects_bad_input_index(self):
        block = StaticBlock(
            0, "bad", [BlockInput(0, "x")], [BlockOp(0, "relu", [input_ref(3)])], [op_ref(0)]
        )
        with pytest.raises(ValueError):
            block.validate()

    def test_consumers_and_output_flags(self):
        block = rnn_cell_block()
        consumers = block.consumers()
        assert consumers[0] == [2] and consumers[3] == [4, 5]
        assert block.op_is_output(4) and not block.op_is_output(2)

    def test_shared_mask(self):
        assert rnn_cell_block().shared_mask() == [False, False, True, True, True]

    def test_single_op_block(self):
        blk = single_op_block(3, "relu", 1)
        blk.validate()
        assert blk.num_outputs == 1 and blk.ops[0].op_name == "relu"


class TestFusion:
    def test_elementwise_ops_fuse_into_producer(self):
        groups = fuse_block(rnn_cell_block())
        assert len(groups) < 6  # strictly fewer kernels than operators

    def test_fusion_disabled_gives_one_group_per_op(self):
        groups = fuse_block(rnn_cell_block(), enable_standard=False, enable_horizontal=False)
        assert len(groups) == 6
        assert all(g.size == 1 for g in groups)

    def test_groups_partition_all_ops(self):
        block = rnn_cell_block()
        groups = fuse_block(block)
        covered = sorted(j for g in groups for j in g.op_indices)
        assert covered == list(range(len(block.ops)))

    def test_group_order_is_topological(self):
        block = rnn_cell_block()
        groups = fuse_block(block)
        position = {}
        for rank, g in enumerate(groups):
            for j in g.op_indices:
                position[j] = rank
        for bop in block.ops:
            for dep in bop.op_indices():
                assert position[dep] <= position[bop.index]

    def test_horizontal_fusion_merges_shared_arg_denses(self):
        block = StaticBlock(
            0, "gates",
            [BlockInput(0, "x"), BlockInput(1, "w1", shared=True), BlockInput(2, "w2", shared=True)],
            [
                BlockOp(0, "dense", [input_ref(0), input_ref(1)]),
                BlockOp(1, "dense", [input_ref(0), input_ref(2)]),
            ],
            [op_ref(0), op_ref(1)],
        )
        groups = fuse_block(block)
        assert len(groups) == 1 and groups[0].horizontal

    def test_fused_kernel_name(self):
        block = rnn_cell_block()
        groups = fuse_block(block, enable_standard=False, enable_horizontal=False)
        assert fused_kernel_name(block, groups[0]) == "dense"


class TestBatchedExecution:
    def _args(self, batch, hidden=6, rng=None):
        rng = rng or np.random.default_rng(0)
        xs = [rng.standard_normal((1, hidden)).astype(np.float32) for _ in range(batch)]
        hs = [rng.standard_normal((1, hidden)).astype(np.float32) for _ in range(batch)]
        w = rng.standard_normal((hidden, hidden)).astype(np.float32)
        u = rng.standard_normal((hidden, hidden)).astype(np.float32)
        b = rng.standard_normal((1, hidden)).astype(np.float32)
        return xs, hs, w, u, b

    def test_batched_matches_unbatched_reference(self):
        kernel = BlockKernel(rnn_cell_block())
        xs, hs, w, u, b = self._args(5)
        outs, _ = kernel.execute_batched([xs, hs, w, u, b], 5)
        for i in range(5):
            ref = kernel.execute_single([xs[i], hs[i], w, u, b])
            np.testing.assert_allclose(outs[0][i], ref[0], atol=1e-5)
            np.testing.assert_allclose(outs[1][i], ref[1], atol=1e-5)

    def test_fusion_does_not_change_numerics(self):
        xs, hs, w, u, b = self._args(4)
        fused = BlockKernel(rnn_cell_block(), enable_fusion=True)
        unfused = BlockKernel(rnn_cell_block(), enable_fusion=False, enable_horizontal_fusion=False)
        out_f, _ = fused.execute_batched([xs, hs, w, u, b], 4)
        out_u, _ = unfused.execute_batched([xs, hs, w, u, b], 4)
        np.testing.assert_allclose(out_f[0][2], out_u[0][2], atol=1e-6)

    def test_launch_records_count_matches_groups(self):
        kernel = BlockKernel(rnn_cell_block(), enable_fusion=False, enable_horizontal_fusion=False)
        xs, hs, w, u, b = self._args(3)
        _, launches = kernel.execute_batched([xs, hs, w, u, b], 3)
        assert len(launches) == kernel.num_launches == 6

    def test_launch_records_account_scattered_bytes(self):
        kernel = BlockKernel(rnn_cell_block())
        xs, hs, w, u, b = self._args(3)
        _, launches = kernel.execute_batched(
            [BatchedOperand.scattered_parts(xs), hs, w, u, b], 3
        )
        assert sum(rec.scattered_bytes for rec in launches) > 0

    def test_contiguous_operand_view_is_not_copied(self, monkeypatch):
        kernel = BlockKernel(rnn_cell_block())
        xs, hs, w, u, b = self._args(3)
        stacked = np.stack(xs, axis=0)
        real_stack, stack_calls = np.stack, []
        monkeypatch.setattr(
            np, "stack", lambda *a, **k: (stack_calls.append(1), real_stack(*a, **k))[1]
        )
        outs, _ = kernel.execute_batched(
            [BatchedOperand.batched(stacked), hs, w, u, b], 3
        )
        # the pre-batched operand is consumed as-is: the only stack performed
        # is for the legacy list-valued hs input, none for the batched view
        assert len(stack_calls) == 1
        for i in range(3):
            ref = kernel.execute_single([xs[i], hs[i], w, u, b])
            np.testing.assert_allclose(outs[0][i], ref[0], atol=1e-5)

    def test_wrong_varying_length_raises(self):
        kernel = BlockKernel(rnn_cell_block())
        xs, hs, w, u, b = self._args(3)
        with pytest.raises(ValueError):
            kernel.execute_batched([xs[:2], hs, w, u, b], 3)

    def test_shared_output_is_replicated(self):
        block = single_op_block(0, "zeros", 0, attrs={"shape": (1, 4)})
        kernel = BlockKernel(block)
        outs, _ = kernel.execute_batched([], 3)
        assert len(outs[0]) == 3
        assert outs[0][0] is outs[0][1]  # same constant reused across the batch

    def test_concat_with_shared_operand_broadcasts(self):
        block = StaticBlock(
            0, "cat",
            [BlockInput(0, "x"), BlockInput(1, "e", shared=True)],
            [BlockOp(0, "concat", [input_ref(0), input_ref(1)], {"axis": 1})],
            [op_ref(0)],
        )
        kernel = BlockKernel(block)
        xs = [np.ones((1, 2), np.float32) * i for i in range(3)]
        e = np.zeros((1, 3), np.float32)
        outs, _ = kernel.execute_batched([xs, e], 3)
        assert outs[0][0].shape == (1, 5)

    def test_axis_attrs_shift_for_batched_args(self):
        block = single_op_block(0, "softmax", 1, attrs={"axis": 1})
        kernel = BlockKernel(block)
        xs = [np.random.default_rng(i).standard_normal((1, 4)).astype(np.float32) for i in range(3)]
        outs, _ = kernel.execute_batched([xs], 3)
        for i, x in enumerate(xs):
            ref = kernel.execute_single([x])[0]
            np.testing.assert_allclose(outs[0][i], ref, atol=1e-6)


class TestBatchedProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=7),
        hidden=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_batched_equals_reference_for_any_batch_and_width(self, batch, hidden, seed):
        rng = np.random.default_rng(seed)
        kernel = BlockKernel(rnn_cell_block())
        xs, hs, w, u, b = (
            [rng.standard_normal((1, hidden)).astype(np.float32) for _ in range(batch)],
            [rng.standard_normal((1, hidden)).astype(np.float32) for _ in range(batch)],
            rng.standard_normal((hidden, hidden)).astype(np.float32),
            rng.standard_normal((hidden, hidden)).astype(np.float32),
            rng.standard_normal((1, hidden)).astype(np.float32),
        )
        outs, _ = kernel.execute_batched([xs, hs, w, u, b], batch)
        for i in range(batch):
            ref = kernel.execute_single([xs[i], hs[i], w, u, b])
            np.testing.assert_allclose(outs[0][i], ref[0], atol=1e-4)
            np.testing.assert_allclose(outs[1][i], ref[1], atol=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(
        op_name=st.sampled_from(["relu", "sigmoid", "tanh", "exp", "neg"]),
        batch=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_single_op_blocks_batch_correctly(self, op_name, batch, seed):
        rng = np.random.default_rng(seed)
        kernel = BlockKernel(single_op_block(0, op_name, 1))
        xs = [rng.standard_normal((2, 3)).astype(np.float32) for _ in range(batch)]
        outs, _ = kernel.execute_batched([xs], batch)
        for i in range(batch):
            np.testing.assert_allclose(outs[0][i], kernel.execute_single([xs[i]])[0], atol=1e-5)
