"""Tests for the DyNet / eager / Cortex baselines, the auto-scheduler, the
data generators, utilities, and smoke tests of the experiment drivers."""

import numpy as np
import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.baselines import (
    CortexModel,
    DyNetImprovements,
    compile_dynet,
    compile_eager,
)
from repro.data import (
    coin_run_lists,
    random_matrix_sequence,
    random_sequences,
    random_treebank,
)
from repro.kernels.autoscheduler import (
    allocate_trials,
    auto_schedule,
    static_frequency_estimate,
    tune_kernel,
)
from repro.models import birnn, mvrnn, treelstm
from repro.models import MODEL_MODULES
from repro.utils import flatten_arrays, values_allclose
from tests.conftest import build_listing1_rnn, rnn_instances

BATCH = 3


@pytest.fixture(scope="module")
def small_models():
    out = {}
    for name in ("treelstm", "mvrnn", "drnn", "stackrnn"):
        module = MODEL_MODULES[name]
        mod, params, size = module.build_for("test")
        instances = module.make_batch(mod, size, BATCH, seed=5)
        reference = reference_run(mod, params, instances)
        out[name] = (mod, params, size, instances, reference)
    return out


class TestDyNetBaseline:
    @pytest.mark.parametrize("model_name", ["treelstm", "mvrnn", "drnn", "stackrnn"])
    @pytest.mark.parametrize("scheduler", ["agenda", "depth"])
    def test_dynet_matches_reference(self, small_models, model_name, scheduler):
        mod, params, _, instances, reference = small_models[model_name]
        model = compile_dynet(mod, params, scheduler_kind=scheduler)
        outs, _ = model.run(instances)
        assert all(values_allclose(r, o) for r, o in zip(reference, outs))

    def test_improved_heuristics_match_reference(self, small_models):
        mod, params, _, instances, reference = small_models["mvrnn"]
        model = compile_dynet(mod, params, DyNetImprovements.improved())
        outs, _ = model.run(instances)
        assert all(values_allclose(r, o) for r, o in zip(reference, outs))

    def test_mvrnn_heuristic_prevents_matmul_batching(self, small_models):
        """Stock DyNet cannot batch the matrix products of intermediate
        activations, so it launches more kernels than DN++."""
        mod, params, _, instances, _ = small_models["mvrnn"]
        stock = compile_dynet(mod, params)
        improved = compile_dynet(mod, params, DyNetImprovements.improved())
        _, stock_stats = stock.run(instances)
        _, improved_stats = improved.run(instances)
        assert improved_stats.kernel_calls < stock_stats.kernel_calls

    def test_acrobat_beats_dynet_on_treelstm(self, small_models):
        mod, params, _, instances, _ = small_models["treelstm"]
        dynet = compile_dynet(mod, params)
        _, dy = dynet.run(instances)
        acro = compile_model(mod, params, CompilerOptions())
        _, ab = acro.run(instances)
        assert ab.latency_ms < dy.latency_ms
        assert ab.kernel_calls < dy.kernel_calls

    def test_dynet_scheduling_cost_is_higher_than_acrobat(self, small_models):
        mod, params, _, instances, _ = small_models["treelstm"]
        dynet = compile_dynet(mod, params)
        _, dy = dynet.run(instances)
        acro = compile_model(mod, params, CompilerOptions())
        _, ab = acro.run(instances)
        assert ab.host_ms["scheduling"] < dy.host_ms["scheduling"]

    def test_invalid_scheduler_kind(self, small_models):
        mod, params, _, _, _ = small_models["treelstm"]
        model = compile_dynet(mod, params, scheduler_kind="agenda")
        with pytest.raises(ValueError):
            model.scheduler_kind = "bogus"
            model.make_runtime()


class TestEagerAndCortex:
    def test_eager_matches_reference(self, small_models):
        mod, params, _, instances, reference = small_models["treelstm"]
        model = compile_eager(mod, params)
        outs, stats = model.run(instances)
        assert all(values_allclose(r, o) for r, o in zip(reference, outs))
        assert stats.kernel_calls >= stats.num_dfg_nodes

    def test_cortex_treelstm_matches_reference(self):
        mod, params, size = treelstm.build_for("test")
        trees = random_treebank(BATCH, size.embed, seed=2)
        instances = [treelstm.instance_input(mod, t) for t in trees]
        reference = reference_run(mod, params, instances)
        outs, stats = CortexModel("treelstm", params).run(trees)
        assert all(values_allclose(r, o) for r, o in zip(reference, outs))
        assert stats.kernel_calls < 10 * BATCH  # few, fused launches

    def test_cortex_birnn_matches_reference(self):
        mod, params, size = birnn.build_for("test")
        seqs = random_sequences(BATCH, size.embed, seed=2)
        instances = [birnn.instance_input(mod, s) for s in seqs]
        reference = reference_run(mod, params, instances)
        outs, _ = CortexModel("birnn", params).run(seqs)
        assert all(values_allclose(mod.from_list(r), o) for r, o in zip(reference, outs))

    def test_cortex_mvrnn_charges_extra_copies(self):
        mod, params, size = mvrnn.build_for("test")
        trees = random_treebank(BATCH, size.hidden, seed=2)
        instances = [mvrnn.instance_input(mod, t, seed=i) for i, t in enumerate(trees)]
        outs, stats = CortexModel("mvrnn", params).run(instances)
        assert stats.device["num_memcpy"] >= BATCH  # one copy per leaf at least

    def test_cortex_rejects_unsupported_models(self):
        with pytest.raises(ValueError):
            CortexModel("berxit", {})


class TestAutoScheduler:
    def test_tune_kernel_improves_with_budget(self):
        low = tune_kernel("dense_add_sigmoid", 5)
        high = tune_kernel("dense_add_sigmoid", 500)
        assert 0 < low <= high <= 1.0

    def test_zero_trials_gives_base_quality(self):
        assert tune_kernel("whatever", 0) == pytest.approx(0.45)

    def test_tuning_is_deterministic_per_seed(self):
        assert tune_kernel("k", 50, seed=1) == tune_kernel("k", 50, seed=1)

    def test_allocate_trials_proportional_and_exact(self):
        alloc = allocate_trials(["a", "b"], 100, {"a": 3.0, "b": 1.0})
        assert sum(alloc.values()) == 100
        assert alloc["a"] > alloc["b"]

    def test_static_estimate_is_uniform(self):
        est = static_frequency_estimate(["a", "b", "c"])
        assert set(est.values()) == {1.0}

    def test_auto_schedule_installs_table(self):
        mod, params = build_listing1_rnn()
        instances = rnn_instances(mod, 8, (3, 4))
        compiled = compile_model(mod, params, CompilerOptions())
        result = auto_schedule(compiled, 200, use_pgo=True, sample_instances=instances)
        assert result.used_pgo and sum(result.trials.values()) == 200
        assert compiled.schedule_table
        # tuned schedules must not slow the model down vs the default quality
        assert all(0 < q <= 1.0 for q in result.schedule_table.values())

    def test_pgo_requires_sample_instances(self):
        mod, params = build_listing1_rnn()
        compiled = compile_model(mod, params, CompilerOptions())
        with pytest.raises(ValueError):
            auto_schedule(compiled, 10, use_pgo=True)


class TestDataGenerators:
    def test_treebank_respects_lengths(self):
        trees = random_treebank(4, 8, seed=0, lengths=[5, 6, 7, 8])
        assert [t.num_leaves() for t in trees] == [5, 6, 7, 8]

    def test_treebank_is_seed_deterministic(self):
        a = random_treebank(3, 4, seed=9)
        b = random_treebank(3, 4, seed=9)
        assert [t.num_leaves() for t in a] == [t.num_leaves() for t in b]
        np.testing.assert_allclose(
            flatten_arrays([x.embedding for x in _leaves(a[0])])[0],
            flatten_arrays([x.embedding for x in _leaves(b[0])])[0],
        )

    def test_sequences_shapes(self):
        seqs = random_sequences(3, 16, seed=1, lengths=[2, 3, 4])
        assert [len(s) for s in seqs] == [2, 3, 4]
        assert seqs[0][0].shape == (1, 16)

    def test_matrix_sequences(self):
        mats = random_matrix_sequence(2, 4, 8, seed=0)
        assert len(mats) == 2 and mats[0].shape == (4, 8)

    def test_coin_runs_terminate_with_zero(self):
        runs = coin_run_lists(5, 2, 4, seed=0)
        assert all(r[-1] == 0 and all(c == 1 for c in r[:-1]) for r in runs)
        assert all(2 <= len(r) - 1 <= 4 for r in runs)


class TestUtils:
    def test_values_allclose_nested(self):
        a = [(np.ones(3), 1.0), np.zeros((2, 2))]
        b = [(np.ones(3), 1.0), np.zeros((2, 2))]
        assert values_allclose(a, b)

    def test_values_allclose_detects_mismatch(self):
        assert not values_allclose([np.ones(3)], [np.ones(4)])
        assert not values_allclose((1.0,), (2.0,))
        assert not values_allclose([1.0], 1.0)

    def test_flatten_arrays(self):
        arrays = flatten_arrays([(np.ones(2), [np.zeros(3)]), 4.0])
        assert len(arrays) == 3


class TestExperimentsSmoke:
    def test_table5_rows_have_expected_shape(self):
        from repro.experiments import table5
        from repro.experiments.harness import ExperimentScale

        scale = ExperimentScale(name="tiny", size_names=("small",), batch_sizes=(2,), size_override="test")
        headers, rows = table5.run(scale, models=("treelstm",))
        assert headers[-1] == "speedup"
        assert len(rows) == 1 and rows[0][0] == "treelstm"
        assert rows[0][-1] > 0

    def test_figure6_levels_columns(self):
        from repro.experiments import figure6
        from repro.experiments.harness import ExperimentScale

        scale = ExperimentScale(name="tiny", size_names=("small",), batch_sizes=(2,), size_override="test")
        headers, rows = figure6.run(scale, models=("mvrnn",))
        assert len(headers) == 3 + 6
        assert len(rows) == 1 and all(v > 0 for v in rows[0][3:])

    def test_format_table_renders(self):
        from repro.experiments.harness import format_table

        text = format_table(("a", "b"), [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in text and "2.50" in text


class TestExperimentsCLI:
    def test_list_prints_every_experiment(self, capsys):
        from repro.experiments import ALL_EXPERIMENTS
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        listed = capsys.readouterr().out.split()
        assert listed == sorted(ALL_EXPERIMENTS)
        assert "sharding" in listed

    def test_unknown_experiment_errors(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--only", "table99"]) == 2
        assert "table99" in capsys.readouterr().err

    def test_only_runs_named_experiment(self, capsys, tmp_path, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["--only", "table5"]) == 0
        out = capsys.readouterr().out
        assert "== table5 ==" in out
        assert (tmp_path / "table5.txt").exists()
        # only the requested experiment ran
        assert "== table4 ==" not in out

    def test_best_of_default_is_scoped_to_the_invocation(self, tmp_path, monkeypatch):
        """main() measures best-of-3 by default but must not leave
        REPRO_BEST_OF in the process environment (it is also called
        in-process, where a leak would silently slow later callers 3x)."""
        import os

        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_BEST_OF", raising=False)
        assert main(["--only", "table5"]) == 0
        assert "REPRO_BEST_OF" not in os.environ
        # an explicit setting is respected and survives the invocation
        monkeypatch.setenv("REPRO_BEST_OF", "1")
        assert main(["--only", "table5"]) == 0
        assert os.environ["REPRO_BEST_OF"] == "1"


def _leaves(tree):
    if tree.is_leaf:
        return [tree]
    return _leaves(tree.left) + _leaves(tree.right)
