"""Tests for the memory layer: storage arenas, the ahead-of-execution memory
planner, and the arena-backed execution path (contiguity, gathers, residency,
and numerical equivalence across scheduler policies)."""

import numpy as np
import pytest

from repro import CompilerOptions, compile_model, reference_run
from repro.kernels import BlockKernel, single_op_block
from repro.memory import MemoryPlanner, OperandKind, StorageArena
from repro.models import MODEL_MODULES
from repro.runtime import AcrobatRuntime, DeviceSimulator, ExecutionOptions
from repro.runtime.scheduler import ScheduledBatch
from repro.runtime.tensor import DFGNode
from repro.utils import values_allclose

ALL_POLICIES = ("inline_depth", "dynamic_depth", "agenda", "nobatch")


def make_runtime(**opts):
    kernels = {
        0: BlockKernel(single_op_block(0, "relu", 1)),
        1: BlockKernel(single_op_block(1, "dense", 2, shared=[False, True])),
        2: BlockKernel(single_op_block(2, "add", 2)),
    }
    return AcrobatRuntime(kernels, ExecutionOptions(**opts))


class TestStorageArena:
    def test_batched_views_are_zero_copy(self):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        arena = StorageArena.from_batched(data)
        for b in range(3):
            view = arena.view(b)
            assert np.shares_memory(view, arena.data)
            np.testing.assert_array_equal(view, data[b])

    def test_slice_is_zero_copy_and_ordered(self):
        arena = StorageArena.from_batched(np.arange(20.0).reshape(5, 4))
        part = arena.slice(1, 3)
        assert np.shares_memory(part, arena.data)
        np.testing.assert_array_equal(part, arena.data[1:4])

    def test_broadcast_arena_replicates_one_array(self):
        shared = np.ones((2, 3), np.float32)
        arena = StorageArena.from_broadcast(shared, batch_size=4)
        assert arena.view(0) is shared and arena.view(3) is shared
        sl = arena.slice(0, 4)
        assert sl.shape == (4, 2, 3)
        assert np.shares_memory(sl, shared)  # broadcast view, no copy
        assert arena.nbytes == float(shared.nbytes)

    def test_slot_placement(self):
        arena = StorageArena.from_batched(np.zeros((2, 3)))
        slot = arena.slot(1)
        assert slot.placement == (arena.arena_id, 1)
        assert np.shares_memory(slot.array, arena.data)

    def test_arena_ids_are_unique(self):
        a = StorageArena.from_batched(np.zeros((1, 1)))
        b = StorageArena.from_batched(np.zeros((1, 1)))
        assert a.arena_id != b.arena_id


class TestLazyTensorViews:
    def test_outputs_are_views_into_one_arena(self):
        rt = make_runtime()
        outs = [rt.invoke(0, 0, 0, [np.full((1, 4), i, np.float32)]) for i in range(3)]
        rt.trigger()
        arenas = {o.storage.arena.arena_id for o in outs}
        assert len(arenas) == 1  # one launch output arena for the whole batch
        for b, o in enumerate(outs):
            assert o.storage.offset == b
            assert np.shares_memory(o.value, o.storage.arena.data)


class TestMemoryPlanner:
    def test_contiguous_operands_zero_copies_zero_gathers(self):
        """Operands already contiguous in an arena dispatch with no gather
        launches, no gathered bytes, and a zero-copy arena view."""
        rt = make_runtime(gather_fusion=False)  # any scatter would gather
        xs = [np.full((1, 4), i, np.float32) for i in range(4)]
        producers = [rt.invoke(0, 0, 0, [x]) for x in xs]
        rt.trigger()  # host inputs are scattered: this round may gather
        gathers_before = rt.device.counters.num_gather_launches
        bytes_before = rt.device.counters.bytes_gathered

        consumers = [rt.invoke(0, 1, 0, [p]) for p in producers]
        rt.trigger()

        assert rt.device.counters.num_gather_launches == gathers_before
        assert rt.device.counters.bytes_gathered == bytes_before
        consumer_plan = rt.planner.last_plans[-1]
        assert consumer_plan.operands[0].kind is OperandKind.CONTIGUOUS
        for c, x in zip(consumers, xs):
            np.testing.assert_allclose(c.value, np.maximum(x, 0))

    def test_resolve_contiguous_returns_arena_view(self):
        """The resolved batched operand is the producer arena's own buffer."""
        rt = make_runtime()
        producers = [rt.invoke(0, 0, 0, [np.full((1, 4), i, np.float32)]) for i in range(3)]
        rt.trigger()
        arena = producers[0].storage.arena

        nodes = [DFGNode(0, [p], 1, 0, i, 1) for i, p in enumerate(producers)]
        batch = ScheduledBatch(block_id=0, nodes=nodes)
        plans = rt.planner.plan_round([batch], rt.kernels)
        operands = rt.planner.resolve(plans[0], rt.kernels[0], DeviceSimulator(), rt.options)
        assert operands[0].array is not None and not operands[0].scattered
        assert np.shares_memory(operands[0].array, arena.data)

    def test_scattered_operand_plans_exactly_one_gather(self):
        """Tensors from two different launches are scattered: without gather
        fusion the plan calls for exactly one explicit gather launch."""
        rt = make_runtime(gather_fusion=False)
        x = np.ones((1, 4), np.float32)
        a = rt.invoke(0, 0, 0, [x])
        rt.trigger()
        b = rt.invoke(0, 0, 0, [x * 2])
        rt.trigger()
        rt.invoke(0, 1, 0, [a])
        rt.invoke(0, 1, 0, [b])
        rt.trigger()

        assert rt.device.counters.num_gather_launches == 1
        assert rt.device.counters.bytes_gathered == float(2 * x.nbytes)
        plan = rt.planner.last_plans[-1]
        assert plan.operands[0].kind is OperandKind.GATHER

    def test_fused_gather_avoids_gather_launches(self):
        rt = make_runtime(gather_fusion=True)
        x = np.ones((1, 4), np.float32)
        a = rt.invoke(0, 0, 0, [x])
        rt.trigger()
        b = rt.invoke(0, 0, 0, [x * 2])
        rt.trigger()
        rt.invoke(0, 1, 0, [a])
        rt.invoke(0, 1, 0, [b])
        rt.trigger()

        assert rt.device.counters.num_gather_launches == 0
        plan = rt.planner.last_plans[-1]
        assert plan.operands[0].kind is OperandKind.FUSED_GATHER

    def test_gather_charged_once_per_scattered_operand(self):
        """A batch with two scattered varying operands charges two explicit
        gather launches — one per operand, not per instance."""
        rt = make_runtime(gather_fusion=False)
        x = np.ones((1, 4), np.float32)
        a1 = rt.invoke(0, 0, 0, [x])
        rt.trigger()
        a2 = rt.invoke(0, 0, 0, [x * 2])
        rt.trigger()
        b1 = rt.invoke(0, 0, 0, [x * 3])
        rt.trigger()
        b2 = rt.invoke(0, 0, 0, [x * 4])
        rt.trigger()
        # both "add" operands are scattered (each mixes two arenas)
        rt.invoke(2, 1, 0, [a1, b1])
        rt.invoke(2, 1, 0, [a2, b2])
        rt.trigger()
        assert rt.device.counters.num_gather_launches == 2

    def test_batch_of_one_never_gathers(self):
        rt = make_runtime(gather_fusion=False)
        rt.invoke(0, 0, 0, [np.ones((1, 4), np.float32)])
        rt.trigger()
        assert rt.device.counters.num_gather_launches == 0
        assert rt.planner.last_plans[0].operands[0].kind is OperandKind.CONTIGUOUS

    def test_shared_operand_classified_shared(self):
        rt = make_runtime()
        w = np.eye(4, dtype=np.float32)
        rt.invoke(1, 0, 0, [np.ones((1, 4), np.float32), w])
        rt.invoke(1, 0, 0, [np.zeros((1, 4), np.float32), w])
        rt.trigger()
        plan = rt.planner.last_plans[0]
        kinds = {op.index: op.kind for op in plan.operands}
        assert kinds[1] is OperandKind.SHARED

    def test_operand_counts_reported_in_stats(self):
        rt = make_runtime()
        for i in range(3):
            rt.invoke(0, 0, 0, [np.full((1, 2), i, np.float32)])
        rt.trigger()
        stats = rt.collect_stats(batch_size=3)
        assert sum(stats.memory.values()) > 0
        assert "memory_planning" in stats.host_ms and "materialize" in stats.host_ms

    def test_out_of_order_batches_rejected(self):
        """Consuming a tensor that is neither materialized nor planned earlier
        in the round is a dependency-order violation."""
        rt = make_runtime()
        pending = [rt.invoke(0, 0, 0, [np.ones((1, 2), np.float32)]) for _ in range(2)]
        consumers = [DFGNode(0, [p], 1, 0, i, 1) for i, p in enumerate(pending)]
        planner = MemoryPlanner()
        with pytest.raises(RuntimeError, match="dependency order"):
            planner.plan_round([ScheduledBatch(0, consumers)], rt.kernels)


class TestArenaResidency:
    def test_note_arena_marks_resident_without_copy(self):
        dev = DeviceSimulator()
        arena = StorageArena.from_batched(np.zeros((2, 4), np.float32))
        dev.note_arena(arena)
        assert dev.is_resident(arena)
        assert dev.ensure_resident(arena) == 0.0  # no transfer charged
        assert dev.counters.num_memcpy == 0

    def test_output_arenas_are_resident_after_execution(self):
        rt = make_runtime()
        out = rt.invoke(0, 0, 0, [np.ones((1, 4), np.float32)])
        rt.trigger()
        assert rt.device.is_resident(out.storage.arena)

    def test_session_reuses_resident_parameters_across_rounds(self):
        """Round two of a persistent session does not re-upload parameters:
        the residency cache survives the between-round reset."""
        module = MODEL_MODULES["treelstm"]
        mod, params, size = module.build_for("test")
        instances = module.make_batch(mod, size, 4, seed=7)
        model = compile_model(mod, params, CompilerOptions())

        session = model.session()
        session.submit(instances[0])
        session.submit(instances[1])
        session.flush()
        first_memcpys = session.last_stats.device["num_memcpy"]

        session.submit(instances[2])
        session.submit(instances[3])
        session.flush()
        second_memcpys = session.last_stats.device["num_memcpy"]
        assert first_memcpys > 0
        assert second_memcpys < first_memcpys


class TestPolicyEquivalenceUnderArenas:
    @pytest.fixture(scope="class")
    def treelstm_setup(self):
        module = MODEL_MODULES["treelstm"]
        mod, params, size = module.build_for("test")
        instances = module.make_batch(mod, size, 4, seed=13)
        reference = reference_run(mod, params, instances)
        return mod, params, instances, reference

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_policy_matches_reference(self, treelstm_setup, policy):
        """Arena-backed storage is numerically invisible: every scheduler
        policy still reproduces the unbatched reference outputs."""
        mod, params, instances, reference = treelstm_setup
        model = compile_model(mod, params, CompilerOptions(scheduler=policy))
        outs, _ = model.run(instances)
        assert all(values_allclose(r, o) for r, o in zip(reference, outs))

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_policy_matches_reference_without_gather_fusion(self, treelstm_setup, policy):
        mod, params, instances, reference = treelstm_setup
        model = compile_model(
            mod, params, CompilerOptions(scheduler=policy, gather_fusion=False)
        )
        outs, _ = model.run(instances)
        assert all(values_allclose(r, o) for r, o in zip(reference, outs))


class TestSchedulerArgsOption:
    def test_runtime_fallback_forwards_scheduler_args(self):
        """Parameterized policies work without an engine: ExecutionOptions
        carries the policy arguments to make_scheduler."""
        kernels = {0: BlockKernel(single_op_block(0, "relu", 1))}
        rt = AcrobatRuntime(
            kernels,
            ExecutionOptions(scheduler="dynet", scheduler_args={"kind": "depth"}),
        )
        assert rt._scheduler.kind == "depth"

    def test_bad_scheduler_args_surface(self):
        kernels = {0: BlockKernel(single_op_block(0, "relu", 1))}
        with pytest.raises(ValueError, match="agenda"):
            AcrobatRuntime(
                kernels,
                ExecutionOptions(scheduler="dynet", scheduler_args={"kind": "bogus"}),
            )


class TestPlanCacheLRU:
    """LRU bounding of the plan cache and idempotent arming (the
    specialization tier hangs its slots off cached templates, so eviction
    accounting must be exact)."""

    @pytest.fixture()
    def treelstm_parts(self):
        module = MODEL_MODULES["treelstm"]
        mod, params, size = module.build_for("test")
        return module, mod, params, size

    def _distinct_batches(self, treelstm_parts, n, batch=3):
        module, mod, _, size = treelstm_parts
        return [module.make_batch(mod, size, batch, seed=500 + k) for k in range(n)]

    def test_eviction_counter_exported(self, treelstm_parts, monkeypatch):
        monkeypatch.setattr("repro.memory.planner._PLAN_CACHE_MAX", 2)
        _, mod, params, _ = treelstm_parts
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(max_batch=3)
        for batch in self._distinct_batches(treelstm_parts, 4):
            for i in batch:
                session.submit(i)
            session.flush()
        memory = session.last_stats.memory
        assert memory["plan_cache_evictions"] >= 1
        planner = session.engine.runtime.planner
        assert len(planner._plan_cache) <= 2

    def test_hot_template_survives_eviction(self, treelstm_parts, monkeypatch):
        """A recently hit signature must not be the eviction victim."""
        monkeypatch.setattr("repro.memory.planner._PLAN_CACHE_MAX", 2)
        _, mod, params, _ = treelstm_parts
        a, b, c = self._distinct_batches(treelstm_parts, 3)
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(max_batch=3)
        for batch in (a, b, a, c, a):  # touch A before C evicts the LRU (B)
            for i in batch:
                session.submit(i)
            session.flush()
        memory = session.last_stats.memory
        # misses: A, B, C only — both A replays hit because eviction picked B
        assert memory["plan_cache_misses"] == 3
        assert memory["plan_cache_hits"] == 2

    def test_no_evictions_below_capacity(self, treelstm_parts):
        _, mod, params, _ = treelstm_parts
        model = compile_model(mod, params, CompilerOptions())
        session = model.session(max_batch=3)
        for batch in self._distinct_batches(treelstm_parts, 3):
            for i in batch:
                session.submit(i)
            session.flush()
        assert session.last_stats.memory["plan_cache_evictions"] == 0

    def test_expect_repeats_is_idempotent(self, treelstm_parts):
        """Re-arming (as every Server.run() restart does) must keep cached
        templates, counters, and the armed state."""
        _, mod, params, _ = treelstm_parts
        model = compile_model(mod, params, CompilerOptions())
        engine = model.make_engine()
        planner = engine.runtime.planner
        assert not planner.plan_cache_armed
        assert planner.expect_repeats() is True  # newly armed
        assert planner.plan_cache_armed
        assert planner.expect_repeats() is False  # already armed, no-op

        batch = self._distinct_batches(treelstm_parts, 1)[0]
        session = engine.session(max_batch=3)
        for i in batch:
            session.submit(i)
        session.flush()
        cached = len(planner._plan_cache)
        assert cached > 0
        # a second session on the same engine re-arms without clearing
        session2 = engine.session(max_batch=3)
        assert len(planner._plan_cache) == cached
        for i in batch:
            session2.submit(i)
        session2.flush()
        assert session2.last_stats.memory["plan_cache_hits"] >= 1
