"""Sentiment classification over parse trees with TreeLSTM.

The motivating workload of the paper's introduction: batch of sentences,
each with its own parse-tree shape, classified by a recursive TreeLSTM.
Compares ACROBAT against the DyNet-style dynamic-batching baseline and the
eager (no auto-batching) baseline, and shows the compiler analyses at work
(parameter-reuse classification, hoisted leaf transformation, concurrent
subtree recursion).

Run with::

    python examples/sentiment_treelstm.py
"""


from repro import CompilerOptions, compile_model, reference_run
from repro.baselines import DyNetImprovements, compile_dynet, compile_eager
from repro.data.trees import random_treebank
from repro.models import treelstm
from repro.utils import values_allclose

BATCH = 16
SIZE = "small"          # paper hidden size 256; use "test" for a quick run


def main():
    mod, params, size = treelstm.build_for(SIZE)
    trees = random_treebank(BATCH, size.embed, seed=42)
    instances = [treelstm.instance_input(mod, t) for t in trees]
    print(f"batch of {BATCH} parse trees, {sum(t.num_leaves() for t in trees)} tokens, "
          f"tree sizes {sorted(t.num_leaves() for t in trees)}")

    compiled = compile_model(mod, params, CompilerOptions())
    outputs, acro = compiled.run(instances)

    reference = reference_run(mod, params, instances[:4])
    assert all(values_allclose(r, o) for r, o in zip(reference, outputs[:4]))
    print("outputs match the unbatched reference on a sample of instances")

    dynet = compile_dynet(mod, params)
    _, dy = dynet.run(instances)
    dynet_pp = compile_dynet(mod, params, DyNetImprovements.improved())
    _, dypp = dynet_pp.run(instances)
    eager = compile_eager(mod, params)
    _, eg = eager.run(instances)

    print("\nbackend            latency(ms)  kernel launches  speedup vs eager")
    for name, stats in [
        ("eager (PyTorch-like)", eg),
        ("DyNet", dy),
        ("DyNet++ (fixed heuristics)", dypp),
        ("ACROBAT", acro),
    ]:
        print(
            f"{name:26s} {stats.latency_ms:10.2f}  {stats.kernel_calls:15d}  "
            f"{eg.latency_ms / stats.latency_ms:7.1f}x"
        )

    print("\nACROBAT host/device breakdown:")
    for key, value in acro.host_ms.items():
        print(f"  host {key:18s} {value:8.3f} ms")
    print(f"  device kernels          {acro.device['kernel_time_us'] / 1e3:8.3f} ms")
    print(f"  device copies/gathers   "
          f"{(acro.device['memcpy_time_us'] + acro.device['gather_time_us']) / 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
