"""Early-exit transformer inference (Berxit) under auto-batching.

Demonstrates tensor-dependent control flow: each instance decides after
every encoder layer whether to exit, by reading a confidence value back from
the device.  ACROBAT runs every instance on its own fiber, so the whole
batch advances layer-by-layer and the per-layer kernels stay batched over
exactly the instances that are still alive.

Run with::

    python examples/early_exit_transformer.py
"""


from repro import CompilerOptions, compile_model, reference_run
from repro.baselines import compile_eager
from repro.models import berxit
from repro.utils import values_allclose

BATCH = 8
SIZE = "small"


def main():
    mod, params, size = berxit.build_for(SIZE)
    instances = berxit.make_batch(mod, size, BATCH, seed=7)
    print(
        f"Berxit: {size.layers} shared-weight encoder layers, hidden {size.hidden}, "
        f"{size.heads} heads, sequence length {size.seq_len}, batch {BATCH}"
    )

    compiled = compile_model(mod, params, CompilerOptions())
    assert compiled.uses_tdc, "early exit is tensor-dependent control flow"
    outputs, stats = compiled.run(instances)

    reference = reference_run(mod, params, instances)
    assert all(values_allclose(r, o) for r, o in zip(reference, outputs))
    print("outputs match the unbatched reference")

    # how many layers did each instance actually run?  (count from the eager
    # reference by re-running the exit rule)
    eager = compile_eager(mod, params)
    _, eager_stats = eager.run(instances)

    print(f"\nfiber synchronization rounds (layer steps): {stats.sync_rounds}")
    print(f"DFG nodes               : {stats.num_dfg_nodes}")
    print(f"batched kernel launches : {stats.kernel_calls}")
    print(f"eager kernel launches   : {eager_stats.kernel_calls}")
    print(f"ACROBAT latency         : {stats.latency_ms:.2f} ms")
    print(f"eager latency           : {eager_stats.latency_ms:.2f} ms")
    print(f"speedup                 : {eager_stats.latency_ms / stats.latency_ms:.1f}x")


if __name__ == "__main__":
    main()
