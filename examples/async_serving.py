"""Async serving on real time: `Server.run()`, awaitable handles, threads.

The serving event loop (:class:`repro.serve.loop.ServeLoop`) makes
``Server.submit`` safe to call from anywhere — producer threads, asyncio
coroutines — while one loop thread owns every session: it dispatches
admitted requests, drives deadline polling, and flushes rounds.  Handles
resolve three ways, all shown here:

* ``await handle`` inside any asyncio event loop;
* ``handle.result(timeout=...)`` from a plain thread;
* the admission queue's backpressure (``max_pending`` + ``"block"`` /
  ``"reject"`` / ``"shed-oldest"``) keeps producers honest under overload.

Run with: PYTHONPATH=src python examples/async_serving.py
"""

import asyncio
import threading

from repro import CompilerOptions, compile_model, reference_run
from repro.models import MODEL_MODULES
from repro.serve import Server
from repro.utils import values_allclose

NUM_ASYNC = 8
NUM_THREADED = 8


def build(model_name: str, seed: int):
    module = MODEL_MODULES[model_name]
    mod, params, size = module.build_for("test")
    requests = module.make_batch(
        mod, size, NUM_ASYNC + NUM_THREADED, seed=seed
    )
    reference = reference_run(mod, params, requests)
    return compile_model(mod, params, CompilerOptions()), requests, reference


async def async_clients(server, requests, reference) -> None:
    """Coroutines submit and await: the loop thread resolves the futures."""
    handles = [server.submit("trees", request) for request in requests]
    outputs = await asyncio.gather(*handles)
    ok = all(values_allclose(a, b) for a, b in zip(reference, outputs))
    stats = handles[0].stats
    print(
        f"async    {len(handles)} requests, first rode a batch of "
        f"{stats.batch_size} ({stats.flush_reason} flush), matches "
        f"reference: {ok}"
    )


def threaded_clients(server, requests, reference) -> None:
    """Plain threads submit and block on result(timeout=...)."""
    outputs = [None] * len(requests)

    def client(i):
        handle = server.submit("trees", requests[i])
        outputs[i] = handle.result(timeout=30.0)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(len(requests))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    ok = all(values_allclose(a, b) for a, b in zip(reference, outputs))
    print(f"threaded {len(requests)} requests, matches reference: {ok}")


def main() -> None:
    model, requests, reference = build("treelstm", seed=31)

    # a bounded admission queue: 64 queued requests max, block when full
    server = Server(max_pending=64, backpressure="block")
    server.add_endpoint("trees", model, policy="size", n=4)

    with server.run():  # the event loop owns intake + flushing from here
        asyncio.run(
            async_clients(server, requests[:NUM_ASYNC], reference[:NUM_ASYNC])
        )
        threaded_clients(
            server, requests[NUM_ASYNC:], reference[NUM_ASYNC:]
        )
        server.drain()  # everything admitted has now completed
    # leaving the context shuts the loop down (drain + stop + join)

    summary = server.summary()["trees"]
    print(
        f"summary: requests={summary['requests']:.0f} "
        f"flushes={summary['flushes']:.0f} "
        f"mean_batch={summary['mean_batch']:.1f} "
        f"launches={summary['kernel_launches']:.0f}"
    )


if __name__ == "__main__":
    main()
