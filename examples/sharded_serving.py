"""Sharded serving: one model, four simulated devices, placement policies.

Builds a TreeLSTM, replays the same open-loop Poisson trace against a
single device and against a 4-device group under each sharding placement
policy, and prints the throughput/latency comparison plus the group's
per-device balance.  Results are identical under every placement — only
where the batches execute (and what the cross-device transfers cost)
changes.
"""

from repro import CompilerOptions, SimulatedClock, compile_model, reference_run
from repro.devices import DeviceGroup
from repro.models import MODEL_MODULES
from repro.runtime.device import GPUSpec
from repro.serve import Server
from repro.serve.traffic import poisson_arrivals, replay_server
from repro.utils import values_allclose

NUM_REQUESTS = 24
ARRIVAL_RATE = 800.0  # requests/second on the simulated clock

#: bandwidth/compute-starved edge device: the serving bottleneck is the
#: simulated device, so device-count scaling is visible (see the sharding
#: benchmark notes in the README)
EDGE = GPUSpec.preset("laptop", peak_gflops=4.0, mem_bandwidth_gbps=4.0)


def main() -> None:
    module = MODEL_MODULES["treelstm"]
    mod, params, size = module.build_for("small")
    requests = module.make_batch(mod, size, NUM_REQUESTS, seed=3)
    reference = reference_run(mod, params, requests)
    model = compile_model(mod, params, CompilerOptions())
    arrivals = poisson_arrivals(ARRIVAL_RATE, NUM_REQUESTS, seed=4)

    print(f"{NUM_REQUESTS} TreeLSTM requests, Poisson {ARRIVAL_RATE:.0f} rps\n")
    for label, devices, placement in (
        ("1 device", 1, "single"),
        ("4 devices, round_robin", 4, "round_robin"),
        ("4 devices, data_parallel", 4, "data_parallel"),
    ):
        group = DeviceGroup(devices, spec=EDGE, interconnect="nvlink")
        server = Server(devices=group, placement=placement, clock=SimulatedClock())
        server.add_endpoint("trees", model, policy="size", n=8)
        report = replay_server(
            server, [(t, "trees", r) for t, r in zip(arrivals, requests)]
        )["trees"]
        ok = all(values_allclose(a, b) for a, b in zip(reference, report.outputs))
        balance = server.summary()["devices"]["balance"]
        print(
            f"{label:<26} throughput {report.throughput_rps:7.1f} rps  "
            f"p99 {report.p99_ms:7.2f} ms  balance {balance:.2f}  "
            f"matches reference: {ok}"
        )


if __name__ == "__main__":
    main()
