"""Streaming autoregressive generation through the serving stack.

Every live sequence re-enters the round former once per token, so decode
steps of many sequences batch into the same rounds (continuous batching).
This example shows both :class:`repro.generate.GenerationSession` drivers:

* the **simulated** event loop (`generate()`): an open-loop prompt trace
  decoded deterministically, with per-sequence streaming callbacks, a
  mid-generation cancellation, and the per-step SLO metrics (TTFS,
  inter-step p99) the serving dashboards watch;
* the **wall-clock** pump (`submit()` behind a running `Server`): tokens
  consumed live off `handle.stream()` while the serve loop flushes rounds
  on real time.

Every trajectory is bitwise-identical to the eager unbatched reference
loop — batching the decode cohort changes no token.

Run with: PYTHONPATH=src python examples/generation_streaming.py
"""

import numpy as np

from repro import CompilerOptions, compile_model
from repro.generate import (
    GenerationCancelled,
    GenerationRequest,
    GenerationSession,
    reference_generate,
)
from repro.models import MODEL_MODULES
from repro.serve import Server, SimulatedClock

MODEL = "declm_gru"
NUM_SEQUENCES = 6
MAX_NEW_TOKENS = 8


def build():
    module = MODEL_MODULES[MODEL]
    mod, params, size = module.build_for("test")
    compiled = compile_model(mod, params, CompilerOptions())
    return module, mod, params, size, compiled


def make_requests(vocab, seed=7):
    rng = np.random.default_rng(seed)
    t = 0.0
    requests = []
    for _ in range(NUM_SEQUENCES):
        t += float(rng.exponential(0.0004))
        prompt = [int(tok) for tok in rng.integers(0, vocab, rng.integers(1, 4))]
        requests.append(
            GenerationRequest(prompt, max_new_tokens=MAX_NEW_TOKENS, arrival=t)
        )
    return requests


def simulated_demo(module, mod, params, size, compiled):
    print(f"=== simulated: {NUM_SEQUENCES} sequences, continuous batching ===")
    requests = make_requests(size.classes)
    reference = [
        reference_generate(mod, params, module, size, r.prompt, r.max_new_tokens)
        for r in requests
    ]

    # stream sequence 0's tokens as their rounds complete, and cancel
    # sequence 1 after its second token — round-mates are unaffected
    requests[0].on_token = lambda h, tok, i, at: print(
        f"  seq0 token[{i}] = {tok:2d}  at t={at * 1e3:.3f}ms"
    )
    requests[1].on_token = (
        lambda h, tok, i, at: h.cancel() if i == 1 else None
    )

    session = compiled.serve("adaptive", clock=SimulatedClock())
    gen = GenerationSession(session, module, size)
    handles = gen.generate(requests, host_model=(0.2, 0.05), prepare=True)

    for i, (h, ref) in enumerate(zip(handles, reference)):
        try:
            tokens = h.result()
            tag = "matches reference" if tokens == ref else "MISMATCH"
        except GenerationCancelled:
            tokens = h.tokens
            tag = f"cancelled after {len(tokens)} tokens (prefix of reference)"
            assert tokens == ref[: len(tokens)]
        print(f"  seq{i}: {tokens}  [{tag}]")

    m = gen.metrics
    print(
        f"  rounds={session.num_flushes} "
        f"mean_batch={session.requests_flushed / session.num_flushes:.1f} "
        f"speculation_hits={session.speculation_hits}"
    )
    print(
        f"  TTFS p50={m.ttfs_p50_ms:.3f}ms p99={m.ttfs_p99_ms:.3f}ms "
        f"inter-step p99={m.inter_step_p99_ms:.3f}ms\n"
    )


def wall_clock_demo(module, mod, params, size, compiled):
    print("=== wall clock: live streaming through Server.run() ===")
    reference = reference_generate(mod, params, module, size, [3, 1], 6)
    server = Server()
    server.add_endpoint("decoder", compiled, policy="size", n=1)
    with server.run():
        with GenerationSession(
            server=server, endpoint="decoder", model=module, size=size
        ) as gen:
            handle = gen.submit(GenerationRequest([3, 1], max_new_tokens=6))
            streamed = []
            for tok in handle.stream(timeout=10.0):
                streamed.append(tok)
                print(f"  streamed token {tok}")
        assert streamed == reference
        summary = server.summary()["decoder"]
        print(
            f"  gen_requests={summary['gen_requests']} "
            f"gen_tokens={summary['gen_tokens']} "
            f"ttfs_p50={summary['ttfs_p50_ms']:.3f}ms"
        )
    print("  trajectory matches the eager reference loop bitwise")


def main():
    module, mod, params, size, compiled = build()
    simulated_demo(module, mod, params, size, compiled)
    wall_clock_demo(module, mod, params, size, compiled)


if __name__ == "__main__":
    main()
