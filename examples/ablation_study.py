"""Walk through ACROBAT's optimizations one at a time on a single model.

Mirrors Figure 6 for one model (default: MV-RNN), printing latency, kernel
launches and scheduling cost as each optimization is enabled, plus the
generated code with and without inline depth computation so the effect of
the hybrid static+dynamic analysis is visible.

Run with::

    python examples/ablation_study.py [model]
"""

import sys

from repro import CompilerOptions, compile_model
from repro.models import MODEL_MODULES

BATCH = 8


def main(model_name: str = "mvrnn"):
    module = MODEL_MODULES[model_name]
    mod, params, size = module.build_for("test")
    instances = module.make_batch(mod, size, BATCH, seed=11)

    print(f"=== {model_name}: cumulative optimization levels (batch {BATCH}) ===")
    print(f"{'level':32s} {'latency(ms)':>12s} {'kernels':>9s} {'sched(ms)':>10s}")
    for name, options in CompilerOptions.ablation_levels():
        compiled = compile_model(mod, params, options)
        _, stats = compiled.run(instances)
        print(
            f"{name:32s} {stats.latency_ms:12.2f} {stats.kernel_calls:9d} "
            f"{stats.host_ms.get('scheduling', 0.0):10.3f}"
        )

    fully = compile_model(mod, params, CompilerOptions())
    print("\n=== generated code (all optimizations on) ===")
    print(fully.source)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mvrnn")
