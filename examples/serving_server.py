"""Multi-model serving: two models behind one ``Server``.

A TreeLSTM and a BiRNN share one simulated GPU behind named endpoints;
mixed open-loop traffic routes to each model's session, a deadline policy
flushes each endpoint's backlog, and the per-endpoint reports show both
models batching their own requests without interfering with each other —
per-flush device accounting stays isolated even though the device (and its
parameter-residency cache) is shared.

Run with: PYTHONPATH=src python examples/serving_server.py
"""

from repro import CompilerOptions, compile_model, reference_run
from repro.models import MODEL_MODULES
from repro.serve import Server, SimulatedClock, poisson_arrivals, replay_server
from repro.utils import values_allclose

REQUESTS_PER_MODEL = 12
ARRIVAL_RATE = 2000.0  # per endpoint, requests/second


def build(model_name: str, seed: int):
    module = MODEL_MODULES[model_name]
    mod, params, size = module.build_for("test")
    requests = module.make_batch(mod, size, REQUESTS_PER_MODEL, seed=seed)
    reference = reference_run(mod, params, requests)
    return compile_model(mod, params, CompilerOptions()), requests, reference


def main() -> None:
    trees_model, trees_requests, trees_reference = build("treelstm", seed=21)
    seqs_model, seqs_requests, seqs_reference = build("birnn", seed=22)

    server = Server(clock=SimulatedClock())
    server.add_endpoint("trees", trees_model, policy="deadline", ms=5.0)
    server.add_endpoint("seqs", seqs_model, policy="deadline", ms=5.0)
    print(f"server endpoints: {', '.join(server.endpoints)}\n")

    workload = [
        (t, "trees", req)
        for t, req in zip(
            poisson_arrivals(ARRIVAL_RATE, REQUESTS_PER_MODEL, seed=1), trees_requests
        )
    ] + [
        (t, "seqs", req)
        for t, req in zip(
            poisson_arrivals(ARRIVAL_RATE, REQUESTS_PER_MODEL, seed=2), seqs_requests
        )
    ]
    reports = replay_server(server, workload)

    for name, reference in (("trees", trees_reference), ("seqs", seqs_reference)):
        report = reports[name]
        ok = all(values_allclose(a, b) for a, b in zip(reference, report.outputs))
        print(
            f"{name:<6} {report.num_requests} requests in {report.num_flushes} "
            f"flushes (mean batch {report.mean_batch:.1f}), "
            f"{report.kernel_launches} launches, p99 {report.p99_ms:.2f} ms, "
            f"outputs match reference: {ok}"
        )

    print("\nper-endpoint summary:")
    full_summary = server.summary()
    for name in server.endpoints:
        summary = full_summary[name]
        print(
            f"  {name:<6} requests={summary['requests']:>3.0f} "
            f"flushes={summary['flushes']:>2.0f} "
            f"mean_batch={summary['mean_batch']:.1f} "
            f"launches={summary['kernel_launches']:.0f} "
            f"device_ms={summary['device_ms']:.2f}"
        )
    devices = full_summary["devices"]
    print(f"  devices: count={devices['count']} balance={devices['balance']:.2f}")


if __name__ == "__main__":
    main()
