"""Multi-model serving on the event-loop core: two models, one `Server`.

A TreeLSTM and a BiRNN share one simulated GPU behind named endpoints.
Mixed bursty open-loop traffic replays through the server's
:class:`~repro.serve.loop.ServeLoop` with **continuous batching**: flushed
rounds launch asynchronously onto the device timeline while intake streams
on, partial rounds start the moment each endpoint's deadline policy fires,
and the whole replay is bit-for-bit deterministic (measured host time is
excluded; a fixed host-cost model stands in for it).  The same trace is
also replayed caller-driven — the old submit/poll/flush choreography — to
show what the event loop buys at equal traffic.

Run with: PYTHONPATH=src python examples/serving_server.py
"""

from repro import CompilerOptions, compile_model, reference_run
from repro.models import MODEL_MODULES
from repro.serve import (
    Server,
    SimulatedClock,
    bursty_arrivals,
    replay_server,
    replay_server_continuous,
)
from repro.utils import values_allclose

REQUESTS_PER_MODEL = 16
ARRIVAL_RATE = 2000.0  # per endpoint, requests/second
HOST_MODEL = (1.0, 0.25)  # deterministic host ms per round / per request


def build(model_name: str, seed: int):
    module = MODEL_MODULES[model_name]
    mod, params, size = module.build_for("test")
    requests = module.make_batch(mod, size, REQUESTS_PER_MODEL, seed=seed)
    reference = reference_run(mod, params, requests)
    return compile_model(mod, params, CompilerOptions()), requests, reference


def make_server(trees_model, seqs_model) -> Server:
    server = Server(clock=SimulatedClock())
    server.add_endpoint("trees", trees_model, policy="deadline", ms=5.0)
    server.add_endpoint("seqs", seqs_model, policy="deadline", ms=5.0)
    return server


def make_workload(trees_requests, seqs_requests):
    return [
        (t, "trees", req)
        for t, req in zip(
            bursty_arrivals(ARRIVAL_RATE, REQUESTS_PER_MODEL, burst=4, seed=1),
            trees_requests,
        )
    ] + [
        (t, "seqs", req)
        for t, req in zip(
            bursty_arrivals(ARRIVAL_RATE, REQUESTS_PER_MODEL, burst=4, seed=2),
            seqs_requests,
        )
    ]


def main() -> None:
    trees_model, trees_requests, trees_reference = build("treelstm", seed=21)
    seqs_model, seqs_requests, seqs_reference = build("birnn", seed=22)
    workload = make_workload(trees_requests, seqs_requests)

    print("continuous (event loop) vs caller-driven, same trace:\n")
    continuous_server = None
    for mode, replay_fn in (
        ("continuous", replay_server_continuous),
        ("caller", replay_server),
    ):
        server = make_server(trees_model, seqs_model)
        # both modes run deterministically with the same host-cost model,
        # so the side-by-side isolates the intake choreography
        reports = replay_fn(
            server, workload, deterministic=True, host_model=HOST_MODEL
        )
        if mode == "continuous":
            continuous_server = server
        for name, reference in (("trees", trees_reference), ("seqs", seqs_reference)):
            report = reports[name]
            ok = all(
                values_allclose(a, b) for a, b in zip(reference, report.outputs)
            )
            print(
                f"  {mode:<11} {name:<6} {report.num_requests} requests in "
                f"{report.num_flushes} flushes (mean batch "
                f"{report.mean_batch:.1f}), p99 {report.p99_ms:.2f} ms, "
                f"matches reference: {ok}"
            )
        devices = server.summary()["devices"]
        print(f"  {mode:<11} devices: count={devices['count']}\n")

    # per-endpoint lifetime statistics come from the same summary() as ever
    server = continuous_server
    print("per-endpoint summary (continuous replay):")
    full_summary = server.summary()
    for name in server.endpoints:
        summary = full_summary[name]
        print(
            f"  {name:<6} requests={summary['requests']:>3.0f} "
            f"flushes={summary['flushes']:>2.0f} "
            f"mean_batch={summary['mean_batch']:.1f} "
            f"launches={summary['kernel_launches']:.0f} "
            f"device_ms={summary['device_ms']:.2f}"
        )


if __name__ == "__main__":
    main()
