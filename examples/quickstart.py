"""Quickstart: the paper's Listing-1 RNN, compiled and auto-batched.

Builds a simple sequential RNN in the IR (dynamic control flow = recursion
over a linked list of token embeddings), compiles it with ACROBAT, runs a
mini-batch of variable-length sentences and compares against the eager
reference — both for correctness and for the number of kernel launches.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import CompilerOptions, compile_model, reference_run
from repro.baselines import compile_eager
from repro.ir import (
    ScopeBuilder,
    call,
    ctor,
    function,
    match,
    op,
    pat_ctor,
    prelude_module,
    var,
)
from repro.utils import values_allclose

HIDDEN = 64
CLASSES = 8


def build_rnn_module():
    """The RNN of Listing 1: a recursive cell followed by per-token outputs."""
    mod = prelude_module()
    nil, cons = mod.get_constructor("Nil"), mod.get_constructor("Cons")
    rnn_gv = mod.get_global_var("rnn")

    inps, state, bias, i_wt, h_wt = (
        var("inps"), var("state"), var("bias"), var("i_wt"), var("h_wt"),
    )
    inp, tail = var("inp"), var("tail")
    sb = ScopeBuilder()
    inp_linear = sb.let("inp_linear", op.add(bias, op.dense(inp, i_wt)))
    new_state = sb.let("new_state", op.sigmoid(op.add(inp_linear, op.dense(state, h_wt))))
    sb.ret(ctor(cons, new_state, call(rnn_gv, tail, new_state, bias, i_wt, h_wt)))
    body = match(inps, [(pat_ctor(nil), ctor(nil)), (pat_ctor(cons, inp, tail), sb.get())])
    mod.add_function("rnn", function([inps, state, bias, i_wt, h_wt], body, name="rnn"))

    rnn_bias, rnn_i, rnn_h, rnn_init = var("rnn_bias"), var("rnn_i_wt"), var("rnn_h_wt"), var("rnn_init")
    c_wt, c_bias, m_inps = var("c_wt"), var("c_bias"), var("inps")
    p = var("p")
    out_fn = function([p], op.relu(op.add(c_bias, op.dense(p, c_wt))))
    msb = ScopeBuilder()
    rnn_res = msb.let("rnn_res", call(rnn_gv, m_inps, rnn_init, rnn_bias, rnn_i, rnn_h))
    msb.ret(call(mod.get_global_var("map"), out_fn, rnn_res))
    mod.add_function(
        "main",
        function([rnn_bias, rnn_i, rnn_h, rnn_init, c_wt, c_bias, m_inps], msb.get(), name="main"),
    )
    return mod


def main():
    rng = np.random.default_rng(0)
    mod = build_rnn_module()
    params = {
        "rnn_bias": rng.standard_normal((1, HIDDEN)).astype(np.float32) * 0.1,
        "rnn_i_wt": rng.standard_normal((HIDDEN, HIDDEN)).astype(np.float32) * 0.1,
        "rnn_h_wt": rng.standard_normal((HIDDEN, HIDDEN)).astype(np.float32) * 0.1,
        "rnn_init": np.zeros((1, HIDDEN), dtype=np.float32),
        "c_wt": rng.standard_normal((HIDDEN, CLASSES)).astype(np.float32) * 0.1,
        "c_bias": np.zeros((1, CLASSES), dtype=np.float32),
    }
    lengths = [7, 12, 5, 9, 15, 6, 11, 8]
    instances = [
        mod.make_list(
            [rng.standard_normal((1, HIDDEN)).astype(np.float32) * 0.1 for _ in range(n)]
        )
        for n in lengths
    ]

    compiled = compile_model(mod, params, CompilerOptions())
    print("=== AOT-generated unbatched program ===")
    print(compiled.source)

    outputs, stats = compiled.run(instances)
    reference = reference_run(mod, params, instances)
    assert all(
        values_allclose(mod.from_list(r), mod.from_list(o)) for r, o in zip(reference, outputs)
    ), "batched outputs must match the unbatched reference"

    eager = compile_eager(mod, params)
    _, eager_stats = eager.run(instances)

    print("\n=== auto-batching effect ===")
    print(f"tokens processed            : {sum(lengths)}")
    print(f"DFG nodes recorded          : {stats.num_dfg_nodes}")
    print(f"batched kernel launches     : {stats.kernel_calls}")
    print(f"eager (unbatched) launches  : {eager_stats.kernel_calls}")
    print(f"ACROBAT latency             : {stats.latency_ms:.2f} ms")
    print(f"eager latency               : {eager_stats.latency_ms:.2f} ms")
    print(f"speedup over eager          : {eager_stats.latency_ms / stats.latency_ms:.1f}x")


if __name__ == "__main__":
    main()
