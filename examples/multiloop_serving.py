"""The sharded serving front door: multi-loop topologies + SLO admission.

Builds a TreeLSTM, generates one multi-tenant bursty trace
(interactive / standard / batch tenants with distinct priority classes,
deadlines and a quota cap on the batch tenant), and replays it
deterministically against the ``single`` and ``per_device`` loop
topologies on the same 4-device group.  Prints the throughput/p99
comparison plus each tenant's SLO attainment — sharding the host lane
lifts throughput, and slack-based shedding protects the tight
interactive SLO at the expense of loose batch work.
"""

from repro import CompilerOptions, SimulatedClock, compile_model, reference_run
from repro.models import MODEL_MODULES
from repro.serve import Server, TenantSpec, tenant_mix
from repro.utils import values_allclose

NUM_REQUESTS = 96
HOST_MODEL = (2.0, 0.75)  # ms/round + ms/request of host work per flush

TENANTS = (
    TenantSpec("interactive", rate_rps=1000.0, burst=2,
               priority="interactive", deadline_ms=80.0),
    TenantSpec("standard", rate_rps=600.0, burst=4,
               priority="standard", deadline_ms=200.0),
    TenantSpec("batch", rate_rps=400.0, burst=8,
               priority="batch", deadline_ms=400.0),
)


def main() -> None:
    module = MODEL_MODULES["treelstm"]
    mod, params, size = module.build_for("small")
    requests = module.make_batch(mod, size, NUM_REQUESTS, seed=3)
    reference = reference_run(mod, params, requests)
    model = compile_model(mod, params, CompilerOptions())

    trace = tenant_mix(TENANTS, NUM_REQUESTS, endpoints=["trees"], seed=4)
    workload = [
        (at, ep, req, meta) for (at, ep, meta), req in zip(trace, requests)
    ]

    print(f"{NUM_REQUESTS} TreeLSTM requests, 3 tenants, 2000 rps aggregate\n")
    for topology in ("single", "per_device"):
        server = Server(
            clock=SimulatedClock(),
            devices=4,
            topology=topology,
            tenants={"batch": (200.0, 12)},  # token-bucket quota
            max_pending=24,
            backpressure="shed-slack",
        )
        server.add_endpoint("trees", model, policy="adaptive")
        handles = server.run_trace(
            workload, deterministic=True, host_model=HOST_MODEL
        )["trees"]

        done = [h for h in handles if not h.failed]
        idx = [i for i, h in enumerate(handles) if not h.failed]
        assert all(
            values_allclose(h.result(), reference[i])
            for h, i in zip(done, idx)
        ), "sharded replay diverged from the eager reference"

        horizon = max(h.stats.completed_at for h in done) - workload[0][0]
        latencies = sorted(h.stats.latency_ms for h in done)
        p99 = latencies[int(0.99 * (len(latencies) - 1))]
        summary = server.summary()
        print(
            f"topology={topology:<11} loops={len(summary['loops'])} "
            f"completed={len(done):>2}/{NUM_REQUESTS} "
            f"throughput={len(done) / horizon:7.1f} rps  p99={p99:6.2f} ms"
        )
        for name, gauges in sorted(summary["tenants"].items()):
            print(
                f"  {name:<12} submitted={gauges['submitted']:>2} "
                f"completed={gauges['completed']:>2} "
                f"rejected={gauges['rejected']} shed={gauges['shed']} "
                f"expired={gauges['expired']} "
                f"slo_attainment={gauges['slo_attainment']:.2f}"
            )
        print()


if __name__ == "__main__":
    main()
