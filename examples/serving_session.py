"""Policy-driven serving with ``compile_model(...).serve(...)``.

Simulates a serving scenario: single TreeLSTM requests arrive as open-loop
Poisson traffic, a persistent session accumulates them, and a *flush
policy* decides when the backlog executes as one cross-request batched
round.  Compare the kernel launches against per-request execution — the
amortization is where the serving-path speedup comes from — and note the
latency/throughput tradeoff each policy picks.

Everything runs on a simulated clock, so deadline semantics are exact and
the whole sweep takes milliseconds of real time.

Run with: PYTHONPATH=src python examples/serving_session.py
"""

from repro import CompilerOptions, compile_model
from repro.models import MODEL_MODULES
from repro.serve import SimulatedClock, poisson_arrivals, replay

NUM_REQUESTS = 24
ARRIVAL_RATE = 2500.0  # requests/second

POLICIES = (
    ("per_request", "size", {"n": 1}),
    ("size(8)", "size", {"n": 8}),
    ("deadline(5ms)", "deadline", {"ms": 5.0}),
    ("adaptive", "adaptive", {}),
)


def main() -> None:
    module = MODEL_MODULES["treelstm"]
    mod, params, size = module.build_for("test")
    requests = module.make_batch(mod, size, NUM_REQUESTS, seed=11)
    arrivals = poisson_arrivals(ARRIVAL_RATE, NUM_REQUESTS, seed=0)

    model = compile_model(mod, params, CompilerOptions())

    print(f"{NUM_REQUESTS} requests, Poisson arrivals at {ARRIVAL_RATE:.0f} req/s\n")
    print(f"{'policy':<14} {'mean batch':>10} {'launches':>9} {'p50 ms':>7} "
          f"{'p99 ms':>7} {'req/s':>7}")
    base_launches = None
    for label, policy, args in POLICIES:
        session = model.serve(policy, clock=SimulatedClock(), **args)
        report = replay(session, requests, arrivals)
        if label == "per_request":
            base_launches = report.kernel_launches
        print(
            f"{label:<14} {report.mean_batch:>10.1f} {report.kernel_launches:>9} "
            f"{report.p50_ms:>7.2f} {report.p99_ms:>7.2f} "
            f"{report.throughput_rps:>7.0f}"
        )

    # per-request observability: every handle carries its own stats
    session = model.serve("deadline", ms=5.0, clock=SimulatedClock())
    report = replay(session, requests, arrivals)
    handle = report.handles[0]
    stats = handle.stats
    print(f"\nfirst request under deadline(5ms): queued {stats.queue_ms:.2f} ms, "
          f"executed {stats.execute_ms:.2f} ms in a batch of {stats.batch_size} "
          f"({stats.launch_share:.1f} launches/request, flushed by "
          f"{stats.flush_reason!r})")
    reduction = base_launches / report.kernel_launches
    print(f"launch reduction vs per-request execution: {reduction:.1f}x")

    # the plan cache kicks in when structurally identical rounds repeat
    # (here: the same 8 requests flushed three times)
    cache_session = model.session(max_batch=8)
    for _ in range(3):
        for request in requests[:8]:
            cache_session.submit(request)
    memory = cache_session.last_stats.memory
    planning = [f"{s.host_ms['memory_planning']:.2f}" for s in cache_session.history]
    print(f"plan cache over 3 identical rounds: {memory['plan_cache_hits']} hits / "
          f"{memory['plan_cache_misses']} miss; memory_planning ms per flush: "
          f"{', '.join(planning)}")


if __name__ == "__main__":
    main()
