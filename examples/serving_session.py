"""Cross-request batching with an :class:`InferenceSession`.

Simulates a serving scenario: single TreeLSTM requests arrive one at a
time, a persistent session accumulates them in the lazy DFG, and one flush
executes the whole backlog as a single batched round.  Compare the kernel
launches against running each request eagerly on its own — the session's
cross-request batching is where the serving-path speedup comes from.

Run with: PYTHONPATH=src python examples/serving_session.py
"""

from repro import CompilerOptions, compile_model
from repro.models import MODEL_MODULES

NUM_REQUESTS = 8


def main() -> None:
    module = MODEL_MODULES["treelstm"]
    mod, params, size = module.build_for("test")
    requests = module.make_batch(mod, size, NUM_REQUESTS, seed=11)

    model = compile_model(mod, params, CompilerOptions())

    # per-request execution: every arrival runs alone (no cross-request batching)
    solo_launches = 0
    for request in requests:
        _, stats = model.run([request])
        solo_launches += stats.kernel_calls

    # session execution: requests pile up, one flush batches across all of them
    session = model.session(max_batch=NUM_REQUESTS)
    handles = [session.submit(request) for request in requests]
    assert all(h.done for h in handles)  # max_batch reached -> auto-flushed
    stats = session.last_stats

    print(f"requests                 : {NUM_REQUESTS}")
    print(f"per-request kernel calls : {solo_launches}")
    print(f"session kernel calls     : {stats.kernel_calls}")
    print(f"launch reduction         : {solo_launches / stats.kernel_calls:.1f}x")
    print(f"session latency (ms)     : {stats.latency_ms:.2f}")

    # host-side time per phase, including the memory layer's buckets
    # (memory_planning: contiguity classification + arena placement;
    #  materialize: committing launch outputs into storage arenas)
    print("host time per phase:")
    for phase in ("dfg_construction", "scheduling", "memory_planning", "dispatch", "materialize"):
        print(f"  {phase:<16} : {stats.host_ms.get(phase, 0.0):7.3f} ms")
    ops = ", ".join(f"{k}={v}" for k, v in sorted(stats.memory.items()) if v)
    print(f"planned operands         : {ops}")


if __name__ == "__main__":
    main()
