"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures at the scale
selected by ``REPRO_SCALE`` (default: ``reduced``) and writes the formatted
table to ``benchmarks/results/``.

Latency cells are the best of ``REPRO_BEST_OF`` measurements (default 3
here): host time is real wall-clock time, and on a busy single-CPU machine
a one-off scheduler preemption can inflate an individual measurement
several-fold, flipping the tables' relative comparisons at random.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

os.environ.setdefault("REPRO_BEST_OF", "3")
