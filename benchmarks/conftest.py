"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures at the scale
selected by ``REPRO_SCALE`` (default: ``reduced``) and writes the formatted
table to ``benchmarks/results/``.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
