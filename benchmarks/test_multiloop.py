"""Benchmark regenerating the sharded-front-door table: loop topologies
under multi-tenant bursty overload, fully deterministic."""

import math

from repro.experiments import multiloop
from repro.experiments.harness import save_result


def test_sharded_front_door(benchmark):
    headers, rows = benchmark.pedantic(multiloop.run, rounds=1, iterations=1)
    text = multiloop.format_report(headers, rows)
    save_result("multiloop", text)
    print("\n" + text)

    col = {name: i for i, name in enumerate(headers)}
    by_topology = {row[col["topology"]]: row for row in rows}

    for row in rows:
        # sharding must never change results, and the simulated timeline
        # must be a pure function of the trace (the run replays every
        # configuration twice on fresh servers to prove it)
        assert row[col["matches_ref"]] == "yes"
        assert row[col["deterministic"]] == "yes"
        assert math.isfinite(row[col["p99_ms"]]) and row[col["p99_ms"]] > 0
        # SLO attainment orders by priority class under overload:
        # slack-based shedding protects the tight interactive SLO at the
        # expense of loose batch work
        assert row[col["slo_interactive"]] >= row[col["slo_batch"]]

    single = by_topology["single"]
    multi = by_topology["per_device"]

    # the tentpole win: four host lanes sustain >= 1.3x the single-loop
    # throughput at 4 devices on the 10x bursty trace (the committed
    # table shows ~1.5x, and the numbers are deterministic)
    assert multi[col["loops"]] == 4
    assert (
        multi[col["throughput_rps"]] >= 1.3 * single[col["throughput_rps"]]
    )
    assert multi[col["p99_ms"]] < single[col["p99_ms"]]

    # the overloaded single loop sheds/expires low-priority work the
    # sharded topology absorbs, and serves tenants less evenly
    assert single[col["shed"]] > 0
    assert multi[col["shed"]] == 0
    assert multi[col["jain_fairness"]] >= single[col["jain_fairness"]]

    # tenant-pinned routing skews backlog onto three loops; the stealing
    # pass rebalances it (and still beats the single loop)
    pinned = by_topology["per_device+pin"]
    assert pinned[col["stolen"]] > 0
    assert (
        pinned[col["throughput_rps"]] >= 1.3 * single[col["throughput_rps"]]
    )

    # per_endpoint: two loops over two-device slices sit between the
    # single loop and full per-device sharding
    per_ep = by_topology["per_endpoint"]
    assert per_ep[col["loops"]] == 2
    assert per_ep[col["throughput_rps"]] > single[col["throughput_rps"]]
