"""Benchmark regenerating Table 7: DyNet vs DyNet++ vs ACROBAT."""

from repro.experiments import table7
from repro.experiments.harness import format_table, save_result


def test_table7_dynet_improved(benchmark):
    headers, rows = benchmark.pedantic(table7.run, rounds=1, iterations=1)
    text = format_table(headers, rows, title="Table 7: DN vs DN++ vs AB (ms)")
    save_result("table7", text)
    print("\n" + text)
    # shape check: on MV-RNN the heuristic fix recovers a large part of the gap
    mv = [r for r in rows if r[0] == "mvrnn"]
    assert all(r[4] <= r[3] * 1.05 for r in mv)  # DN++ no slower than DN
    # ACROBAT remains the fastest of the three overall
    import numpy as np
    assert np.mean([r[5] for r in rows]) <= np.mean([r[4] for r in rows])
