"""Benchmark regenerating the continuous-batching table: caller-driven vs
event-loop intake under bursty open-loop traffic, fully deterministic."""

import math

from repro.experiments import continuous
from repro.experiments.harness import save_result


def test_continuous_beats_caller_driven(benchmark):
    headers, rows = benchmark.pedantic(continuous.run, rounds=1, iterations=1)
    text = continuous.format_report(headers, rows)
    save_result("continuous", text)
    print("\n" + text)

    col = {name: i for i, name in enumerate(headers)}
    by_config = {
        (row[col["model"]], row[col["policy"]], row[col["mode"]]): row
        for row in rows
    }

    for row in rows:
        # intake choreography must never change results, and the simulated
        # timeline must be a pure function of the trace (bit-for-bit
        # reproducible — the run itself replays every config twice)
        assert row[col["matches_ref"]] == "yes"
        assert row[col["deterministic"]] == "yes"
        assert math.isfinite(row[col["p99_ms"]]) and row[col["p99_ms"]] > 0

    # the tentpole win: under bursty traffic at saturation, the event loop
    # beats caller-driven flushing on BOTH throughput and p99 for every
    # model/policy pair (the acceptance criterion asks for at least one;
    # the committed table shows ~1.1x throughput and ~0.8x p99 margins,
    # and the numbers are deterministic, so the floors are exact)
    for model in continuous.MODELS:
        for policy, _, _ in continuous.POLICIES:
            caller = by_config[(model, policy, "caller")]
            loop = by_config[(model, policy, "continuous")]
            assert loop[col["throughput_rps"]] >= caller[col["throughput_rps"]]
            assert loop[col["p99_ms"]] <= caller[col["p99_ms"]]

    # and the headline pair clears real margins, not rounding noise
    caller = by_config[("treelstm", "deadline(5ms)", "caller")]
    loop = by_config[("treelstm", "deadline(5ms)", "continuous")]
    assert loop[col["throughput_rps"]] >= 1.05 * caller[col["throughput_rps"]]
    assert loop[col["p99_ms"]] <= 0.95 * caller[col["p99_ms"]]

    # equal traffic in, equal work out: both modes flush identical rounds
    # here (the win is intake overlap, not batch shaping)
    for model in continuous.MODELS:
        for policy, _, _ in continuous.POLICIES:
            caller = by_config[(model, policy, "caller")]
            loop = by_config[(model, policy, "continuous")]
            assert loop[col["launches"]] == caller[col["launches"]]

    # the composition row: continuous intake + the depth-staged placement
    # on a 2-device group beats single-device continuous on throughput
    # while flushing the very same rounds (pipelining stages batches, it
    # never splits them)
    for model in continuous.MODELS:
        pipe = by_config[(model, "adaptive", "cont+pipeline@2")]
        loop = by_config[(model, "adaptive", "continuous")]
        assert pipe[col["throughput_rps"]] > loop[col["throughput_rps"]]
        assert pipe[col["launches"]] == loop[col["launches"]]
