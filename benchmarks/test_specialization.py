"""Benchmark regenerating the kernel-specialization table: steady-state
serving dispatch + memory-planning cost with the tier off vs on."""

from repro.experiments import specialization
from repro.experiments.harness import save_result


def test_specialization_steady_state_floor(benchmark):
    headers, rows = benchmark.pedantic(specialization.run, rounds=1, iterations=1)
    text = specialization.format_report(headers, rows)
    save_result("specialization", text)
    print("\n" + text)

    col = {name: i for i, name in enumerate(headers)}
    for row in rows:
        # specialization must never trade correctness for speed: every
        # round of every configuration is bitwise-identical to the eager
        # reference (the run itself also re-checks this per round)
        assert row[col["exact"]] == "yes", f"{row[0]} diverged from reference"
        # the tier engaged: fingerprints promoted and then actually hit
        assert row[col["promotions"]] > 0
        assert row[col["hits"]] > 0

    # the acceptance floor: steady-state dispatch + planning improves by
    # >= 1.15x on at least one serving model (the committed table shows
    # ~1.7x on TreeLSTM and ~1.5x on BiRNN, so this is margin, not luck)
    best = max(rows, key=lambda r: r[col["speedup"]])
    assert best[col["speedup"]] >= 1.15, (
        f"best steady-state speedup {best[col['speedup']]:.2f}x "
        f"({best[0]}) is below the 1.15x floor"
    )
    # and specialized dispatch itself must win, not ride planning noise
    assert best[col["dispatch_speedup"]] >= 1.15
