"""Benchmark regenerating Table 4: Relay-VM vs AOT compilation latency."""

from repro.experiments import table4
from repro.experiments.harness import format_table, save_result


def test_table4_vm_vs_aot(benchmark):
    headers, rows = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    text = format_table(headers, rows, title="Table 4: Relay VM vs ACROBAT AOT (ms)")
    save_result("table4", text)
    print("\n" + text)
    # shape check: AOT must beat the interpreter in every configuration
    assert all(row[-1] > 1.0 for row in rows)
