"""Benchmark regenerating the serving table: open-loop traffic through the
flush-policy matrix, plus the memory planner's plan-cache comparison."""

import math

from repro.experiments import serving
from repro.experiments.harness import save_result


def test_serving_policies(benchmark):
    headers, rows = benchmark.pedantic(serving.run, rounds=1, iterations=1)
    cache_headers, cache_rows = serving.run_plan_cache()
    text = serving.format_report(headers, rows, cache_headers, cache_rows)
    save_result("serving", text)
    print("\n" + text)

    col = {name: i for i, name in enumerate(headers)}
    by_config = {(row[col["model"]], row[col["policy"]]): row for row in rows}

    for model in ("treelstm", "birnn"):
        # batching policies must never change results
        for label, _, _ in serving.POLICIES:
            assert by_config[(model, label)][col["matches_ref"]] == "yes"
        # the serving win: deadline and adaptive batching both cut kernel
        # launches >= 3x vs per-request execution at finite tail latency
        for label in ("deadline(5ms)", "adaptive"):
            row = by_config[(model, label)]
            assert row[col["launch_reduction"]] >= 3.0
            assert math.isfinite(row[col["p99_ms"]]) and row[col["p99_ms"]] > 0
            assert row[col["mean_batch"]] > 1.0

    # plan cache: >= 50% hit rate over structurally identical flushes.  The
    # win is asserted on the deterministic hit/miss counters, not the
    # measured memory_planning_ms buckets — sub-millisecond wall-clock
    # deltas flake on busy CI hosts, while the counters are a pure function
    # of the flush structure: identical rounds plan once and hit ever
    # after, and the disabled cache never counts a hit
    ccol = {name: i for i, name in enumerate(cache_headers)}
    cache = {row[ccol["config"]]: row for row in cache_rows}
    on, off = cache["plan_cache=on"], cache["plan_cache=off"]
    assert on[ccol["hit_rate"]] >= 0.5
    assert on[ccol["misses"]] == 1
    assert on[ccol["hits"]] == on[ccol["flushes"]] - 1
    assert off[ccol["hits"]] == 0 and off[ccol["hit_rate"]] == 0.0
