"""Benchmark regenerating the sharding table: serving throughput vs device
count for every placement policy on a device-bound edge-class group."""

import math

from repro.experiments import sharding
from repro.experiments.harness import save_result


def test_sharding_scaling(benchmark):
    headers, rows = benchmark.pedantic(sharding.run, rounds=1, iterations=1)
    text = sharding.format_report(headers, rows)
    save_result("sharding", text)
    print("\n" + text)

    col = {name: i for i, name in enumerate(headers)}
    by_config = {
        (row[col["placement"]], row[col["devices"]]): row for row in rows
    }

    for placement in sharding.PLACEMENTS:
        for devices in sharding.DEVICE_COUNTS:
            row = by_config[(placement, devices)]
            # sharding must never change results or break the accounting
            # identity: per-device counters sum to the group totals
            assert row[col["matches_ref"]] == "yes"
            assert row[col["counters_sum"]] == "yes"
            assert math.isfinite(row[col["p99_ms"]]) and row[col["p99_ms"]] > 0

    # the sharding win: request-level sharding scales serving throughput
    # >= 1.5x from 1 to 4 devices in the device-bound regime (the margin in
    # the committed results table is ~1.7x; 1.5 is the acceptance floor)
    assert by_config[("round_robin", 4)][col["speedup"]] >= 1.5
    # and the cost-model-driven splitter gets a real win too
    assert by_config[("data_parallel", 4)][col["speedup"]] >= 1.3

    # the no-sharding baseline must not magically speed up with idle devices
    assert abs(by_config[("single", 4)][col["speedup"]] - 1.0) < 0.25

    # cross-device traffic only ever appears on multi-device rows, and the
    # data-parallel splitter actually exercises the priced peer path
    for placement in sharding.PLACEMENTS:
        assert by_config[(placement, 1)][col["peer_transfers"]] == 0
    assert by_config[("data_parallel", 4)][col["peer_transfers"]] > 0

    # unsplit batches and partial splits rotate instead of piling on device
    # 0: busy-time balance at 4 devices must stay clear of the old ~0.33
    # skew (the committed table shows ~0.68; 0.5 is the acceptance floor)
    assert by_config[("data_parallel", 4)][col["balance"]] >= 0.5
