"""Benchmark regenerating Figure 6: the optimization ablation."""

from repro.experiments import figure6
from repro.experiments.harness import format_table, save_result


def test_figure6_ablation(benchmark):
    headers, rows = benchmark.pedantic(figure6.run, rounds=1, iterations=1)
    text = format_table(headers, rows, title="Figure 6: cumulative optimization levels (ms)")
    save_result("figure6", text)
    print("\n" + text)
    # shape check: the fully optimized configuration beats the unoptimized
    # one for every model/size
    for row in rows:
        latencies = row[3:]
        assert latencies[-1] < latencies[0], row[:3]
    # standard kernel fusion alone already helps on aggregate (per-row the
    # margin on the cheapest models is within single-run timing noise, so
    # this is asserted over the column sums rather than row by row)
    assert sum(row[4] for row in rows) < sum(row[3] for row in rows)
    # control-flow-heavy models benefit from coarsening + inline depth
    for row in rows:
        if row[0] in ("treelstm", "mvrnn"):
            assert row[3 + 3] < row[3 + 0], row[:3]
