"""Benchmark regenerating Table 6: runtime activity breakdown."""

from repro.experiments import table6
from repro.experiments.harness import format_table, save_result


def test_table6_breakdown(benchmark):
    headers, rows = benchmark.pedantic(table6.run, rounds=1, iterations=1)
    text = format_table(headers, rows, title="Table 6: runtime activity breakdown")
    save_result("table6", text)
    print("\n" + text)
    by_activity = {row[0]: row[1:] for row in rows}
    # ACROBAT's scheduling cost is a fraction of DyNet's (both configurations)
    sched = by_activity["Scheduling (ms)"]
    assert sched[1] < sched[0]
    assert sched[3] < sched[2]
    # ACROBAT launches far fewer kernels
    calls = by_activity["#Kernel calls"]
    assert calls[1] < calls[0]
    assert calls[3] < calls[2]
