"""Benchmark regenerating Table 5: DyNet vs ACROBAT latencies and speedups."""

from repro.experiments import table5
from repro.experiments.harness import format_table, save_result


def test_table5_dynet_vs_acrobat(benchmark):
    headers, rows = benchmark.pedantic(table5.run, rounds=1, iterations=1)
    text = format_table(headers, rows, title="Table 5: DyNet vs ACROBAT (ms)")
    gm = table5.geometric_mean_speedup(rows)
    text += f"\n\nGeometric-mean speedup over DyNet: {gm:.2f}x"
    save_result("table5", text)
    print("\n" + text)
    # shape check: ACROBAT wins overall (paper: 2.3x geomean)
    assert gm > 1.0
    # ...and clearly on the control-flow-heavy recursive models
    tree_rows = [r for r in rows if r[0] in ("treelstm", "mvrnn")]
    assert all(r[-1] > 1.0 for r in tree_rows)
