"""Benchmark regenerating the pipeline table: depth-staged placements
(pipeline / tensor_parallel) vs the sharding baselines on deep and wide
models under continuous batching."""

import math

from repro.experiments import pipeline
from repro.experiments.harness import save_result


def test_pipeline_placements(benchmark):
    headers, rows = benchmark.pedantic(pipeline.run, rounds=1, iterations=1)
    text = pipeline.format_report(headers, rows)
    save_result("pipeline", text)
    print("\n" + text)

    col = {name: i for i, name in enumerate(headers)}
    by_config = {
        (row[col["model"]], row[col["placement"]], row[col["devices"]]): row
        for row in rows
    }

    for row in rows:
        key = (row[col["model"]], row[col["placement"]], row[col["devices"]])
        # placement must change where work runs, never results or the
        # accounting identity (per-device counters sum to group totals),
        # and every replay must be bit-for-bit reproducible
        assert row[col["matches_ref"]] == "yes", key
        assert row[col["counters_sum"]] == "yes", key
        assert row[col["deterministic"]] == "yes", key
        assert math.isfinite(row[col["p99_ms"]]) and row[col["p99_ms"]] > 0
        # cross-device traffic only ever appears on multi-device rows
        if row[col["devices"]] == 1:
            assert row[col["peer_transfers"]] == 0, key

    def thr(model, placement, devices):
        return by_config[(model, placement, devices)][col["throughput_rps"]]

    # the headline win: on deep fiber models every node in a sync round
    # carries the same instance id, so request-level sharding piles the
    # whole round on one member (round_robin == single) while depth
    # staging spreads it.  Committed margins are ~1.8x (stackrnn) and
    # ~1.6x (drnn); 1.2 is the acceptance floor.
    for model in pipeline.DEEP_MODELS:
        assert thr(model, "pipeline", 4) >= 1.2 * thr(model, "round_robin", 4)
        assert thr(model, "pipeline", 2) > thr(model, "round_robin", 2)
        # staging engages every member at 4 devices
        assert by_config[(model, "pipeline", 4)][col["active_devices"]] == 4
        # pipelining stages batches, it never splits them: launch count
        # stays identical to the single-device run
        launches = col["launches"]
        assert (
            by_config[(model, "pipeline", 4)][launches]
            == by_config[(model, "single", 1)][launches]
        )

    # the contrast that makes placement a policy choice: on the wide model
    # rounds are instance-parallel, so round_robin scales and depth
    # staging trails it (committed: ~3.1x vs ~1.4x at 4 devices)
    for model in pipeline.WIDE_MODELS:
        assert thr(model, "round_robin", 4) > thr(model, "pipeline", 4)

    # tensor_parallel actually splits: more launches than single, priced
    # gathers on every multi-device row, and a real win on the deep models
    for model in pipeline.DEEP_MODELS:
        tp = by_config[(model, "tensor_parallel", 4)]
        assert tp[col["launches"]] > by_config[(model, "single", 1)][col["launches"]]
        assert tp[col["peer_transfers"]] > 0
        assert thr(model, "tensor_parallel", 4) >= 1.2 * thr(model, "single", 4)

    # idle members never zero the balance column: single on a 4-group is
    # one perfectly balanced active device
    for model in pipeline.MODELS:
        row = by_config[(model, "single", 4)]
        assert row[col["active_devices"]] == 1
        assert row[col["balance"]] == 1.0
