"""Benchmark regenerating Figure 5: speedup over eager execution vs batch size."""

from collections import defaultdict

from repro.experiments import figure5
from repro.experiments.harness import format_table, save_result


def test_figure5_speedup_over_eager(benchmark):
    headers, rows = benchmark.pedantic(figure5.run, rounds=1, iterations=1)
    text = format_table(headers, rows, title="Figure 5: speedup over eager execution")
    save_result("figure5", text)
    print("\n" + text)
    # shape check: auto-batching always wins, and larger batches expose more
    # batch parallelism (compared via the per-series peak to be robust to
    # single-run timing noise)
    series = defaultdict(dict)
    for model, size, batch, _, _, speedup in rows:
        series[(model, size)][batch] = speedup
    for key, by_batch in series.items():
        batches = sorted(by_batch)
        assert by_batch[batches[-1]] > 1.0, key
        assert max(by_batch.values()) > by_batch[batches[0]], key
    largest = [by_batch[sorted(by_batch)[-1]] for by_batch in series.values()]
    smallest = [by_batch[sorted(by_batch)[0]] for by_batch in series.values()]
    assert sum(largest) / len(largest) > sum(smallest) / len(smallest)
