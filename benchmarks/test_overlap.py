"""Benchmark regenerating the overlapped-host-pipeline table: serial vs
speculative round preparation under host-bound traffic, fully
deterministic."""

import math

from repro.experiments import overlap
from repro.experiments.harness import save_result


def test_overlap_host_bound_throughput(benchmark):
    headers, rows = benchmark.pedantic(overlap.run, rounds=1, iterations=1)
    text = overlap.format_report(headers, rows)
    save_result("overlap", text)
    print("\n" + text)

    col = {name: i for i, name in enumerate(headers)}
    by_config = {(row[col["model"]], row[col["policy"]]): row for row in rows}

    for row in rows:
        # the pipeline must never change results, and both modes replay
        # bit-for-bit (the run itself replays every config twice and
        # compares latencies and outputs exactly — speculation aborts
        # included)
        assert row[col["matches_ref"]] == "yes"
        assert row[col["deterministic"]] == "yes"
        assert math.isfinite(row[col["p50_overlap_ms"]])
        assert row[col["p50_overlap_ms"]] > 0

    # the tentpole win: in the host-bound regime the capped adaptive rows
    # hide most of each round's preparable host share behind the previous
    # round's device flight.  The committed table shows 1.3-1.4x; the
    # replay is deterministic (simulated time), so a generous-but-real
    # floor is exact, not flaky.
    for model in overlap.MODELS:
        row = by_config[(model, "adaptive")]
        assert row[col["speedup"]] >= 1.15, (
            f"{model}: host-bound overlap speedup {row[col['speedup']]:.3f} "
            "fell below the 1.15x floor"
        )
        # the speedup must come from adopted speculation, not batch
        # reshaping: warm rounds all hit, and hidden host time is real
        assert row[col["spec_hits"]] > 0
        assert row[col["hidden_ms"]] > 0.0
        # overlap must not trade throughput for latency: draining faster
        # can only shorten queues under the same open-loop trace
        assert row[col["p50_overlap_ms"]] <= row[col["p50_serial_ms"]]

    # the uncapped ablation (flush-takes-all deadline rounds) stays
    # reference-identical but shows why the round cap matters: arrival
    # churn keeps invalidating the prepared round, so the pipeline buys
    # little there
    for model in overlap.MODELS:
        row = by_config[(model, "deadline(8ms)")]
        assert row[col["speedup"]] >= 0.99
