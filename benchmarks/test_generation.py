"""Benchmark regenerating the autoregressive-decode table: per-request vs
continuously batched generation, fully deterministic on the simulated
clock."""

import math

from repro.experiments import generation
from repro.experiments.harness import save_result


def test_generation_continuous_batching(benchmark):
    headers, rows = benchmark.pedantic(generation.run, rounds=1, iterations=1)
    text = generation.format_report(headers, rows)
    save_result("generation", text)
    print("\n" + text)

    col = {name: i for i, name in enumerate(headers)}
    by_config = {(row[col["model"]], row[col["mode"]]): row for row in rows}

    for row in rows:
        # batching decode cohorts must never change a single token: every
        # trajectory equals the eager reference loop exactly, and every
        # row replays bit-for-bit (tokens and timestamps)
        assert row[col["matches_ref"]] == "yes"
        assert row[col["deterministic"]] == "yes"
        assert math.isfinite(row[col["ttfs_p50_ms"]])
        assert row[col["ttfs_p50_ms"]] > 0
        assert row[col["tok_per_s"]] > 0

    # the tentpole win: one round per decode-step cohort instead of one
    # round per sequence-step.  The committed table shows ~2.6x on both
    # cells; the replay is deterministic (simulated time), so a
    # generous-but-real floor is exact, not flaky.
    for model in generation.MODELS:
        per_req = by_config[(model, "per_request")]
        cont = by_config[(model, "continuous")]
        ttfs_win = per_req[col["ttfs_p50_ms"]] / cont[col["ttfs_p50_ms"]]
        assert ttfs_win >= 1.3, (
            f"{model}: continuous-batching TTFS win {ttfs_win:.3f} fell "
            "below the 1.3x floor"
        )
        tput_win = cont[col["tok_per_s"]] / per_req[col["tok_per_s"]]
        assert tput_win >= 1.3, (
            f"{model}: continuous-batching throughput win {tput_win:.3f} "
            "fell below the 1.3x floor"
        )
        # the win comes from real cross-request rounds: the cohort batches
        # and amortizes kernel launches
        assert cont[col["mean_batch"]] > 2.0
        assert cont[col["kern_per_tok"]] < per_req[col["kern_per_tok"]]
        # inter-step p99 — the decode SLO — must improve too: each token
        # costs one shared round, not a queue of serialized rounds
        assert cont[col["inter_p99_ms"]] <= per_req[col["inter_p99_ms"]]

    # the prepare pipeline must never hurt and stays reference-identical
    for model in generation.MODELS:
        cont = by_config[(model, "continuous")]
        prep = by_config[(model, "continuous+prepare")]
        assert prep[col["ttfs_p50_ms"]] <= cont[col["ttfs_p50_ms"]] + 1e-9
