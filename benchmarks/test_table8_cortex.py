"""Benchmark regenerating Table 8: Cortex vs ACROBAT."""

from repro.experiments import table8
from repro.experiments.harness import format_table, save_result


def test_table8_cortex(benchmark):
    headers, rows = benchmark.pedantic(table8.run, rounds=1, iterations=1)
    text = format_table(headers, rows, title="Table 8: Cortex vs ACROBAT (ms)")
    save_result("table8", text)
    print("\n" + text)
    # shape check: Cortex (hand-specialized) is at least competitive on
    # TreeLSTM/BiRNN but loses on MV-RNN due to forced embedding copies
    mv = [r for r in rows if r[0] == "mvrnn"]
    other = [r for r in rows if r[0] != "mvrnn"]
    assert all(r[-1] > 1.0 for r in mv)
    assert all(r[-1] < 1.5 for r in other)
