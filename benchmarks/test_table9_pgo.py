"""Benchmark regenerating Table 9: PGO-guided auto-scheduling."""

from repro.experiments import table9
from repro.experiments.harness import format_table, save_result


def test_table9_pgo(benchmark):
    headers, rows = benchmark.pedantic(
        table9.run, kwargs={"budgets": (100, 250, 500, 750, 1000)}, rounds=1, iterations=1
    )
    text = format_table(headers, rows, title="Table 9: auto-scheduling with/without PGO (NestedRNN)")
    save_result("table9", text)
    print("\n" + text)
    # shape check: at the smallest budget PGO is at least as good as the
    # uniform static allocation
    assert rows[0][2] <= rows[0][1] * 1.05
