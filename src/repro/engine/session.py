"""Compatibility shim: the session layer moved to :mod:`repro.serve`.

:class:`~repro.serve.session.InferenceSession` is now part of the serving
subsystem (flush policies, request futures, clocks, servers, traffic) and
lives in ``repro.serve.session``; the old ``InferenceRequest`` handle grew
per-request statistics and became
:class:`~repro.serve.request.RequestHandle`.  This module keeps the
historical import path working but emits a :class:`DeprecationWarning` on
import — update imports to ``repro.serve``.
"""

import warnings

from ..serve.request import RequestHandle, RequestStats
from ..serve.session import InferenceSession

warnings.warn(
    "repro.engine.session is deprecated: the session layer moved to "
    "repro.serve (import InferenceSession, RequestHandle and RequestStats "
    "from repro.serve instead)",
    DeprecationWarning,
    stacklevel=2,
)

#: deprecated alias for :class:`~repro.serve.request.RequestHandle`
InferenceRequest = RequestHandle

__all__ = ["InferenceRequest", "InferenceSession", "RequestHandle", "RequestStats"]
