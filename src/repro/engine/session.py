"""Cross-request batching sessions.

Classic ``run(instances)`` batches only within one mini-batch: every call
builds a runtime, executes, and throws everything away.  A serving system
instead sees single requests arriving independently and wants to batch
*across* them (Zha et al. 2019, JIT dynamic batching).
:class:`InferenceSession` is that path: requests enter via :meth:`submit`,
their DFG nodes accumulate in the session's persistent runtime, and one
:meth:`flush` schedules and executes everything that piled up as a single
batched round — so N submitted requests cost far fewer kernel launches than
N eager runs.

Two accumulation modes, chosen automatically from the program:

* programs without tensor-dependent control flow run their unbatched code at
  :meth:`submit` time, recording lazy DFG nodes immediately (true
  cross-request DFG accumulation);
* programs with tensor-dependent control flow cannot run ahead of
  synchronization points, so the session defers them: instances queue up and
  :meth:`flush` executes all of them as one fiber-interleaved batch.

Either way the flushed results are numerically identical to one
``run(instances)`` over the same requests.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Tuple

from ..runtime.executor import RunStats
from ..runtime.tensor import materialize_value
from .engine import ExecutionEngine


class InferenceRequest:
    """Handle for one submitted request; carries its result after a flush."""

    __slots__ = ("index", "done", "_value")

    def __init__(self, index: int) -> None:
        #: position of the request within its batching round
        self.index = index
        self.done = False
        self._value: Any = None

    def result(self) -> Any:
        if not self.done:
            raise RuntimeError(
                "request not executed yet: call InferenceSession.flush() "
                "(or submit until max_batch is reached)"
            )
        return self._value

    def _complete(self, value: Any) -> None:
        self._value = value
        self.done = True

    def __repr__(self) -> str:
        return f"InferenceRequest(index={self.index}, done={self.done})"


class InferenceSession:
    """Persistent session batching independently submitted requests."""

    def __init__(self, engine: ExecutionEngine, max_batch: Optional[int] = None) -> None:
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be a positive integer")
        self.engine = engine
        #: flush automatically once this many requests are pending
        self.max_batch = max_batch
        self._deferred = engine.program.uses_fibers
        self._pending: List[Tuple[InferenceRequest, Any]] = []
        self._entry = None
        self._build_s = 0.0
        #: statistics of the most recent flush
        self.last_stats: Optional[RunStats] = None
        self.num_requests = 0
        self.num_flushes = 0

    # -- request intake --------------------------------------------------------
    def submit(self, instance: Any) -> InferenceRequest:
        """Accept one request; returns a handle resolved at the next flush.

        For programs without tensor-dependent control flow the request's
        unbatched program runs now, recording its DFG nodes into the shared
        lazy graph; execution is still deferred to :meth:`flush`.
        """
        handle = InferenceRequest(len(self._pending))
        if self._deferred:
            self._pending.append((handle, instance))
        else:
            entry = self._ensure_round()
            rt = self.engine.runtime
            build_start = time.perf_counter()
            rt.current_instance = handle.index
            raw = entry(instance)
            self._build_s += time.perf_counter() - build_start
            self._pending.append((handle, raw))
        self.num_requests += 1
        if self.max_batch is not None and len(self._pending) >= self.max_batch:
            self.flush()
        return handle

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    # -- execution -------------------------------------------------------------
    def flush(self) -> List[Any]:
        """Schedule and execute everything submitted since the last flush.

        Returns the per-request outputs in submission order (and resolves
        every pending request handle).
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []

        if self._deferred:
            outputs, stats = self.engine.run([instance for _, instance in pending])
        else:
            rt = self.engine.runtime
            flush_start = time.perf_counter()
            rt.trigger()
            outputs = [materialize_value(raw) for _, raw in pending]
            wall_s = self._build_s + (time.perf_counter() - flush_start)
            stats = self.engine.collect_stats(len(pending), wall_s)
            self._entry = None
            self._build_s = 0.0

        for (handle, _), output in zip(pending, outputs):
            handle._complete(output)
        stats.batch_size = len(pending)
        self.last_stats = stats
        self.engine.last_stats = stats
        self.num_flushes += 1
        return outputs

    # -- context manager -------------------------------------------------------
    def __enter__(self) -> "InferenceSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()

    # -- internals -------------------------------------------------------------
    def _ensure_round(self):
        """Bind the program for a new batching round (first submit after a
        flush): reset the runtime and cache the per-instance entry.

        The device's residency cache survives the reset: storage arenas and
        parameters uploaded in earlier rounds stay device-resident, so
        cross-request batches in later rounds reuse resident parameters
        instead of re-transferring them.
        """
        if self._entry is None:
            self.engine.runtime.reset(release_residency=False)
            self._entry = self.engine.program.bind(self.engine.runtime, None)
        return self._entry
