"""The unified execution engine.

Every front-end — the AOT-compiled program, the Relay-VM-style interpreter
and the DyNet baseline — used to hand-build an
:class:`~repro.runtime.executor.AcrobatRuntime`, bind per-instance
arguments, drive fibers and assemble :class:`~repro.runtime.executor.RunStats`
on its own.  :class:`ExecutionEngine` owns that machinery once:

* runtime construction (device simulator wiring, profiler, scheduler-policy
  resolution through :mod:`repro.engine.registry`);
* the per-instance execution loop, including the fiber scheduler for
  programs with tensor-dependent control flow;
* statistics assembly (wall-clock DFG-construction accounting).

Front-ends supply a :class:`ProgramBinding` that knows how to wire a runtime
into the program and return a per-instance entry callable; they shrink to
thin adapters.  :meth:`ExecutionEngine.session` opens a persistent
:class:`~repro.serve.session.InferenceSession` that batches *across*
independently submitted requests.  ``devices=``/``placement=`` back the
engine with a :class:`~repro.devices.group.DeviceGroup` instead of a single
simulator and shard each scheduled round across it.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..runtime.device import DeviceSimulator, GPUSpec
from ..runtime.executor import AcrobatRuntime, ExecutionOptions, RunStats
from ..runtime.fibers import FiberScheduler
from ..runtime.profiler import ActivityProfiler
from ..runtime.tensor import materialize_value
from ..utils import ensure_recursion_limit
from .registry import make_scheduler


class ProgramBinding:
    """Adapter between a front-end program and the engine.

    ``bind`` wires ``runtime`` (and, for programs with tensor-dependent
    control flow, the fiber scheduler) into the program and returns the
    per-instance entry: a callable taking one instance and returning either
    the instance's (lazy) result or, when ``uses_fibers`` is true, a root
    generator for the fiber scheduler.
    """

    #: whether the program must run on interleaved fibers (§4.2)
    uses_fibers: bool = False

    def bind(
        self, runtime: AcrobatRuntime, fibers: Optional[FiberScheduler]
    ) -> Callable[[Any], Any]:
        raise NotImplementedError


class InstanceArgBinder:
    """Assembles the argument list of ``main`` for one instance.

    Bound (weight) parameters come from ``params``; every remaining ``main``
    parameter is a per-instance input taken from the instance mapping (or
    from the bare instance value when there is exactly one such input).
    Replaces the ``_instance_args`` copies the front-ends used to carry.
    """

    def __init__(self, main_param_names: Sequence[str], params: Mapping[str, Any]) -> None:
        self.main_param_names = list(main_param_names)
        self.params = params
        self.instance_param_names = [n for n in self.main_param_names if n not in params]

    def __call__(self, instance: Any) -> List[Any]:
        args: List[Any] = []
        for name in self.main_param_names:
            if name in self.params:
                args.append(self.params[name])
            elif isinstance(instance, Mapping):
                args.append(instance[name])
            elif len(self.instance_param_names) == 1:
                args.append(instance)
            else:
                raise TypeError(
                    f"instance input must be a mapping with keys "
                    f"{self.instance_param_names}"
                )
        return args


class ExecutionEngine:
    """Owns one runtime and executes a program's instances through it."""

    def __init__(
        self,
        program: ProgramBinding,
        kernels: Dict[int, Any],
        options: Optional[ExecutionOptions] = None,
        *,
        policy: Optional[str] = None,
        policy_args: Optional[Dict[str, Any]] = None,
        device: Optional[DeviceSimulator] = None,
        gpu_spec: Optional[GPUSpec] = None,
        schedule_table: Optional[Dict[str, float]] = None,
        default_schedule_quality: float = 0.9,
        profiler: Optional[ActivityProfiler] = None,
        devices: Any = None,
        placement: Any = None,
        placement_args: Optional[Dict[str, Any]] = None,
        interconnect: Any = None,
    ) -> None:
        self.program = program
        self.kernels = kernels
        options = options or ExecutionOptions()
        if policy is not None:
            options = replace(options, scheduler=policy)
        if placement is not None and isinstance(placement, str):
            options = replace(options, placement=placement)
        self.options = options
        if devices is not None:
            # multi-device execution: build (or adopt) a device group
            from ..devices.group import DeviceGroup

            if device is not None:
                raise ValueError(
                    "pass either an explicit device or a devices= count/spec "
                    "list, not both (wrap your devices in a DeviceGroup and "
                    "pass it as device= instead)"
                )
            device = DeviceGroup.coerce(
                devices,
                spec=gpu_spec,
                interconnect=interconnect,
                schedule_table=schedule_table,
                default_schedule_quality=default_schedule_quality,
            )
        self.device = device or DeviceSimulator(
            spec=gpu_spec,
            schedule_table=schedule_table,
            default_schedule_quality=default_schedule_quality,
        )
        # placement: an instance is used as-is; a name (possibly from
        # options.placement) resolves through the registry; a multi-device
        # group with no explicit choice shards requests round-robin
        if placement is None or isinstance(placement, str):
            name = self.options.placement
            if name is None and self.num_devices > 1:
                name = "round_robin"
            if name is not None:
                from ..devices.placement import make_placement

                merged_placement_args = {
                    **self.options.placement_args,
                    **(placement_args or {}),
                }
                placement = make_placement(name, **merged_placement_args)
            elif placement_args:
                raise ValueError(
                    "placement_args were given but no placement policy "
                    "resolves (single-device engine with no placement name)"
                )
        elif placement_args:
            # mirror InferenceSession's policy_args contract: arguments only
            # make sense when the policy is resolved by name here, and
            # silently ignoring them would hide misconfiguration
            raise ValueError(
                "placement_args only apply when placement is given by name"
            )
        # policy arguments: options.scheduler_args is the base (so directly
        # constructed runtimes and engines agree), explicit policy_args win
        merged_args = {**options.scheduler_args, **(policy_args or {})}
        scheduler = make_scheduler(
            options.scheduler,
            kernels=kernels,
            options=options,
            **merged_args,
        )
        self.runtime = AcrobatRuntime(
            kernels,
            options,
            self.device,
            profiler or ActivityProfiler(),
            scheduler,
            placement=placement,
        )
        # deep model recursion (trees, long sequences) needs a high recursion
        # limit; raised once here rather than on every call
        ensure_recursion_limit()
        self.last_stats: Optional[RunStats] = None

    @property
    def policy(self) -> str:
        """Name of the scheduler policy this engine runs."""
        return self.options.scheduler

    @property
    def num_devices(self) -> int:
        """How many devices back this engine (1 for a standalone simulator)."""
        return getattr(self.device, "num_devices", 1)

    @property
    def placement(self) -> Optional[Any]:
        """The runtime's placement policy (None on the single-device path)."""
        return self.runtime._placement

    # -- batch execution -------------------------------------------------------
    def run(
        self, instances: Sequence[Any], release_residency: bool = True
    ) -> Tuple[List[Any], RunStats]:
        """Execute one mini-batch through the engine's runtime.

        Returns per-instance outputs (fully materialized) and the host/device
        breakdown of the run.  The runtime is reset first, so engines can be
        reused across runs; ``release_residency=False`` keeps the device's
        residency cache (persistent sessions reuse parameters uploaded in
        earlier rounds instead of re-transferring them).
        """
        rt = self.runtime
        rt.reset(release_residency=release_residency)

        run_start = time.perf_counter()
        fibers = FiberScheduler(rt.trigger) if self.program.uses_fibers else None
        entry = self.program.bind(rt, fibers)

        raw_results: List[Any] = []
        if fibers is None:
            for i, instance in enumerate(instances):
                rt.current_instance = i
                raw_results.append(entry(instance))
        else:
            roots = []
            for i, instance in enumerate(instances):
                rt.current_instance = i
                roots.append(entry(instance))
            raw_results = fibers.run(roots)
        rt.trigger()

        outputs = [materialize_value(r) for r in raw_results]
        total_s = time.perf_counter() - run_start

        stats = self.collect_stats(len(instances), total_s)
        self.last_stats = stats
        return outputs, stats

    # -- statistics ------------------------------------------------------------
    def collect_stats(self, batch_size: int, wall_s: float) -> RunStats:
        """Snapshot runtime counters into a :class:`RunStats`.

        Host time not attributed to scheduling, memory planning, dispatch,
        output materialization or kernel compute is charged to DFG
        construction (graph building is interleaved with the front-end's own
        program execution, so it is measured as the remainder of the
        wall-clock time).
        """
        rt = self.runtime
        stats = rt.collect_stats(batch_size)
        accounted = (
            stats.host_ms.get("scheduling", 0.0)
            + stats.host_ms.get("placement", 0.0)
            + stats.host_ms.get("memory_planning", 0.0)
            + stats.host_ms.get("dispatch", 0.0)
            + stats.host_ms.get("materialize", 0.0)
            + stats.host_ms.get("specialize", 0.0)
            + stats.host_ms.get("prepare", 0.0)
            + rt.profiler.ms("numpy_compute")
        )
        stats.host_ms["dfg_construction"] = max(0.0, wall_s * 1e3 - accounted)
        return stats

    # -- sessions --------------------------------------------------------------
    def session(
        self,
        max_batch: Optional[int] = None,
        *,
        policy: Any = None,
        policy_args: Optional[Dict[str, Any]] = None,
        clock: Any = None,
    ):
        """Open a persistent :class:`~repro.serve.session.InferenceSession`
        that batches across independently submitted requests.

        ``policy`` selects a flush policy from the registry in
        :mod:`repro.serve.policy` (with ``policy_args``); ``max_batch=n`` is
        deprecated sugar for ``policy="size", policy_args={"n": n}``.
        ``clock`` overrides the session's time source (e.g. a
        :class:`~repro.serve.clock.SimulatedClock`).
        """
        from ..serve.session import InferenceSession

        return InferenceSession(
            self, max_batch=max_batch, policy=policy, policy_args=policy_args, clock=clock
        )
