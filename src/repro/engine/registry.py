"""String-keyed scheduler-policy registry.

ACROBAT's thesis is that one batching runtime can serve many execution
strategies that differ only in *where the schedule information comes from*
(static phase/depth annotations, runtime DFG traversals, DyNet-style
agendas).  The registry makes that pluggable: every scheduling strategy is a
named *policy* whose factory builds a scheduler object with a
``schedule(nodes) -> List[ScheduledBatch]`` method, and every layer that
needs a scheduler — :class:`~repro.engine.engine.ExecutionEngine`, the
runtime, the experiment harness — resolves it by name through
:func:`make_scheduler`.

Built-in policies:

``inline_depth``
    ACROBAT's scheduler; buckets nodes by the statically computed
    ``(phase, depth)`` pairs (§4.1).
``dynamic_depth``
    Depths recomputed at runtime by traversing the DFG (the Relay-VM /
    ablation configuration).
``agenda``
    DyNet-style agenda scheduling over DFG nodes, batching by block
    signature (Neubig et al. 2017b).
``nobatch``
    Every node is its own batch of one (the eager / PyTorch baseline).
``dynet``
    The full DyNet baseline policy with its batching-signature heuristics;
    accepts ``improvements=`` and ``kind=`` ("agenda" or "depth") policy
    arguments.

Third-party policies register with :func:`register_scheduler`, either as a
plain call or as a decorator on a factory::

    @register_scheduler("my_policy")
    def make_my_scheduler(kernels=None, options=None, **policy_args):
        return MyScheduler(...)

Factories are called with the keyword arguments ``kernels`` (block-id ->
:class:`~repro.kernels.batched.BlockKernel`) and ``options``
(:class:`~repro.runtime.executor.ExecutionOptions`), plus any policy-specific
keyword arguments the caller supplied; factories should accept and ignore
keywords they do not use.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..runtime.scheduler import (
    AgendaScheduler,
    DynamicDepthScheduler,
    InlineDepthScheduler,
    NoBatchScheduler,
)

SchedulerFactory = Callable[..., Any]

_REGISTRY: Dict[str, SchedulerFactory] = {}


def register_scheduler(
    name: str,
    factory: Optional[SchedulerFactory] = None,
    *,
    overwrite: bool = False,
) -> Any:
    """Register a scheduler policy under ``name``.

    Usable as a plain call (``register_scheduler("p", factory)``) or as a
    decorator (``@register_scheduler("p")``).  Registering an existing name
    raises unless ``overwrite=True``.
    """

    def _register(fn: SchedulerFactory) -> SchedulerFactory:
        if not overwrite and name in _REGISTRY:
            raise ValueError(
                f"scheduler policy {name!r} is already registered "
                f"(pass overwrite=True to replace it)"
            )
        _REGISTRY[name] = fn
        return fn

    if factory is None:
        return _register
    return _register(factory)


def unregister_scheduler(name: str) -> None:
    """Remove a policy from the registry (no-op for unknown names)."""
    _REGISTRY.pop(name, None)


def available_policies() -> Tuple[str, ...]:
    """Names of all registered scheduler policies, sorted."""
    return tuple(sorted(_REGISTRY))


def make_scheduler(
    name: str,
    *,
    kernels: Optional[Dict[int, Any]] = None,
    options: Optional[Any] = None,
    **policy_args: Any,
) -> Any:
    """Instantiate the scheduler policy registered under ``name``.

    ``kernels`` and ``options`` describe the runtime the scheduler will serve
    (policies that do not need them ignore them); extra keyword arguments are
    forwarded to the policy factory.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler policy {name!r}; available policies: "
            f"{', '.join(available_policies())}"
        ) from None
    return factory(kernels=kernels, options=options, **policy_args)


# -- built-in policies --------------------------------------------------------

register_scheduler("inline_depth", lambda **_: InlineDepthScheduler())
register_scheduler("dynamic_depth", lambda **_: DynamicDepthScheduler())
register_scheduler("agenda", lambda **_: AgendaScheduler())
register_scheduler("nobatch", lambda **_: NoBatchScheduler())


@register_scheduler("dynet")
def _make_dynet_scheduler(kernels=None, options=None, **policy_args):
    # imported lazily: baselines.dynet sits above the engine layer
    from ..baselines.dynet import DyNetScheduler

    return DyNetScheduler(
        kernels=kernels or {},
        improvements=policy_args.get("improvements"),
        kind=policy_args.get("kind", "agenda"),
    )
