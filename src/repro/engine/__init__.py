"""Execution-engine layer: the bridge between front-ends and the runtime.

Sits between the front-ends (AOT-compiled programs, the Relay-VM
interpreter, the DyNet baseline) and :mod:`repro.runtime`:

* :class:`ExecutionEngine` — owns runtime construction, device/profiler
  wiring, instance-argument binding and statistics assembly;
* the scheduler-policy registry — string-keyed scheduling strategies
  (``inline_depth``, ``dynamic_depth``, ``agenda``, ``nobatch``,
  ``dynet``), extensible via :func:`register_scheduler`;
* :class:`InferenceSession` — a persistent session batching across
  independently submitted requests.  The session (and everything serving:
  flush policies, request futures, clocks, multi-model servers) lives in
  :mod:`repro.serve`; it is re-exported here for compatibility.
"""

from .engine import ExecutionEngine, InstanceArgBinder, ProgramBinding
from .registry import (
    available_policies,
    make_scheduler,
    register_scheduler,
    unregister_scheduler,
)
from .session import InferenceRequest, InferenceSession, RequestHandle

__all__ = [
    "ExecutionEngine",
    "InstanceArgBinder",
    "ProgramBinding",
    "InferenceRequest",
    "InferenceSession",
    "RequestHandle",
    "available_policies",
    "make_scheduler",
    "register_scheduler",
    "unregister_scheduler",
]
