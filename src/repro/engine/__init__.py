"""Execution-engine layer: the bridge between front-ends and the runtime.

Sits between the front-ends (AOT-compiled programs, the Relay-VM
interpreter, the DyNet baseline) and :mod:`repro.runtime`:

* :class:`ExecutionEngine` — owns runtime construction, device/profiler
  wiring, instance-argument binding and statistics assembly;
* the scheduler-policy registry — string-keyed scheduling strategies
  (``inline_depth``, ``dynamic_depth``, ``agenda``, ``nobatch``,
  ``dynet``), extensible via :func:`register_scheduler`;
* :class:`InferenceSession` — a persistent session batching across
  independently submitted requests.  The session (and everything serving:
  flush policies, request futures, clocks, multi-model servers) lives in
  :mod:`repro.serve`; it is re-exported here for compatibility — lazily,
  through the deprecated :mod:`repro.engine.session` shim, so only code
  that still uses the old path sees its :class:`DeprecationWarning`.
"""

from .engine import ExecutionEngine, InstanceArgBinder, ProgramBinding
from .registry import (
    available_policies,
    make_scheduler,
    register_scheduler,
    unregister_scheduler,
)

_SESSION_EXPORTS = ("InferenceRequest", "InferenceSession", "RequestHandle")


def __getattr__(name):
    if name in _SESSION_EXPORTS:
        from . import session as _session

        return getattr(_session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ExecutionEngine",
    "InstanceArgBinder",
    "ProgramBinding",
    "InferenceRequest",
    "InferenceSession",
    "RequestHandle",
    "available_policies",
    "make_scheduler",
    "register_scheduler",
    "unregister_scheduler",
]
