"""Small shared utilities."""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

from .ir.adt import ADTValue

#: recursion depth needed by deeply recursive models (trees, long sequences)
RECURSION_LIMIT_FLOOR = 20000


def ensure_recursion_limit(limit: int = RECURSION_LIMIT_FLOOR) -> int:
    """Raise the interpreter recursion limit to at least ``limit``.

    Only ever raises: a limit the user already set higher is left untouched.
    Called once at engine/interpreter construction rather than on every run.
    Returns the limit in effect afterwards.
    """
    current = sys.getrecursionlimit()
    if current < limit:
        sys.setrecursionlimit(limit)
        return limit
    return current


def values_allclose(a: Any, b: Any, atol: float = 1e-4, rtol: float = 1e-4) -> bool:
    """Structural numerical comparison of model outputs.

    Handles nested structures of ADT values (lists/trees), tuples, Python
    lists and NumPy arrays; scalars compare with the same tolerance.  Used by
    the test-suite to compare every backend against the eager reference.
    """
    if isinstance(a, ADTValue) or isinstance(b, ADTValue):
        if not (isinstance(a, ADTValue) and isinstance(b, ADTValue)):
            return False
        if a.constructor.name != b.constructor.name:
            return False
        return all(values_allclose(x, y, atol, rtol) for x, y in zip(a.fields, b.fields))
    if isinstance(a, (tuple, list)) or isinstance(b, (tuple, list)):
        if not isinstance(a, (tuple, list)) or not isinstance(b, (tuple, list)):
            return False
        if len(a) != len(b):
            return False
        return all(values_allclose(x, y, atol, rtol) for x, y in zip(a, b))
    if a is None or b is None:
        return a is None and b is None
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    if a_arr.shape != b_arr.shape:
        return False
    return bool(np.allclose(a_arr, b_arr, atol=atol, rtol=rtol))


def flatten_arrays(value: Any) -> list:
    """Flatten a nested output structure into a list of NumPy arrays/scalars."""
    out: list = []
    if isinstance(value, ADTValue):
        for f in value.fields:
            out.extend(flatten_arrays(f))
    elif isinstance(value, (tuple, list)):
        for f in value:
            out.extend(flatten_arrays(f))
    elif value is not None:
        out.append(np.asarray(value))
    return out
