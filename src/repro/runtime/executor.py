"""The ACROBAT runtime: lazy DFG construction and batched execution.

The AOT-compiled program (or the VM) calls :meth:`AcrobatRuntime.invoke` for
every static-block invocation; the runtime records a DFG node and hands back
lazy tensors.  :meth:`AcrobatRuntime.trigger` schedules the pending nodes
(inline-depth or dynamic-depth), resolves operands, performs gather / memory
transfer accounting against the device simulator, runs the batched NumPy
kernels and materializes the results.

Host-side work (graph construction, scheduling, batch assembly) is measured
as real wall-clock time; device-side work is charged to the
:class:`~repro.runtime.device.DeviceSimulator`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels.batched import BlockKernel
from .device import DeviceSimulator
from .profiler import ActivityProfiler
from .scheduler import ScheduledBatch
from .tensor import DFGNode, LazyTensor, new_storage_region


@dataclass
class ExecutionOptions:
    """Runtime-facing switches (a subset of the compiler options)."""

    #: fuse the memory gather into batched kernels (§5.2); when off, scattered
    #: operands are first copied into contiguous buffers by explicit gather
    #: kernels, as DyNet does
    gather_fusion: bool = True
    #: scheduler-policy name, resolved through the registry in
    #: :mod:`repro.engine.registry` ("inline_depth" schedules by the
    #: statically computed (phase, depth) pairs; "dynamic_depth" recomputes
    #: depths by traversing the DFG at runtime)
    scheduler: str = "inline_depth"
    #: coalesce host->device parameter/input transfers
    batch_memcpy: bool = True
    #: extra consistency checks (shared-argument equality, dependency order)
    validate: bool = False


@dataclass
class RunStats:
    """Per-run breakdown used by the experiment harness (Table 6 et al.)."""

    host_ms: Dict[str, float] = field(default_factory=dict)
    device: Dict[str, float] = field(default_factory=dict)
    num_dfg_nodes: int = 0
    num_batches: int = 0
    batch_size: int = 0
    sync_rounds: int = 0

    @property
    def host_total_ms(self) -> float:
        return sum(self.host_ms.values())

    @property
    def device_total_ms(self) -> float:
        return self.device.get("total_device_us", 0.0) / 1e3

    @property
    def api_time_ms(self) -> float:
        return self.device.get("api_time_us", 0.0) / 1e3

    @property
    def latency_ms(self) -> float:
        """End-to-end latency estimate: real host time plus simulated device
        time (the CPU-side CUDA API time is part of the device counters)."""
        return self.host_total_ms + self.device_total_ms + self.api_time_ms

    @property
    def kernel_calls(self) -> int:
        return int(
            self.device.get("num_kernel_launches", 0)
            + self.device.get("num_gather_launches", 0)
        )

    def summary(self) -> Dict[str, float]:
        out = {
            "latency_ms": self.latency_ms,
            "host_ms": self.host_total_ms,
            "device_ms": self.device_total_ms,
            "api_ms": self.api_time_ms,
            "dfg_nodes": self.num_dfg_nodes,
            "kernel_calls": self.kernel_calls,
            "batches": self.num_batches,
        }
        out.update({f"host_{k}_ms": v for k, v in self.host_ms.items()})
        out.update(self.device)
        return out


class AcrobatRuntime:
    """Lazy auto-batching runtime driving batched block kernels."""

    def __init__(
        self,
        kernels: Dict[int, BlockKernel],
        options: Optional[ExecutionOptions] = None,
        device: Optional[DeviceSimulator] = None,
        profiler: Optional[ActivityProfiler] = None,
        scheduler: Optional[Any] = None,
    ) -> None:
        self.kernels = kernels
        self.options = options or ExecutionOptions()
        self.device = device or DeviceSimulator()
        self.profiler = profiler or ActivityProfiler()
        self._pending: List[DFGNode] = []
        if scheduler is None:
            # resolved through the engine-layer policy registry so that even
            # directly constructed runtimes select schedulers by name; this
            # fallback cannot forward policy-specific arguments (improvements,
            # kind, ...) — parameterized policies must be resolved by the
            # ExecutionEngine, which passes policy_args and hands the
            # scheduler instance in here
            from ..engine.registry import make_scheduler

            scheduler = make_scheduler(
                self.options.scheduler, kernels=kernels, options=self.options
            )
        self._scheduler = scheduler
        self.current_instance = 0
        self.num_nodes_total = 0
        self.num_batches_total = 0
        self.sync_rounds = 0

    # -- API called by generated code / VM ------------------------------------
    def invoke(self, block_id: int, depth: int, phase: int, args: Sequence[Any]) -> Any:
        """Record one block invocation; returns its lazy output(s)."""
        kernel = self.kernels[block_id]
        node = DFGNode(
            block_id=block_id,
            args=args,
            depth=depth,
            phase=phase,
            instance_id=self.current_instance,
            num_outputs=kernel.block.num_outputs,
        )
        self._pending.append(node)
        self.num_nodes_total += 1
        outs = node.outputs
        return outs[0] if len(outs) == 1 else tuple(outs)

    @staticmethod
    def read(value: Any) -> np.ndarray:
        """Concrete array behind ``value`` (lazy or already concrete)."""
        if isinstance(value, LazyTensor):
            return value.value
        return np.asarray(value)

    def item(self, value: Any, index: int = 0) -> float:
        """Host read of one scalar out of a (materialized) tensor."""
        return float(np.asarray(self.read(value)).reshape(-1)[index])

    def item_int(self, value: Any, index: int = 0) -> int:
        return int(np.asarray(self.read(value)).reshape(-1)[index])

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- execution -------------------------------------------------------------
    def trigger(self) -> None:
        """Schedule and execute all pending DFG nodes.

        Every non-empty trigger is one synchronization round (a DFG flush);
        the count is reported in :attr:`RunStats.sync_rounds`, so callers no
        longer thread fiber-round counts through :meth:`collect_stats`.
        """
        if not self._pending:
            return
        nodes = self._pending
        self._pending = []
        self.sync_rounds += 1

        sched_start = time.perf_counter()
        batches = self._scheduler.schedule(nodes)
        self.profiler.add("scheduling", time.perf_counter() - sched_start)

        for batch in batches:
            self._execute_batch(batch)
        self.num_batches_total += len(batches)
        self.profiler.bump("num_batches", len(batches))

    def _execute_batch(self, batch: ScheduledBatch) -> None:
        kernel = self.kernels[batch.block_id]
        block = kernel.block
        nodes = batch.nodes
        batch_size = len(nodes)

        dispatch_start = time.perf_counter()
        args: List[Any] = []
        scattered_mask: List[bool] = []
        validate = self.options.validate

        for inp in block.inputs:
            if inp.shared:
                first = nodes[0].args[inp.index]
                value = self.read(first)
                if validate:
                    for other in nodes[1:]:
                        ov = self.read(other.args[inp.index])
                        if not np.array_equal(np.asarray(ov), np.asarray(value)):
                            raise RuntimeError(
                                f"block {block.name}: input {inp.name} marked shared but "
                                f"differs across batched nodes"
                            )
                if not isinstance(first, LazyTensor):
                    self.device.ensure_resident(value, self.options.batch_memcpy)
                args.append(value)
                scattered_mask.append(False)
            else:
                values = []
                contiguous = True
                prev_region, prev_offset = None, None
                for node in nodes:
                    arg = node.args[inp.index]
                    if isinstance(arg, LazyTensor):
                        values.append(arg.value)
                        if prev_region is None:
                            prev_region, prev_offset = arg.storage_region, arg.storage_offset
                        else:
                            if (
                                arg.storage_region != prev_region
                                or arg.storage_offset != prev_offset + 1
                            ):
                                contiguous = False
                            prev_region, prev_offset = arg.storage_region, arg.storage_offset
                    else:
                        arr = np.asarray(arg)
                        self.device.ensure_resident(arr, self.options.batch_memcpy)
                        values.append(arr)
                        contiguous = False
                if batch_size == 1:
                    contiguous = True
                scattered = not contiguous
                if scattered and not self.options.gather_fusion:
                    total_bytes = float(sum(v.nbytes for v in values))
                    self.device.gather(total_bytes)
                    scattered = False  # explicit gather made it contiguous
                args.append(values)
                scattered_mask.append(scattered)
        self.profiler.add("dispatch", time.perf_counter() - dispatch_start)

        compute_start = time.perf_counter()
        outputs, launches = kernel.execute_batched(args, batch_size, scattered_mask)
        self.profiler.add("numpy_compute", time.perf_counter() - compute_start)

        for record in launches:
            self.device.launch(record, gather_fused=self.options.gather_fusion)

        store_start = time.perf_counter()
        for k in range(block.num_outputs):
            region = new_storage_region()
            per_instance = outputs[k]
            for b, node in enumerate(nodes):
                node.outputs[k].materialize(per_instance[b], region, b)
        for node in nodes:
            node.executed = True
        self.profiler.add("dispatch", time.perf_counter() - store_start)

    # -- bookkeeping -------------------------------------------------------------
    def collect_stats(self, batch_size: int) -> RunStats:
        """Snapshot the profiler and device counters into a :class:`RunStats`.

        Synchronization rounds are accounted by :meth:`trigger` itself.
        """
        host_ms = {
            "dfg_construction": self.profiler.ms("dfg_construction"),
            "scheduling": self.profiler.ms("scheduling"),
            "dispatch": self.profiler.ms("dispatch"),
        }
        return RunStats(
            host_ms=host_ms,
            device=self.device.counters.as_dict(),
            num_dfg_nodes=self.num_nodes_total,
            num_batches=self.num_batches_total,
            batch_size=batch_size,
            sync_rounds=self.sync_rounds,
        )

    def reset(self) -> None:
        """Clear per-run state (keeps kernels, device schedule table)."""
        self._pending = []
        self.current_instance = 0
        self.num_nodes_total = 0
        self.num_batches_total = 0
        self.sync_rounds = 0
        self.profiler.reset()
        self.device.reset()
        self.device.reset_residency()
