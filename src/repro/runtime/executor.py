"""The ACROBAT runtime: lazy DFG construction and batched execution.

The AOT-compiled program (or the VM) calls :meth:`AcrobatRuntime.invoke` for
every static-block invocation; the runtime records a DFG node and hands back
lazy tensors.  :meth:`AcrobatRuntime.trigger` schedules the pending nodes,
hands the scheduled batches to the memory planner
(:class:`~repro.memory.planner.MemoryPlanner`) — which classifies every
operand as contiguous-reuse / explicit-gather / fused-gather and places every
output in a storage arena ahead of execution — then resolves each plan
against the device simulator, runs the batched NumPy kernels and commits the
outputs into arenas.

Host-side work (graph construction, scheduling, memory planning, operand
dispatch, output materialization) is measured as real wall-clock time;
device-side work is charged to the
:class:`~repro.runtime.device.DeviceSimulator`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..kernels.batched import BlockKernel
from ..memory.planner import BatchPlan, MemoryPlanner
from ..specialize.cache import BUILD as _SPEC_BUILD
from .device import DeviceSimulator
from .profiler import ActivityProfiler
from .scheduler import ScheduledBatch
from .tensor import DFGNode, LazyTensor


@dataclass
class ExecutionOptions:
    """Runtime-facing switches (a subset of the compiler options)."""

    #: fuse the memory gather into batched kernels (§5.2); when off, scattered
    #: operands are first copied into contiguous buffers by explicit gather
    #: kernels, as DyNet does
    gather_fusion: bool = True
    #: scheduler-policy name, resolved through the registry in
    #: :mod:`repro.engine.registry` ("inline_depth" schedules by the
    #: statically computed (phase, depth) pairs; "dynamic_depth" recomputes
    #: depths by traversing the DFG at runtime)
    scheduler: str = "inline_depth"
    #: extra keyword arguments forwarded to the scheduler-policy factory
    #: (e.g. ``{"kind": "depth"}`` for the "dynet" policy), so parameterized
    #: policies work even when the runtime resolves its own scheduler
    scheduler_args: Dict[str, Any] = field(default_factory=dict)
    #: placement-policy name, resolved through the registry in
    #: :mod:`repro.devices.placement` ("single", "round_robin",
    #: "data_parallel"); None keeps every batch on the primary device.
    #: Only meaningful when the runtime's device is a
    #: :class:`~repro.devices.group.DeviceGroup` with more than one member.
    placement: Optional[str] = None
    #: extra keyword arguments forwarded to the placement-policy factory
    placement_args: Dict[str, Any] = field(default_factory=dict)
    #: coalesce host->device parameter/input transfers
    batch_memcpy: bool = True
    #: cache memory plans across structurally identical rounds (serving
    #: sessions flush similar request batches repeatedly; see
    #: :class:`~repro.memory.planner.MemoryPlanner`)
    plan_cache: bool = True
    #: shape-keyed kernel specialization: JIT a frozen dispatch path for
    #: recurring ``(block, batch_size, operand-layout, device)`` fingerprints
    #: (see :mod:`repro.specialize`).  Mirrors ``plan_cache``: the tier
    #: exists only when both knobs are on, and stays dormant until a
    #: repeat-heavy caller arms it (sessions do, the way they arm
    #: ``expect_repeats``).  Incompatible with ``validate`` (the generic
    #: path's per-launch shared-equality checks are the point of validate).
    specialize: bool = True
    #: launches of one fingerprint before it promotes to a specialized entry
    specialize_threshold: int = 3
    #: re-run the NumPy oracle after every specialized launch and fail on
    #: any divergence (debugging aid)
    specialize_crosscheck: bool = False
    #: extra consistency checks (shared-argument equality, dependency order)
    validate: bool = False


@dataclass
class RunStats:
    """Per-run breakdown used by the experiment harness (Table 6 et al.)."""

    host_ms: Dict[str, float] = field(default_factory=dict)
    device: Dict[str, float] = field(default_factory=dict)
    #: memory-planner operand classification counts (contiguous / gather /
    #: fused_gather / peer / shared) plus plan-cache accounting
    #: (``plan_cache_hits`` / ``plan_cache_misses`` /
    #: ``plan_cache_evictions``, cumulative over the runtime's lifetime)
    memory: Dict[str, int] = field(default_factory=dict)
    #: kernel-specialization tier accounting (promotions / demotions / hits /
    #: misses / unsupported / entries / frozen_bytes, cumulative); empty when
    #: the tier is off
    specialize: Dict[str, float] = field(default_factory=dict)
    #: per-device counter breakdown when the runtime drives a
    #: :class:`~repro.devices.group.DeviceGroup` (one dict per member, with
    #: a ``device`` index key); empty for a standalone device, whose
    #: aggregate ``device`` dict *is* the single device's counters
    per_device: List[Dict[str, float]] = field(default_factory=list)
    num_dfg_nodes: int = 0
    num_batches: int = 0
    batch_size: int = 0
    sync_rounds: int = 0
    #: serving-clock timestamp at which the run's flush started (seconds on
    #: the session's :class:`~repro.serve.clock.Clock`; 0.0 outside sessions)
    flushed_at: float = 0.0
    #: what triggered the flush ("size", "deadline", "adaptive", "manual";
    #: empty outside sessions)
    flush_reason: str = ""
    #: fraction of this round's prepare-pipeline host work that was hidden
    #: behind the previous round's device time (0.0 when the round was not
    #: prepared ahead, 1.0 when preparation finished entirely under device
    #: execution); set by serving sessions with the overlap pipeline on
    overlap_ratio: float = 0.0

    @property
    def host_total_ms(self) -> float:
        return sum(self.host_ms.values())

    @property
    def device_total_ms(self) -> float:
        """Elapsed device time: on a device group, members execute a round
        concurrently, so the round takes as long as its busiest member
        (``elapsed_device_us``); on a single device elapsed equals total."""
        device = self.device
        if "elapsed_device_us" in device:
            return device["elapsed_device_us"] / 1e3
        return device.get("total_device_us", 0.0) / 1e3

    @property
    def device_work_ms(self) -> float:
        """Total device work performed (summed across the group's members)."""
        return self.device.get("total_device_us", 0.0) / 1e3

    @property
    def api_time_ms(self) -> float:
        return self.device.get("api_time_us", 0.0) / 1e3

    @property
    def latency_ms(self) -> float:
        """End-to-end latency estimate: real host time plus simulated device
        time (the CPU-side CUDA API time is part of the device counters)."""
        return self.host_total_ms + self.device_total_ms + self.api_time_ms

    @property
    def kernel_calls(self) -> int:
        return int(
            self.device.get("num_kernel_launches", 0)
            + self.device.get("num_gather_launches", 0)
        )

    def summary(self) -> Dict[str, float]:
        out = {
            "latency_ms": self.latency_ms,
            "host_ms": self.host_total_ms,
            "device_ms": self.device_total_ms,
            "api_ms": self.api_time_ms,
            "dfg_nodes": self.num_dfg_nodes,
            "kernel_calls": self.kernel_calls,
            "batches": self.num_batches,
        }
        out.update({f"host_{k}_ms": v for k, v in self.host_ms.items()})
        out.update(
            {
                (
                    f"mem_{k}"
                    if k.startswith(("plan_cache", "partial"))
                    else f"mem_{k}_operands"
                ): v
                for k, v in self.memory.items()
            }
        )
        out.update({f"spec_{k}": v for k, v in self.specialize.items()})
        out.update(self.device)
        if self.per_device:
            out["num_devices"] = len(self.per_device)
        if self.overlap_ratio:
            out["overlap_ratio"] = self.overlap_ratio
        return out


class PreparedRound:
    """A ready-to-launch round built ahead of its flush.

    Holds everything :meth:`AcrobatRuntime.trigger` would otherwise derive
    at flush time — the snapshot of pending nodes it was built from, their
    scheduled/placed batches, and fully instantiated ``BatchPlan``s — plus
    the *deferred* side effects (the planner's
    :class:`~repro.memory.planner.StagedRound` and the placement policy's
    pre-speculation state snapshot) that make abandoning it free.  A
    prepared round adopts only when its node snapshot still equals the
    runtime's pending list *by identity*; any admission divergence makes it
    worthless and it is abandoned, restoring placement state and dropping
    the staged planner mutations on the floor.
    """

    __slots__ = ("nodes", "batches", "plans", "staged", "placement_state", "prepare_s")

    def __init__(self, nodes, batches, plans, staged, placement_state, prepare_s):
        self.nodes: List[DFGNode] = nodes
        self.batches: List[ScheduledBatch] = batches
        self.plans: List[BatchPlan] = plans
        self.staged = staged
        self.placement_state = placement_state
        self.prepare_s: float = prepare_s


class AcrobatRuntime:
    """Lazy auto-batching runtime driving batched block kernels."""

    def __init__(
        self,
        kernels: Dict[int, BlockKernel],
        options: Optional[ExecutionOptions] = None,
        device: Optional[DeviceSimulator] = None,
        profiler: Optional[ActivityProfiler] = None,
        scheduler: Optional[Any] = None,
        placement: Optional[Any] = None,
    ) -> None:
        self.kernels = kernels
        self.options = options or ExecutionOptions()
        #: the accelerator this runtime charges: a single
        #: :class:`~repro.runtime.device.DeviceSimulator` or a
        #: :class:`~repro.devices.group.DeviceGroup` (both satisfy the
        #: :class:`~repro.devices.device.Device` protocol)
        self.device = device or DeviceSimulator()
        self.profiler = profiler or ActivityProfiler()
        self.planner = MemoryPlanner(
            gather_fusion=self.options.gather_fusion,
            plan_cache=self.options.plan_cache,
        )
        #: the kernel-specialization tier (see :mod:`repro.specialize`);
        #: exists only when both `specialize` and `plan_cache` are on —
        #: fingerprints *are* plan-cache slots — and never under `validate`,
        #: whose per-launch checks live on the generic path by design
        self._specializer = None
        if (
            self.options.specialize
            and self.options.plan_cache
            and not self.options.validate
        ):
            from ..specialize.cache import SpecializationCache

            self._specializer = SpecializationCache(
                threshold=self.options.specialize_threshold,
                crosscheck=self.options.specialize_crosscheck,
            )
            self.planner.attach_specializer(self._specializer)
        self._pending: List[DFGNode] = []
        if scheduler is None:
            # resolved through the engine-layer policy registry so that even
            # directly constructed runtimes select schedulers by name;
            # policy-specific arguments come from options.scheduler_args
            from ..engine.registry import make_scheduler

            scheduler = make_scheduler(
                self.options.scheduler,
                kernels=kernels,
                options=self.options,
                **self.options.scheduler_args,
            )
        self._scheduler = scheduler
        if placement is None and self.options.placement is not None:
            from ..devices.placement import make_placement

            placement = make_placement(
                self.options.placement, **self.options.placement_args
            )
        elif placement is not None:
            # placement instances carry per-runtime rotation/EWMA state: a
            # second runtime sharing one would rotate the first's split
            # base mid-run (misaligning its chains) and pollute its learned
            # work — bind each instance to exactly one runtime
            if getattr(placement, "_bound_runtime", None) is not None:
                raise ValueError(
                    "placement policy instances are stateful and belong to "
                    "exactly one runtime/engine; pass the registry name "
                    "(e.g. placement='data_parallel') to get a fresh "
                    "instance per engine"
                )
            placement._bound_runtime = id(self)
        #: placement policy assigning scheduled batches to group devices
        #: (None: every batch stays on the primary device)
        self._placement = placement
        self.current_instance = 0
        self.num_nodes_total = 0
        self.num_batches_total = 0
        self.sync_rounds = 0
        self._round_seq = 0

    # -- API called by generated code / VM ------------------------------------
    def invoke(self, block_id: int, depth: int, phase: int, args: Sequence[Any]) -> Any:
        """Record one block invocation; returns its lazy output(s)."""
        kernel = self.kernels[block_id]
        node = DFGNode(
            block_id=block_id,
            args=args,
            depth=depth,
            phase=phase,
            instance_id=self.current_instance,
            num_outputs=kernel.block.num_outputs,
        )
        node.round_seq = self._round_seq
        self._round_seq += 1
        self._pending.append(node)
        self.num_nodes_total += 1
        outs = node.outputs
        return outs[0] if len(outs) == 1 else tuple(outs)

    @staticmethod
    def read(value: Any) -> np.ndarray:
        """Concrete array behind ``value`` (lazy or already concrete)."""
        if isinstance(value, LazyTensor):
            return value.value
        return np.asarray(value)

    def item(self, value: Any, index: int = 0) -> float:
        """Host read of one scalar out of a (materialized) tensor."""
        return float(np.asarray(self.read(value)).reshape(-1)[index])

    def item_int(self, value: Any, index: int = 0) -> int:
        return int(np.asarray(self.read(value)).reshape(-1)[index])

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- execution -------------------------------------------------------------
    def trigger(
        self,
        prepared: Optional[PreparedRound] = None,
        limit: Optional[int] = None,
    ) -> bool:
        """Schedule, memory-plan and execute pending DFG nodes.

        Every non-empty trigger is one synchronization round (a DFG flush);
        the count is reported in :attr:`RunStats.sync_rounds`, so callers no
        longer thread fiber-round counts through :meth:`collect_stats`.

        ``limit`` executes only the *oldest* ``limit`` pending nodes (the
        caller picks a request boundary — see the flush policies' round
        cap); the remaining nodes stay pending as the next round's prefix,
        their lazy outputs untouched.

        When a :class:`PreparedRound` (built earlier by
        :meth:`prepare_pending`, possibly speculatively) is passed and its
        node snapshot still matches the nodes this trigger executes, the
        round *adopts* it: schedule/placement/planning are skipped, the
        staged planner mutations commit, and the already-timed prepare work
        lands in the ``prepare`` profiler bucket instead.  A stale prepared
        round is abandoned (placement state restored, staged mutations
        dropped) and the trigger falls back to the normal path —
        mis-speculation costs only the wasted host work, never correctness.
        Returns True when the prepared round was adopted.
        """
        if not self._pending:
            if prepared is not None:
                self.abandon_prepared(prepared)
            return False
        if limit is not None and 0 < limit < len(self._pending):
            nodes = self._pending[:limit]
            self._pending = self._pending[limit:]
            # leftover nodes keep their round_seq ordering; new invokes
            # keep appending monotonically after them
        else:
            nodes = self._pending
            self._pending = []
            self._round_seq = 0
        if prepared is not None and prepared.nodes != nodes:
            self.abandon_prepared(prepared)
            prepared = None
        self.sync_rounds += 1

        if prepared is not None:
            commit_start = time.perf_counter()
            self.planner.commit_staged(prepared.staged)
            self.profiler.add(
                "prepare", prepared.prepare_s + (time.perf_counter() - commit_start)
            )
            batches, plans = prepared.batches, prepared.plans
        else:
            sched_start = time.perf_counter()
            batches = self._scheduler.schedule(nodes)
            self.profiler.add("scheduling", time.perf_counter() - sched_start)

            if self._placement is not None:
                place_start = time.perf_counter()
                batches = self._placement.place_round(
                    batches, self.device, self.kernels
                )
                self.profiler.add("placement", time.perf_counter() - place_start)

            plan_start = time.perf_counter()
            plans = self.planner.plan_round(batches, self.kernels)
            self.profiler.add("memory_planning", time.perf_counter() - plan_start)

        for plan in plans:
            self._execute_batch(plan)
        self.num_batches_total += len(batches)
        self.profiler.bump("num_batches", len(batches))
        return prepared is not None

    def drop_pending_slice(self, start: int, end: int) -> None:
        """Withdraw a contiguous slice of pending (unexecuted) DFG nodes —
        the removal path for a cancelled request whose nodes were recorded
        but whose round has not flushed.  Callers must pass whole-request
        boundaries (the session's node offsets); the ``round_seq`` gap the
        removal leaves behind only perturbs plan-cache signatures for this
        one round, never correctness."""
        del self._pending[start:end]
        self.num_nodes_total = len(self._pending)

    def finish_partial_round(self) -> None:
        """Round boundary after a capped trigger left nodes pending: reset
        the per-round collectors exactly as the next round's
        :meth:`reset` would, but keep the live lazy graph — the leftover
        nodes are the next round's oldest requests."""
        self.num_nodes_total = len(self._pending)
        self.num_batches_total = 0
        self.sync_rounds = 0
        self.profiler.reset()
        self.planner.reset()
        if self._placement is not None:
            self._placement.note_reset()

    # -- prepare pipeline ------------------------------------------------------
    def prepare_pending(self, limit: Optional[int] = None) -> Optional[PreparedRound]:
        """Build a :class:`PreparedRound` from the current pending nodes
        without committing anything.

        Runs the full host pipeline — schedule, placement, memory planning —
        against a snapshot of the pending list, but defers every state
        mutation: the planner stages (``plan_round_staged``), and the
        placement policy's rotation state is snapshotted for rollback.  The
        DFG nodes themselves are shared with the runtime (building them was
        already paid for at ``invoke`` time), which is also what makes the
        adoption check exact: identity of the node lists.

        Safe to call from a second host thread while the previous round's
        *device* share is in flight — by construction nothing here touches
        the device simulator, the specialization tier, or any cumulative
        counter.  The caller must not interleave it with ``invoke``/
        ``trigger`` on the same runtime (serving loops serialize via their
        own synchronization).

        ``limit`` prepares only the oldest ``limit`` pending nodes — the
        composition a round-capped flush would execute (see
        :meth:`trigger`).
        """
        if not self._pending:
            return None
        if limit is not None and 0 < limit < len(self._pending):
            nodes = self._pending[:limit]
        else:
            nodes = list(self._pending)
        start = time.perf_counter()
        batches = self._scheduler.schedule(nodes)
        placement_state = None
        if self._placement is not None:
            placement_state = self._placement.snapshot_state()
            batches = self._placement.place_round(batches, self.device, self.kernels)
        plans, staged = self.planner.plan_round_staged(batches, self.kernels)
        prepare_s = time.perf_counter() - start
        return PreparedRound(nodes, batches, plans, staged, placement_state, prepare_s)

    def prepared_matches(
        self, prepared: PreparedRound, limit: Optional[int] = None
    ) -> bool:
        """True when the prepared round still describes exactly the nodes
        the next flush would execute (list identity: same objects, same
        order).  With a round cap (``limit``) that is the oldest-``limit``
        prefix — later admissions append *behind* it, so a prepared prefix
        survives arrival churn."""
        if limit is not None and 0 < limit < len(self._pending):
            pending = self._pending[:limit]
        else:
            pending = self._pending
        return prepared.nodes == pending

    def abandon_prepared(self, prepared: PreparedRound) -> None:
        """Discard a prepared round: restore the placement policy's state
        and drop the staged planner mutations.  After this, the runtime is
        observably identical to one that never speculated."""
        if self._placement is not None and prepared.placement_state is not None:
            self._placement.restore_state(prepared.placement_state)

    def arm_specialization(self) -> None:
        """Arm the kernel-specialization tier (idempotent, a no-op when the
        tier is off).  Sessions call this at construction, exactly as they
        arm the planner via ``expect_repeats``; one-shot runs never pay for
        promotion tracking they cannot amortize."""
        if self._specializer is not None:
            self._specializer.arm()

    @property
    def specializer(self):
        """The specialization cache (None when the tier is off)."""
        return self._specializer

    def _execute_batch(self, plan: BatchPlan) -> None:
        batch: ScheduledBatch = plan.batch
        kernel = self.kernels[batch.block_id]
        batch_size = len(batch.nodes)

        # -- specialization tier: promoted fingerprints dispatch through a
        # frozen entry; the promoting launch itself still runs the oracle
        spec = self._specializer
        entry = None
        build = False
        slot = plan.spec_slot
        if spec is not None and slot is not None and spec.armed:
            verdict = spec.poll(slot)
            if verdict is _SPEC_BUILD:
                build = True
            elif verdict is not None:
                entry = verdict

        if entry is not None:
            dispatch_start = time.perf_counter()
            operands = entry.try_resolve(plan, self.device, self.options)
            self.profiler.add("dispatch", time.perf_counter() - dispatch_start)
            if operands is None:
                # an invariant broke: demote permanently and fall back to the
                # generic path.  Checks run strictly before charging, so the
                # device simulator is untouched and the fallback re-charges
                # from zero.
                spec.demote(slot)
                entry = None

        if entry is None:
            dispatch_start = time.perf_counter()
            operands = self.planner.resolve(plan, kernel, self.device, self.options)
            self.profiler.add("dispatch", time.perf_counter() - dispatch_start)

            compute_start = time.perf_counter()
            outputs, launches = kernel.execute_batched(operands, batch_size)
            self.profiler.add("numpy_compute", time.perf_counter() - compute_start)

            if build:
                # freeze the specialized entry from this very oracle launch:
                # promotion never installs a path that has not just executed
                build_start = time.perf_counter()
                spec.build_and_install(
                    slot, plan, kernel, operands, outputs, launches, self.options
                )
                self.profiler.add("specialize", time.perf_counter() - build_start)
        else:
            compute_start = time.perf_counter()
            outputs = entry.execute(operands)
            launches = entry.launches
            self.profiler.add("numpy_compute", time.perf_counter() - compute_start)
            spec.note_hit()
            if spec.crosscheck:
                check_start = time.perf_counter()
                entry.crosscheck(kernel, operands, outputs, launches)
                self.profiler.add("specialize", time.perf_counter() - check_start)

        # launches land on the member device the placement policy chose
        local = self.device.device_for(plan.device)
        tp = getattr(batch, "tp_devices", None)
        launch_us = 0.0
        if tp is not None and len(tp) > 1:
            # tensor-parallel batch: every member runs a 1/k-scaled shard of
            # each launch record concurrently (the batch's elapsed time is
            # its slowest shard), then the remote members ship their output
            # partials to the home device as peer-priced gathers.  The NumPy
            # kernel already executed once, unsharded — sharding is purely a
            # cost-model transform — so the observation fed back below is
            # the *unsharded* cost and the split decision stays stable.
            k = len(tp)
            observe_us = 0.0
            for record in launches:
                shard = replace(
                    record,
                    flops=record.flops / k,
                    bytes_read=record.bytes_read / k,
                    bytes_written=record.bytes_written / k,
                    scattered_bytes=record.scattered_bytes / k,
                )
                launch_us += max(
                    self.device.device_for(member).launch(
                        shard, gather_fused=self.options.gather_fusion
                    )
                    for member in tp
                )
                observe_us += local.kernel_time_us(
                    record, self.options.gather_fusion
                )
            for out, _arena_id in zip(outputs, plan.output_arena_ids):
                nbytes = float(np.asarray(out.array).nbytes)
                for member in tp:
                    if member != plan.device:
                        self.device.peer_transfer(member, plan.device, nbytes / k)
            self.planner.partial_arenas += len(plan.output_arena_ids)
        else:
            for record in launches:
                launch_us += local.launch(
                    record, gather_fused=self.options.gather_fusion
                )
            observe_us = launch_us
        if self._placement is not None:
            # feed observed device cost back so adaptive placements learn
            # per-block work (static byte estimates miss compute-bound time)
            self._placement.observe(
                batch.block_id,
                batch_size,
                observe_us,
                len(launches),
                local.spec,
                bytes_written=sum(record.bytes_written for record in launches),
            )

        store_start = time.perf_counter()
        if entry is not None:
            entry.commit(plan, outputs, self.device)
        else:
            self.planner.commit(plan, outputs, self.device)
        self.profiler.add("materialize", time.perf_counter() - store_start)

    # -- bookkeeping -------------------------------------------------------------
    def collect_stats(self, batch_size: int) -> RunStats:
        """Snapshot the profiler and device counters into a :class:`RunStats`.

        Synchronization rounds are accounted by :meth:`trigger` itself.
        """
        host_ms = {
            "dfg_construction": self.profiler.ms("dfg_construction"),
            "scheduling": self.profiler.ms("scheduling"),
            "memory_planning": self.profiler.ms("memory_planning"),
            "dispatch": self.profiler.ms("dispatch"),
            "materialize": self.profiler.ms("materialize"),
        }
        if self._placement is not None:
            # the placement bucket exists only when a policy is active, so
            # single-device breakdowns keep their historical shape
            host_ms["placement"] = self.profiler.ms("placement")
        prepare = self.profiler.ms("prepare")
        if prepare:
            # pipelined host work (schedule+placement+planning done ahead of
            # the flush); the bucket exists only when rounds actually adopt
            # prepared work, so non-pipelined breakdowns keep their shape
            host_ms["prepare"] = prepare
        if self._specializer is not None and self._specializer.armed:
            # promotion (entry freezing / cross-checking) time; like
            # placement, the bucket exists only when the tier is active
            host_ms["specialize"] = self.profiler.ms("specialize")
        memory = dict(self.planner.operand_counts)
        memory["plan_cache_hits"] = self.planner.cache_hits
        memory["plan_cache_misses"] = self.planner.cache_misses
        memory["plan_cache_evictions"] = self.planner.cache_evictions
        if self.planner.partial_arenas:
            # partial-output arenas born from tensor-parallel launches (the
            # key exists only when the policy actually split something, so
            # non-TP breakdowns keep their historical shape)
            memory["partial_arenas"] = self.planner.partial_arenas
        device = self.device.counters_dict()
        per_device = self.device.per_device_dicts()
        if (
            per_device
            and "elapsed_device_us" in device
            and getattr(self._placement, "timeline_mode", None) == "staged"
        ):
            # a depth-staged round runs its stages *sequentially* (stage s+1
            # consumes stage s's outputs), so its elapsed device time is the
            # members' busy sum, not the busiest member; the cross-round
            # overlap a staged placement buys is the serving timeline's job
            # (per-device lanes), never this counter's
            device["elapsed_device_us"] = sum(
                d.get("total_device_us", 0.0) for d in per_device
            )
        return RunStats(
            host_ms=host_ms,
            device=device,
            per_device=per_device,
            memory=memory,
            specialize=(
                self._specializer.stats_dict()
                if self._specializer is not None
                else {}
            ),
            num_dfg_nodes=self.num_nodes_total,
            num_batches=self.num_batches_total,
            batch_size=batch_size,
            sync_rounds=self.sync_rounds,
        )

    def reset(self, release_residency: bool = True) -> None:
        """Clear per-run state (keeps kernels, device schedule table).

        ``release_residency=False`` keeps the device's residency cache —
        parameters (and arenas) uploaded in earlier rounds stay resident, as
        they do for a persistent serving session.
        """
        self._pending = []
        self._round_seq = 0
        self.current_instance = 0
        self.num_nodes_total = 0
        self.num_batches_total = 0
        self.sync_rounds = 0
        self.profiler.reset()
        self.planner.reset()
        self.device.reset()
        if self._placement is not None:
            # run boundary: placement policies rotate here, not between a
            # run's sync rounds (keeps fiber chains device-aligned)
            self._placement.note_reset()
        if release_residency:
            self.device.reset_residency()
