"""Analytical GPU device simulator.

The paper evaluates on an Nvidia RTX 3070.  We cannot run CUDA here, so the
device side of every backend (ACROBAT, DyNet, eager, Cortex, VM) is charged
against the same analytical roofline model while NumPy produces the actual
numbers.  The model captures exactly the effects the paper's evaluation
hinges on:

* a fixed **launch overhead** per kernel, so launching fewer, larger batched
  kernels wins (auto-batching, fusion, grain-size coarsening);
* **memory-bandwidth-bound** execution for the small operators dominating
  these models, so fusion (which avoids round-tripping intermediates) and
  gather fusion (which avoids an extra copy of scattered operands) matter;
* **PCIe transfer costs** for host→device parameter/input uploads, so
  batching memory transfers matters;
* a CPU-side **API overhead** per launch/copy, reported as "CUDA API time"
  in Table 6.

Host-side time (DFG construction, scheduling) is *not* simulated — it is
measured as real Python wall-clock by :mod:`repro.runtime.profiler`.

A standalone :class:`DeviceSimulator` is also the degenerate one-member
case of the multi-device surface in :mod:`repro.devices`: it exposes the
same :class:`~repro.devices.device.Device` protocol a
:class:`~repro.devices.group.DeviceGroup` does (``device_for``,
``peer_transfer``, ``counters_dict``...), so every layer above charges
devices uniformly whether there is one or many.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

from ..kernels.batched import LaunchRecord
from ..memory.arena import StorageArena


@dataclass
class GPUSpec:
    """Parameters of the simulated accelerator (RTX-3070-class defaults)."""

    name: str = "simulated-rtx3070"
    #: device-side latency charged per kernel launch (microseconds)
    launch_overhead_us: float = 5.0
    #: CPU-side CUDA API cost per launch (microseconds)
    api_overhead_us: float = 4.0
    #: device memory bandwidth (GB/s)
    mem_bandwidth_gbps: float = 380.0
    #: peak fp32 throughput (GFLOP/s)
    peak_gflops: float = 9000.0
    #: host<->device transfer bandwidth (GB/s)
    pcie_bandwidth_gbps: float = 11.0
    #: per-transfer overhead (microseconds)
    memcpy_overhead_us: float = 7.0
    #: extra cost factor for reading scattered (gather-fused) operands
    scattered_read_penalty: float = 1.35
    #: FLOPs needed to fully occupy the device; smaller launches run at a
    #: proportionally lower efficiency (they cannot fill all SMs)
    saturation_flops: float = 2.0e6
    #: floor on achievable efficiency for tiny kernels
    min_utilization: float = 0.03

    def __post_init__(self) -> None:
        for field_name in (
            "launch_overhead_us",
            "api_overhead_us",
            "mem_bandwidth_gbps",
            "peak_gflops",
            "pcie_bandwidth_gbps",
            "saturation_flops",
        ):
            value = getattr(self, field_name)
            if not value > 0:
                raise ValueError(f"GPUSpec.{field_name} must be positive, got {value!r}")
        if self.memcpy_overhead_us < 0:
            raise ValueError("GPUSpec.memcpy_overhead_us must be >= 0")
        if self.scattered_read_penalty < 1.0:
            raise ValueError("GPUSpec.scattered_read_penalty must be >= 1.0")
        if not 0.0 < self.min_utilization <= 1.0:
            raise ValueError("GPUSpec.min_utilization must be in (0, 1]")

    @classmethod
    def preset(cls, name: str, **overrides) -> "GPUSpec":
        """A named accelerator preset (``rtx3070``, ``a100``, ``laptop``),
        optionally with field overrides."""
        try:
            base = GPU_PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown GPU preset {name!r}; available presets: "
                f"{', '.join(sorted(GPU_PRESETS))}"
            ) from None
        # always a copy: specs are mutable dataclasses and the presets must
        # stay pristine however callers tweak their instances
        return replace(base, **overrides)

    @classmethod
    def available_presets(cls) -> Tuple[str, ...]:
        return tuple(sorted(GPU_PRESETS))


#: named accelerator presets.  ``rtx3070`` is the paper's evaluation card
#: (and this simulator's historical default); ``a100`` is a datacenter-class
#: part (HBM bandwidth, NVLink-era interconnect pairs well with it);
#: ``laptop`` is a bandwidth-starved mobile part where device time dominates
#: even at reduced scale — the sharding benchmark uses it so multi-device
#: scaling is measured in the regime where sharding actually matters.
GPU_PRESETS: Dict[str, GPUSpec] = {
    "rtx3070": GPUSpec(name="simulated-rtx3070"),
    "a100": GPUSpec(
        name="simulated-a100",
        launch_overhead_us=5.0,
        api_overhead_us=4.0,
        mem_bandwidth_gbps=1555.0,
        peak_gflops=19500.0,
        pcie_bandwidth_gbps=25.0,
        memcpy_overhead_us=7.0,
        saturation_flops=8.0e6,
        min_utilization=0.02,
    ),
    "laptop": GPUSpec(
        name="simulated-laptop",
        launch_overhead_us=8.0,
        api_overhead_us=6.0,
        mem_bandwidth_gbps=45.0,
        peak_gflops=1200.0,
        pcie_bandwidth_gbps=6.0,
        memcpy_overhead_us=10.0,
        saturation_flops=5.0e5,
        min_utilization=0.05,
    ),
}


@dataclass
class DeviceCounters:
    """Accumulated simulated device activity."""

    kernel_time_us: float = 0.0
    gather_time_us: float = 0.0
    memcpy_time_us: float = 0.0
    api_time_us: float = 0.0
    #: time spent receiving peer (device-to-device) transfers over the
    #: group's interconnect; zero on a standalone single device
    peer_time_us: float = 0.0
    num_kernel_launches: int = 0
    num_gather_launches: int = 0
    num_memcpy: int = 0
    num_peer_transfers: int = 0
    bytes_gathered: float = 0.0
    bytes_copied: float = 0.0
    bytes_peer: float = 0.0
    #: launches per kernel name (used by PGO to derive operator priorities)
    launches_by_kernel: Dict[str, int] = field(default_factory=dict)

    @property
    def total_device_us(self) -> float:
        """Total simulated device-side time."""
        return (
            self.kernel_time_us
            + self.gather_time_us
            + self.memcpy_time_us
            + self.peer_time_us
        )

    @property
    def total_launches(self) -> int:
        return self.num_kernel_launches + self.num_gather_launches

    def as_dict(self) -> Dict[str, float]:
        return {
            "kernel_time_us": self.kernel_time_us,
            "gather_time_us": self.gather_time_us,
            "memcpy_time_us": self.memcpy_time_us,
            "api_time_us": self.api_time_us,
            "peer_time_us": self.peer_time_us,
            "num_kernel_launches": self.num_kernel_launches,
            "num_gather_launches": self.num_gather_launches,
            "num_memcpy": self.num_memcpy,
            "num_peer_transfers": self.num_peer_transfers,
            "total_device_us": self.total_device_us,
        }

    @classmethod
    def merge(cls, parts: "List[DeviceCounters]") -> "DeviceCounters":
        """Element-wise sum of several devices' counters (group aggregation).

        Driven by the dataclass fields so new counters aggregate without
        touching this method: numeric fields sum, dict fields (the
        per-kernel launch tally) merge by key.
        """
        merged = cls()
        numeric = [
            f.name for f in fields(cls) if f.type in ("float", "int", float, int)
        ]
        for c in parts:
            for name in numeric:
                setattr(merged, name, getattr(merged, name) + getattr(c, name))
            for kernel_name, n in c.launches_by_kernel.items():
                merged.launches_by_kernel[kernel_name] = (
                    merged.launches_by_kernel.get(kernel_name, 0) + n
                )
        return merged


class DeviceSimulator:
    """Charges simulated time for kernel launches, gathers and transfers."""

    def __init__(
        self,
        spec: Optional[GPUSpec] = None,
        schedule_table: Optional[Dict[str, float]] = None,
        default_schedule_quality: float = 0.9,
        device_id: int = 0,
    ) -> None:
        if isinstance(spec, str):
            spec = GPUSpec.preset(spec)
        self.spec = spec or GPUSpec()
        #: index of this device within its :class:`~repro.devices.DeviceGroup`
        #: (0 for a standalone device)
        self.device_id = device_id
        #: per-kernel schedule quality in (0, 1]; produced by the
        #: auto-scheduler (§C.1), higher is better.
        self.schedule_table: Dict[str, float] = dict(schedule_table or {})
        self.default_schedule_quality = default_schedule_quality
        self.counters = DeviceCounters()
        #: residency cache: host arrays are keyed by ``id()``, arena-backed
        #: storage by ``("arena", arena_id)`` — arena buffers are written by
        #: batched launches, so they are born on-device and never re-uploaded.
        #: Values are held weakly and verified by identity, so a freed host
        #: array cannot leave a stale entry behind (CPython recycles ids) and
        #: long-lived sessions do not grow the cache without bound.
        self._resident: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    # -- device-protocol surface ----------------------------------------------
    # A standalone simulator is the degenerate one-member device group; these
    # methods let the runtime, planner and serving layer treat a single
    # DeviceSimulator and a DeviceGroup uniformly (repro.devices.Device).
    @property
    def num_devices(self) -> int:
        return 1

    def device_for(self, index: int) -> "DeviceSimulator":
        """The member device a batch placed on ``index`` executes on."""
        if index != self.device_id:
            raise IndexError(
                f"batch placed on device {index}, but this runtime owns only "
                f"device {self.device_id}; pass a DeviceGroup for multi-device "
                f"placement"
            )
        return self

    def peer_transfer(self, src: int, dst: int, nbytes: float) -> float:
        """Charge a device-to-device transfer; free when src == dst (a
        standalone device has no peers to transfer from)."""
        if src == dst:
            return 0.0
        raise RuntimeError(
            f"cross-device transfer {src}->{dst} requested on a standalone "
            f"DeviceSimulator; multi-device placement needs a DeviceGroup"
        )

    def counters_dict(self) -> Dict[str, float]:
        """Aggregate counters as reported in ``RunStats.device``."""
        return self.counters.as_dict()

    def per_device_dicts(self) -> "List[Dict[str, float]]":
        """Per-member counter breakdown; empty for a standalone device (the
        aggregate *is* the single device)."""
        return []

    def device_summary(self) -> Dict[str, object]:
        """Utilization summary in the shape :meth:`DeviceGroup.device_summary`
        reports for groups."""
        busy = self.counters.total_device_us
        return {
            "count": 1,
            "active_devices": 1 if busy > 0 else 0,
            "busy_us": [busy],
            "utilization": [1.0 if busy > 0 else 0.0],
            "balance": 1.0,
        }

    # -- configuration --------------------------------------------------------
    def set_schedule_quality(self, kernel_name: str, quality: float) -> None:
        """Record the auto-scheduler's result for one kernel."""
        self.schedule_table[kernel_name] = float(quality)

    def reset(self) -> None:
        """Clear accumulated counters (keeps the schedule table and residency)."""
        self.counters = DeviceCounters()

    def reset_residency(self) -> None:
        """Forget which host arrays have been uploaded."""
        self._resident = weakref.WeakValueDictionary()

    # -- cost model -----------------------------------------------------------
    def _quality(self, kernel_name: str) -> float:
        return self.schedule_table.get(kernel_name, self.default_schedule_quality)

    def kernel_time_us(self, record: LaunchRecord, gather_fused: bool) -> float:
        """Simulated execution time of one batched kernel launch."""
        spec = self.spec
        bytes_total = record.bytes_read + record.bytes_written
        if gather_fused and record.scattered_bytes > 0:
            bytes_total += record.scattered_bytes * (spec.scattered_read_penalty - 1.0)
        mem_us = bytes_total / (spec.mem_bandwidth_gbps * 1e3)  # bytes / (GB/s) -> us
        utilization = max(
            spec.min_utilization, min(1.0, record.flops / spec.saturation_flops)
        )
        compute_us = record.flops / (spec.peak_gflops * 1e3 * utilization)
        return spec.launch_overhead_us + max(mem_us, compute_us) / self._quality(
            record.kernel_name
        )

    # -- charging -------------------------------------------------------------
    def launch(self, record: LaunchRecord, gather_fused: bool = True) -> float:
        """Charge one kernel launch; returns its simulated duration (us)."""
        t = self.kernel_time_us(record, gather_fused)
        self.counters.kernel_time_us += t
        self.counters.num_kernel_launches += 1
        self.counters.api_time_us += self.spec.api_overhead_us
        by_kernel = self.counters.launches_by_kernel
        by_kernel[record.kernel_name] = by_kernel.get(record.kernel_name, 0) + 1
        return t

    def gather(self, nbytes: float) -> float:
        """Charge an explicit memory-gather kernel (read scattered + write
        contiguous)."""
        spec = self.spec
        t = spec.launch_overhead_us + (2.0 * nbytes) / (spec.mem_bandwidth_gbps * 1e3)
        self.counters.gather_time_us += t
        self.counters.num_gather_launches += 1
        self.counters.api_time_us += spec.api_overhead_us
        self.counters.bytes_gathered += nbytes
        return t

    def memcpy(self, nbytes: float, batched_with: int = 0) -> float:
        """Charge a host<->device transfer.  ``batched_with`` > 0 indicates the
        transfer was coalesced with others and skips the per-call overhead."""
        spec = self.spec
        overhead = 0.0 if batched_with > 0 else spec.memcpy_overhead_us
        t = overhead + nbytes / (spec.pcie_bandwidth_gbps * 1e3)
        self.counters.memcpy_time_us += t
        self.counters.num_memcpy += 1
        self.counters.api_time_us += spec.api_overhead_us
        self.counters.bytes_copied += nbytes
        return t

    @staticmethod
    def _residency_key(obj) -> object:
        """Residency-cache key: arenas by id, host arrays by object identity."""
        if isinstance(obj, StorageArena):
            return ("arena", obj.arena_id)
        return id(obj)

    def ensure_resident(self, array, batch_transfers: bool = True) -> float:
        """Upload a host array (or arena) to the device once; subsequent
        calls are free while the object stays alive.

        Returns the charged transfer time (0 when already resident).
        """
        key = self._residency_key(array)
        if self._resident.get(key) is array:
            return 0.0
        self._resident[key] = array
        nbytes = float(getattr(array, "nbytes", 0))
        return self.memcpy(nbytes, batched_with=1 if batch_transfers else 0)

    def note_arena(self, arena) -> None:
        """Mark a storage arena as device-resident without charging a copy
        (batched launches write their outputs directly on the device)."""
        self._resident[("arena", arena.arena_id)] = arena

    def note_resident(self, array) -> None:
        """Mark a host array as device-resident without charging a transfer.

        For data the device itself produced: a materialized output is a
        zero-copy view into an output arena, so when the caller feeds that
        array back as a later input (the recurrent-state path in
        ``repro.generate``) the bytes are already on the device and only the
        identity bookkeeping is needed.  The caller must keep the array
        alive — the cache holds it weakly."""
        self._resident[self._residency_key(array)] = array

    def is_resident(self, obj) -> bool:
        """Whether a host array or arena is currently device-resident."""
        return self._resident.get(self._residency_key(obj)) is obj
