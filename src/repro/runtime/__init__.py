"""ACROBAT runtime: lazy DFGs, batched execution, fibers and the device
simulator."""

from .device import DeviceCounters, DeviceSimulator, GPUSpec
from .executor import AcrobatRuntime, ExecutionOptions, RunStats
from .fibers import FiberHandle, FiberScheduler, FiberYield, run_sequential
from .profiler import ActivityProfiler
from .scheduler import (
    AgendaScheduler,
    DynamicDepthScheduler,
    InlineDepthScheduler,
    NoBatchScheduler,
    ScheduledBatch,
    agenda_schedule,
    dynamic_depth_schedule,
)
from .tensor import DFGNode, LazyTensor, materialize_value

__all__ = [
    "AcrobatRuntime",
    "ExecutionOptions",
    "RunStats",
    "DeviceSimulator",
    "DeviceCounters",
    "GPUSpec",
    "ActivityProfiler",
    "FiberScheduler",
    "FiberHandle",
    "FiberYield",
    "run_sequential",
    "InlineDepthScheduler",
    "DynamicDepthScheduler",
    "AgendaScheduler",
    "NoBatchScheduler",
    "ScheduledBatch",
    "agenda_schedule",
    "dynamic_depth_schedule",
    "DFGNode",
    "LazyTensor",
    "materialize_value",
]
