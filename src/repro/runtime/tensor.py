"""Lazy tensors and DFG nodes.

The AOT-compiled program does not compute tensor values eagerly: each block
invocation appends a :class:`DFGNode` to the runtime's pending graph and
returns :class:`LazyTensor` handles for its outputs (§2.2, §3).  Values are
filled in when the runtime triggers batched execution.

A materialized tensor does not own its array: it is a zero-copy *view* into
a :class:`~repro.memory.arena.StorageArena` — the contiguous device buffer
holding all outputs of its batched launch, with instance ``b`` at offset
``b``.  The memory planner (:mod:`repro.memory.planner`) reasons about those
(arena, offset) placements to decide when a later batch's operands are
already contiguous in device memory (gather elision, §5.2).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..memory.arena import TensorStorage

_tensor_ids = itertools.count()
_node_ids = itertools.count()


class LazyTensor:
    """Handle to a tensor that will be produced by a pending DFG node."""

    __slots__ = (
        "tid",
        "node",
        "output_index",
        "storage",
        "inferred_shape",
    )

    def __init__(self, node: "DFGNode", output_index: int) -> None:
        self.tid = next(_tensor_ids)
        self.node = node
        self.output_index = output_index
        #: where the value lives once executed: a view into a storage arena
        self.storage: Optional["TensorStorage"] = None
        #: statically inferred shape (filled by the VM's lazy interpreter so
        #: that batching signatures can include operand shapes)
        self.inferred_shape: Optional[tuple] = None

    @property
    def is_materialized(self) -> bool:
        return self.storage is not None

    @property
    def value(self) -> np.ndarray:
        """The concrete array (a zero-copy view into the backing arena);
        raises if the node has not executed yet."""
        if self.storage is None:
            raise RuntimeError(
                f"LazyTensor {self.tid} (node {self.node.node_id}, block "
                f"{self.node.block_id}) read before execution was triggered"
            )
        return self.storage.array

    def __repr__(self) -> str:
        state = "ready" if self.is_materialized else "pending"
        return f"LazyTensor(#{self.tid}, {state})"


class DFGNode:
    """One pending block invocation in the dataflow graph."""

    __slots__ = (
        "node_id",
        "block_id",
        "args",
        "depth",
        "phase",
        "instance_id",
        "outputs",
        "executed",
        "round_seq",
    )

    def __init__(
        self,
        block_id: int,
        args: Sequence[Any],
        depth: int,
        phase: int,
        instance_id: int,
        num_outputs: int,
    ) -> None:
        self.node_id = next(_node_ids)
        self.block_id = block_id
        #: one entry per block input: an ``ndarray`` (parameter/constant/host
        #: input) or a :class:`LazyTensor` produced by an earlier node
        self.args: Tuple[Any, ...] = tuple(args)
        self.depth = depth
        self.phase = phase
        self.instance_id = instance_id
        self.outputs: List[LazyTensor] = [LazyTensor(self, k) for k in range(num_outputs)]
        self.executed = False
        #: position within the node's synchronization round (assigned by the
        #: runtime at invoke time); the memory planner's plan cache uses it
        #: as the canonical in-round producer reference.  Defaults to the
        #: globally unique node id so directly constructed nodes can never
        #: alias in a cache signature.
        self.round_seq = self.node_id

    def producer_nodes(self) -> List["DFGNode"]:
        """DFG nodes whose outputs this node consumes."""
        return [a.node for a in self.args if isinstance(a, LazyTensor)]

    def __repr__(self) -> str:
        return (
            f"DFGNode(#{self.node_id}, block={self.block_id}, depth={self.depth}, "
            f"phase={self.phase}, inst={self.instance_id})"
        )


def materialize_value(value: Any) -> Any:
    """Recursively replace :class:`LazyTensor` handles with their concrete
    arrays inside arbitrary result structures (ADT values, lists, tuples)."""
    from ..ir.adt import ADTValue

    if isinstance(value, LazyTensor):
        return value.value
    if isinstance(value, ADTValue):
        return ADTValue(value.constructor, [materialize_value(f) for f in value.fields])
    if isinstance(value, tuple):
        return tuple(materialize_value(v) for v in value)
    if isinstance(value, list):
        return [materialize_value(v) for v in value]
    return value
