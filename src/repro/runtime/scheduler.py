"""DFG schedulers.

Three scheduling strategies appear in the paper:

* **Inline-depth scheduling (ACROBAT, §4.1)** — the AOT-compiled program
  already annotated every DFG node with a ``(phase, depth)`` pair, so the
  scheduler only has to bucket nodes by ``(phase, depth, block)`` and walk the
  buckets in order.  No dependency analysis happens at runtime; observations
  O.1/O.2 guarantee the order is safe.
* **Dynamic depth-based scheduling (DyNet / ACROBAT without inline depth)** —
  depths are recomputed at runtime from the DFG structure (max producer depth
  plus one), which costs a full traversal of the graph.
* **Agenda-based scheduling (DyNet's alternative)** — repeatedly pick a
  kernel signature among the currently-ready nodes (lowest average depth
  first) and batch all ready nodes with that signature.

The generic ``dynamic_depth_schedule`` / ``agenda_schedule`` helpers are also
used by the DyNet baseline (:mod:`repro.baselines.dynet`), so both systems
run literally the same batching algorithm and differ only in where the
information comes from — which is the paper's point.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .tensor import DFGNode, LazyTensor


@dataclass
class ScheduledBatch:
    """A group of same-block DFG nodes to execute as one batched launch."""

    block_id: int
    nodes: List[DFGNode]
    #: index of the device this batch executes on, within the runtime's
    #: device group (assigned by a placement policy; 0 = the primary device)
    device: int = 0
    #: tensor-parallel member set: when a placement policy splits this
    #: batch's kernel column/row-wise, the group devices sharing the launch
    #: (``device`` is the home member assembling the output partials); None
    #: for an ordinary whole-batch launch
    tp_devices: Optional[Tuple[int, ...]] = None

    @property
    def size(self) -> int:
        return len(self.nodes)


def dfg_deps(node: DFGNode) -> List[DFGNode]:
    """Pending producers of a DFG node: the nodes behind its not-yet
    materialized lazy-tensor arguments.  Shared by every runtime-analysis
    scheduler so 'ready' means the same thing under all policies."""
    return [
        a.node
        for a in node.args
        if isinstance(a, LazyTensor) and not a.is_materialized
    ]


class InlineDepthScheduler:
    """ACROBAT's scheduler: bucket by the statically computed (phase, depth)."""

    def schedule(self, nodes: Sequence[DFGNode]) -> List[ScheduledBatch]:
        buckets: Dict[Tuple[int, int, int], List[DFGNode]] = {}
        order: Dict[Tuple[int, int, int], int] = {}
        for node in nodes:
            key = (node.phase, node.depth, node.block_id)
            if key not in buckets:
                buckets[key] = []
                order[key] = node.node_id
            buckets[key].append(node)
        keys = sorted(buckets, key=lambda k: (k[0], k[1], order[k]))
        return [ScheduledBatch(block_id=k[2], nodes=buckets[k]) for k in keys]


class DynamicDepthScheduler:
    """Depth-based scheduling with depths recomputed from the DFG at runtime.

    Used when inline depth computation is disabled; the traversal cost is real
    host time and shows up in the ablation (Fig. 6) and Table 6.
    """

    def schedule(self, nodes: Sequence[DFGNode]) -> List[ScheduledBatch]:
        depth: Dict[int, int] = {}

        def node_depth(n: DFGNode) -> int:
            cached = depth.get(n.node_id)
            if cached is not None:
                return cached
            producers = dfg_deps(n)
            d = 0 if not producers else 1 + max(node_depth(p) for p in producers)
            depth[n.node_id] = d
            return d

        buckets: Dict[Tuple[int, int], List[DFGNode]] = {}
        order: Dict[Tuple[int, int], int] = {}
        for node in nodes:
            key = (node_depth(node), node.block_id)
            if key not in buckets:
                buckets[key] = []
                order[key] = node.node_id
            buckets[key].append(node)
        keys = sorted(buckets, key=lambda k: (k[0], order[k]))
        return [ScheduledBatch(block_id=k[1], nodes=buckets[k]) for k in keys]


class AgendaScheduler:
    """Agenda-based scheduling over DFG nodes (Neubig et al. 2017b).

    Batches by block signature among the currently-ready nodes, picking the
    signature with the lowest average depth first.  This is DyNet's
    alternative scheduling scheme running on ACROBAT's coarsened DFG; the
    dependency analysis happens at runtime, so its cost is real host time.
    """

    def schedule(self, nodes: Sequence[DFGNode]) -> List[ScheduledBatch]:
        raw = agenda_schedule(nodes, dfg_deps, lambda n: n.block_id)
        return [ScheduledBatch(block_id=b[0].block_id, nodes=b) for b in raw]


class NoBatchScheduler:
    """Executes every DFG node as its own batch of one, in insertion order.

    Models eager frameworks without auto-batching (the PyTorch baseline of
    Fig. 5): every operator becomes its own kernel launch.
    """

    def schedule(self, nodes: Sequence[DFGNode]) -> List[ScheduledBatch]:
        return [ScheduledBatch(block_id=n.block_id, nodes=[n]) for n in nodes]


# ---------------------------------------------------------------------------
# Generic batching algorithms shared with the DyNet baseline
# ---------------------------------------------------------------------------


def dynamic_depth_schedule(
    nodes: Sequence[Any],
    get_deps: Callable[[Any], Iterable[Any]],
    get_signature: Callable[[Any], Hashable],
) -> List[List[Any]]:
    """Depth-based batching over an arbitrary node graph.

    ``get_deps`` returns the *pending* producers of a node; ``get_signature``
    returns the batching signature — nodes batch together only when their
    signatures compare equal.  Returns batches in a dependency-safe order.
    """
    node_list = list(nodes)
    index = {id(n): i for i, n in enumerate(node_list)}
    depth: Dict[int, int] = {}

    def compute_depth(n: Any) -> int:
        key = id(n)
        if key in depth:
            return depth[key]
        deps = [d for d in get_deps(n) if id(d) in index]
        value = 0 if not deps else 1 + max(compute_depth(d) for d in deps)
        depth[key] = value
        return value

    buckets: Dict[Tuple[int, Hashable], List[Any]] = defaultdict(list)
    first_seen: Dict[Tuple[int, Hashable], int] = {}
    for i, n in enumerate(node_list):
        key = (compute_depth(n), get_signature(n))
        if key not in first_seen:
            first_seen[key] = i
        buckets[key].append(n)
    keys = sorted(buckets, key=lambda k: (k[0], first_seen[k]))
    return [buckets[k] for k in keys]


def agenda_schedule(
    nodes: Sequence[Any],
    get_deps: Callable[[Any], Iterable[Any]],
    get_signature: Callable[[Any], Hashable],
) -> List[List[Any]]:
    """DyNet's agenda-based batching (Neubig et al. 2017b).

    Maintains the set of ready nodes (all dependencies executed) and
    repeatedly selects the signature whose ready nodes have the lowest average
    depth, batching all of them at once.  More resistant to over-eager
    batching than the plain depth scheme, at a higher scheduling cost.
    """
    node_list = list(nodes)
    in_set = {id(n) for n in node_list}
    remaining_deps: Dict[int, int] = {}
    dependents: Dict[int, List[Any]] = defaultdict(list)
    depth: Dict[int, int] = {}

    for n in node_list:
        deps = [d for d in get_deps(n) if id(d) in in_set]
        remaining_deps[id(n)] = len(deps)
        for d in deps:
            dependents[id(d)].append(n)

    def compute_depth(n: Any) -> int:
        key = id(n)
        if key in depth:
            return depth[key]
        deps = [d for d in get_deps(n) if id(d) in in_set]
        value = 0 if not deps else 1 + max(compute_depth(d) for d in deps)
        depth[key] = value
        return value

    for n in node_list:
        compute_depth(n)

    ready: List[Any] = [n for n in node_list if remaining_deps[id(n)] == 0]
    scheduled: List[List[Any]] = []
    done: set = set()

    while ready:
        by_sig: Dict[Hashable, List[Any]] = defaultdict(list)
        for n in ready:
            by_sig[get_signature(n)].append(n)
        # pick the signature with the lowest average depth (ties: most nodes)
        best_sig = min(
            by_sig,
            key=lambda s: (
                sum(depth[id(n)] for n in by_sig[s]) / len(by_sig[s]),
                -len(by_sig[s]),
                str(s),
            ),
        )
        batch = by_sig[best_sig]
        scheduled.append(batch)
        batch_ids = {id(n) for n in batch}
        done.update(batch_ids)
        ready = [n for n in ready if id(n) not in batch_ids]
        for n in batch:
            for dep in dependents[id(n)]:
                remaining_deps[id(dep)] -= 1
                if remaining_deps[id(dep)] == 0:
                    ready.append(dep)

    if len(done) != len(node_list):
        raise RuntimeError("agenda_schedule: dependency cycle or unresolved producers")
    return scheduled
