"""Host-side activity profiler.

Measures the real Python wall-clock time spent in the runtime activities the
paper breaks down in Table 6: DFG construction, scheduling, batched-kernel
dispatch and result materialization.  Device-side time comes from
:class:`repro.runtime.device.DeviceSimulator` instead.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class ActivityProfiler:
    """Accumulates wall-clock time per named activity."""

    times_s: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _active: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def track(self, activity: str) -> Iterator[None]:
        """Context manager measuring one activity region."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.times_s[activity] = self.times_s.get(activity, 0.0) + elapsed
            self.counts[activity] = self.counts.get(activity, 0) + 1

    def add(self, activity: str, seconds: float) -> None:
        """Record externally measured time for an activity."""
        self.times_s[activity] = self.times_s.get(activity, 0.0) + seconds
        self.counts[activity] = self.counts.get(activity, 0) + 1

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a plain counter (e.g. number of DFG nodes)."""
        self.counts[counter] = self.counts.get(counter, 0) + amount

    def ms(self, activity: str) -> float:
        """Accumulated milliseconds for ``activity`` (0 when never recorded)."""
        return 1e3 * self.times_s.get(activity, 0.0)

    def total_ms(self) -> float:
        return 1e3 * sum(self.times_s.values())

    def reset(self) -> None:
        self.times_s = {}
        self.counts = {}

    def as_dict(self) -> Dict[str, float]:
        out = {f"{k}_ms": 1e3 * v for k, v in self.times_s.items()}
        out.update({f"{k}_count": v for k, v in self.counts.items()})
        return out
