"""Fiber runtime for tensor-dependent control flow (§4.2).

When a model's control flow depends on intermediate tensor values, the
unbatched program for each instance cannot simply run to completion before
the DFGs execute — it must stop at every point where it reads a tensor value
back.  The paper runs every instance on its own *fiber* so that all instances
progress to their next synchronization point, the pending DFG nodes execute
as one batch, and the fibers resume.

Here fibers are Python generator coroutines produced by the AOT code
generator.  The protocol between generated code and this scheduler:

* ``yield FiberYield.SYNC``      — the fiber needs pending DFG nodes executed
  before it can continue (it is about to read a tensor value).
* ``yield ("join", [handles])``  — fork-join: the fiber blocks until the
  spawned child fibers (created with :meth:`FiberScheduler.spawn`) finish;
  their return values are delivered as the value of the ``yield``.
* ``return value``               — the fiber finished.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Generator, List, Sequence

_fiber_ids = itertools.count()


class FiberYield(Enum):
    """Yield kinds understood by the scheduler (besides join tuples)."""

    SYNC = "sync"


class FiberHandle:
    """Handle to a spawned fiber; carries its result once finished."""

    __slots__ = ("fiber_id", "finished", "result")

    def __init__(self) -> None:
        self.fiber_id = next(_fiber_ids)
        self.finished = False
        self.result: Any = None

    def __repr__(self) -> str:
        return f"FiberHandle(#{self.fiber_id}, finished={self.finished})"


@dataclass
class _Fiber:
    handle: FiberHandle
    gen: Generator
    #: None = runnable, "sync" = waiting for trigger, ("join", handles) = waiting
    blocked_on: Any = None
    #: value to send into the generator on next resume
    send_value: Any = None


class FiberScheduler:
    """Cooperatively schedules instance fibers around DFG flush points."""

    def __init__(self, trigger: Callable[[], None]) -> None:
        #: callback that schedules + executes all pending DFG nodes
        self._trigger = trigger
        self._fibers: List[_Fiber] = []
        self.num_sync_rounds = 0
        self.num_spawned = 0

    # -- API used by generated code ------------------------------------------
    def spawn(self, gen: Generator) -> FiberHandle:
        """Register a new child fiber (a concurrent recursive call)."""
        handle = FiberHandle()
        self._fibers.append(_Fiber(handle=handle, gen=gen))
        self.num_spawned += 1
        return handle

    # -- driver ----------------------------------------------------------------
    def run(self, roots: Sequence[Generator]) -> List[Any]:
        """Run ``roots`` (one generator per batch instance) to completion,
        triggering DFG execution whenever every live fiber is blocked on a
        sync point.  Returns the root results in order."""
        root_handles = [self.spawn(g) for g in roots]

        while True:
            progressed = self._advance_runnable()
            self._resolve_joins()
            if all(f.handle.finished for f in self._fibers):
                break
            if not progressed and not self._any_runnable():
                # every live fiber waits on a sync point: flush the DFG
                if not any(f.blocked_on == "sync" for f in self._fibers if not f.handle.finished):
                    raise RuntimeError(
                        "fiber deadlock: no runnable fibers and none waiting on sync"
                    )
                self._trigger()
                self.num_sync_rounds += 1
                for f in self._fibers:
                    if f.blocked_on == "sync":
                        f.blocked_on = None

        return [h.result for h in root_handles]

    # -- internals --------------------------------------------------------------
    def _any_runnable(self) -> bool:
        return any(f.blocked_on is None and not f.handle.finished for f in self._fibers)

    def _advance_runnable(self) -> bool:
        """Advance every runnable fiber until it blocks or finishes.  Newly
        spawned fibers are picked up in the same pass.  Returns True when any
        fiber made progress."""
        progressed = False
        while True:
            made_progress_this_round = False
            # iterate over a snapshot; spawn() may append
            for fiber in list(self._fibers):
                if fiber.handle.finished or fiber.blocked_on is not None:
                    continue
                made_progress_this_round = True
                progressed = True
                self._step(fiber)
            if not made_progress_this_round:
                break
            # joins may have become resolvable mid-pass
            self._resolve_joins()
        return progressed

    def _step(self, fiber: _Fiber) -> None:
        try:
            send = fiber.send_value
            fiber.send_value = None
            yielded = fiber.gen.send(send) if send is not None else next(fiber.gen)
        except StopIteration as stop:
            fiber.handle.finished = True
            fiber.handle.result = stop.value
            return
        if yielded is FiberYield.SYNC or yielded is None:
            fiber.blocked_on = "sync"
        elif isinstance(yielded, tuple) and len(yielded) == 2 and yielded[0] == "join":
            fiber.blocked_on = ("join", list(yielded[1]))
        else:
            raise RuntimeError(f"fiber yielded unknown value {yielded!r}")

    def _resolve_joins(self) -> None:
        for fiber in self._fibers:
            if fiber.handle.finished or not isinstance(fiber.blocked_on, tuple):
                continue
            _, handles = fiber.blocked_on
            if all(h.finished for h in handles):
                fiber.send_value = [h.result for h in handles]
                fiber.blocked_on = None


def run_sequential(roots: Sequence[Generator], trigger: Callable[[], None]) -> List[Any]:
    """Reference driver that runs instance generators one after another,
    triggering execution at every sync point (no batch parallelism across
    instances at tensor-dependent control flow).  This is what a system
    without fibers is forced to do (§4.2, Fig. 4 left)."""
    results: List[Any] = []
    for gen in roots:
        try:
            while True:
                yielded = next(gen)
                if isinstance(yielded, tuple) and yielded and yielded[0] == "join":
                    raise RuntimeError(
                        "run_sequential cannot execute programs with concurrent fibers"
                    )
                trigger()
        except StopIteration as stop:
            results.append(stop.value)
    return results
