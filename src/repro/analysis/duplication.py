"""Code duplication for parameter reuse (§B.1).

When the same function is invoked from ``main`` with *different* parameter
bindings — the canonical example being BiRNN, which calls the same ``@rnn``
with forward weights once and backward weights once — a single batched
kernel could not treat the weights as shared.  ACROBAT transitively
duplicates such functions so that each specialization sees one consistent
set of invariant arguments and the batched kernels can exploit parameter
reuse.

The specialization key of a ``main``-level call site is the tuple of
*which* ``main`` parameters (by name) flow into each argument position;
call sites with identical keys share a copy, call sites with different keys
get distinct transitive copies (suffix ``$k``).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.expr import Call, Expr, Function, GlobalVar, Var
from ..ir.module import IRModule, PRELUDE_FUNCTIONS
from ..ir.visitor import ExprMutator, collect
from .structure import reachable_functions


class _GlobalRenamer(ExprMutator):
    """Rewrites :class:`GlobalVar` references according to a mapping."""

    def __init__(self, mapping: Dict[str, GlobalVar]) -> None:
        super().__init__()
        self.mapping = mapping

    def visit_globalvar(self, expr: GlobalVar) -> Expr:
        return self.mapping.get(expr.name, expr)


def _call_signature(call: Call, main_param_names: Set[str]) -> Tuple:
    """Specialization key: per argument, the name of the ``main`` parameter it
    directly references (or ``"*"`` for anything dynamic)."""
    sig: List[str] = []
    for arg in call.args:
        if isinstance(arg, Var) and arg.name_hint in main_param_names:
            sig.append(arg.name_hint)
        else:
            sig.append("*")
    return tuple(sig)


def specialize_functions(module: IRModule, enabled: bool = True) -> IRModule:
    """Duplicate callees of ``main`` per distinct parameter-binding signature.

    Returns a new module (the input module is not mutated).  With
    ``enabled=False`` the module is returned unchanged (ablation switch).
    """
    if not enabled:
        return module

    out = module.copy()
    main = out.main
    main_param_names = {p.name_hint for p in main.params}

    # collect main-level call sites to user functions
    calls = [
        c
        for c in collect(main.body, lambda e: isinstance(e, Call))
        if isinstance(c.op, GlobalVar)
        and c.op.name in out.functions
        and c.op.name not in PRELUDE_FUNCTIONS
    ]

    by_callee: Dict[str, Dict[Tuple, List[Call]]] = {}
    for c in calls:
        by_callee.setdefault(c.op.name, {}).setdefault(
            _call_signature(c, main_param_names), []
        ).append(c)

    rename_at_call: Dict[int, GlobalVar] = {}  # id(call) -> new GlobalVar
    copy_counter = 0

    for callee, signatures in by_callee.items():
        if len(signatures) <= 1:
            continue  # single context: nothing to duplicate
        for sig_index, (sig, sites) in enumerate(sorted(signatures.items())):
            if sig_index == 0:
                continue  # first context keeps the original definition
            copy_counter += 1
            new_names = _clone_subtree(out, callee, suffix=f"${copy_counter}")
            for site in sites:
                rename_at_call[id(site)] = out.get_global_var(new_names[callee])

    if not rename_at_call:
        return out

    class _CallSiteRenamer(ExprMutator):
        def visit_call(self, expr: Call) -> Expr:
            new = super().visit_call(expr)
            target = rename_at_call.get(id(expr))
            if target is None:
                return new
            renamed = Call(target, new.args if isinstance(new, Call) else expr.args, dict(expr.attrs))
            renamed.ty = expr.ty
            return renamed

    new_main_body = _CallSiteRenamer().visit(main.body)
    out.functions["main"] = Function(main.params, new_main_body, main.ret_ty, dict(main.attrs))
    return out


def _clone_subtree(module: IRModule, root: str, suffix: str) -> Dict[str, str]:
    """Clone ``root`` and every non-prelude function reachable from it,
    appending ``suffix`` to their names.  Returns the old->new name map."""
    to_clone = [
        name
        for name in reachable_functions(module, root)
        if name not in PRELUDE_FUNCTIONS and name in module.functions
    ]
    name_map = {name: f"{name}{suffix}" for name in to_clone}
    gv_map = {old: module.get_global_var(new) for old, new in name_map.items()}

    for old, new in name_map.items():
        func = module.functions[old]
        new_body = _GlobalRenamer(gv_map).visit(func.body)
        attrs = dict(func.attrs)
        attrs["name"] = new
        attrs["specialized_from"] = old
        module.functions[new] = Function(func.params, new_body, func.ret_ty, attrs)
    return name_map
