"""Structural analyses: call graph, recursion, tensor-dependent control flow
and operator hoisting (§4.1, §A.1).

These analyses feed the AOT code generator:

* :func:`call_graph` / :func:`recursive_functions` — which functions are
  (self-)recursive; recursion determines where depth counters must thread
  through and where instance parallelism may exist.
* :func:`uses_tensor_dependent_control_flow` — whether any reachable
  operator reads a tensor value back to the host (``item`` / ``item_int``).
  If so the generated program is a set of fibers with explicit sync points
  (§4.2); otherwise it is straight-line per-instance code.
* :func:`hoistable_bindings` — operator bindings inside a recursive function
  whose operands do not depend on the recursion-carried state.  They are
  assigned a *static* depth of 0, which batches them across every recursion
  step and every instance (e.g. the input linear transformation of an RNN
  cell, §A.1).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.adt import pattern_bound_vars
from ..ir.expr import (
    Call,
    Constant,
    ConstructorRef,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    OpRef,
    TupleExpr,
    TupleGetItem,
    Var,
)
from ..ir.module import IRModule
from ..ir.visitor import collect
from ..kernels.registry import get_op, has_op


def called_globals(func: Function) -> Set[str]:
    """Names of global functions referenced anywhere in ``func``."""
    return {e.name for e in collect(func.body, lambda e: isinstance(e, GlobalVar))}


def call_graph(module: IRModule) -> Dict[str, Set[str]]:
    """Adjacency map name -> called global function names."""
    return {name: called_globals(func) for name, func in module.functions.items()}


def reachable_functions(module: IRModule, root: str = "main") -> List[str]:
    """Functions reachable from ``root`` in call order (root first)."""
    graph = call_graph(module)
    seen: List[str] = []
    stack = [root]
    visited: Set[str] = set()
    while stack:
        name = stack.pop()
        if name in visited or name not in module.functions:
            continue
        visited.add(name)
        seen.append(name)
        stack.extend(sorted(graph.get(name, ())))
    return seen


def recursive_functions(module: IRModule) -> Set[str]:
    """Functions that participate in a recursive cycle (including direct
    self-recursion)."""
    graph = call_graph(module)
    recursive: Set[str] = set()
    for name in module.functions:
        # DFS from each callee of `name`, looking for a path back to `name`
        if name in graph.get(name, set()):
            recursive.add(name)
            continue
        stack = list(graph.get(name, set()))
        visited: Set[str] = set()
        while stack:
            cur = stack.pop()
            if cur == name:
                recursive.add(name)
                break
            if cur in visited:
                continue
            visited.add(cur)
            stack.extend(graph.get(cur, set()))
    return recursive


def uses_tensor_dependent_control_flow(module: IRModule, root: str = "main") -> bool:
    """True when any reachable function reads a tensor value on the host."""
    for name in reachable_functions(module, root):
        func = module.functions[name]
        syncs = collect(
            func.body,
            lambda e: isinstance(e, Call)
            and isinstance(e.op, OpRef)
            and has_op(e.op.name)
            and get_op(e.op.name).kind == "sync",
        )
        if syncs:
            return True
    return False


def concurrent_groups(func: Function) -> Dict[str, List[Call]]:
    """Calls annotated with the same ``concurrent_group`` id (Fig. 2)."""
    groups: Dict[str, List[Call]] = {}
    for call in collect(func.body, lambda e: isinstance(e, Call)):
        gid = call.attrs.get("concurrent_group")
        if gid is not None:
            groups.setdefault(gid, []).append(call)
    return groups


# ---------------------------------------------------------------------------
# Operator hoisting
# ---------------------------------------------------------------------------


def _self_recursive_calls(name: str, func: Function) -> List[Call]:
    return [
        c
        for c in collect(func.body, lambda e: isinstance(e, Call))
        if isinstance(c.op, GlobalVar) and c.op.name == name
    ]


class _Dep:
    """Abstract value for the hoisting analysis: does a value depend on
    tensor-operator outputs computed in this function (``compute``), and does
    it depend on recursion-carried state (``recurrent``)?"""

    __slots__ = ("compute", "recurrent")

    def __init__(self, compute: bool = False, recurrent: bool = False) -> None:
        self.compute = compute
        self.recurrent = recurrent

    def join(self, other: "_Dep") -> "_Dep":
        return _Dep(self.compute or other.compute, self.recurrent or other.recurrent)


def hoistable_bindings(name: str, func: Function, module: IRModule) -> Set[int]:
    """Return ``id()``s of op-Call expressions in ``func`` that can be
    assigned a static depth of 0 (operator hoisting, §A.1).

    An operator hoists when its operands do not depend on *recurrent*
    parameters — parameters whose value at a self-recursive call site derives
    from values computed inside the function (e.g. the hidden state threaded
    through an RNN).  Traversal-only parameters (the list/tree being walked)
    are not recurrent, so operators applied to their elements — like the
    input linear transformation in Listing 1 — hoist even though they run
    once per recursion step.
    """
    rec_calls = _self_recursive_calls(name, func)
    if not rec_calls:
        return set()

    params = list(func.params)
    recurrent: Set[int] = set()

    for _ in range(len(params) + 2):  # fixpoint over recurrent-param marking
        op_deps: Dict[int, _Dep] = {}
        rec_arg_deps: Dict[Tuple[int, int], _Dep] = {}

        def eval_expr(expr: Expr, env: Dict[int, _Dep]) -> _Dep:
            if isinstance(expr, Var):
                return env.get(id(expr), _Dep())
            if isinstance(expr, (Constant, OpRef, ConstructorRef, GlobalVar, Function)):
                return _Dep()
            if isinstance(expr, Let):
                v = eval_expr(expr.value, env)
                env2 = dict(env)
                env2[id(expr.var)] = v
                return eval_expr(expr.body, env2)
            if isinstance(expr, Call):
                arg_deps = [eval_expr(a, env) for a in expr.args]
                combined = _Dep()
                for d in arg_deps:
                    combined = combined.join(d)
                if isinstance(expr.op, OpRef):
                    opdef = get_op(expr.op.name) if has_op(expr.op.name) else None
                    if opdef is not None and opdef.kind == "tensor":
                        op_deps[id(expr)] = combined
                        return _Dep(compute=True, recurrent=combined.recurrent)
                    return combined
                if isinstance(expr.op, GlobalVar) and expr.op.name == name:
                    for pos, d in enumerate(arg_deps):
                        key = (id(expr), pos)
                        prev = rec_arg_deps.get(key, _Dep())
                        rec_arg_deps[key] = prev.join(d)
                    # the result of a recursive call is sequentially dependent
                    return _Dep(compute=True, recurrent=True)
                if isinstance(expr.op, (GlobalVar, Var, Function)):
                    # results of other calls may themselves embed recursion
                    # (e.g. tree children); never hoist past them
                    return _Dep(compute=True, recurrent=True)
                return combined
            if isinstance(expr, If):
                d = eval_expr(expr.cond, env)
                d = d.join(eval_expr(expr.then_branch, env))
                return d.join(eval_expr(expr.else_branch, env))
            if isinstance(expr, Match):
                d = eval_expr(expr.data, env)
                out = _Dep()
                for clause in expr.clauses:
                    cenv = dict(env)
                    for v in pattern_bound_vars(clause.pattern):
                        cenv[id(v)] = d
                    out = out.join(eval_expr(clause.body, cenv))
                return out.join(d)
            if isinstance(expr, TupleExpr):
                out = _Dep()
                for f in expr.fields:
                    out = out.join(eval_expr(f, env))
                return out
            if isinstance(expr, TupleGetItem):
                return eval_expr(expr.tup, env)
            return _Dep(compute=True, recurrent=True)

        env0 = {id(p): _Dep(recurrent=(id(p) in recurrent)) for p in params}
        eval_expr(func.body, env0)

        new_recurrent = set(recurrent)
        for call in rec_calls:
            for pos in range(min(len(call.args), len(params))):
                dep = rec_arg_deps.get((id(call), pos), _Dep())
                if dep.compute or dep.recurrent:
                    new_recurrent.add(id(params[pos]))
        if new_recurrent == recurrent:
            return {eid for eid, dep in op_deps.items() if not dep.recurrent}
        recurrent = new_recurrent
    return set()
