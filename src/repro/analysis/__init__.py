"""Static analyses used by the ACROBAT compiler."""

from .duplication import specialize_functions
from .phases import PhaseAssignment, STRUCTURAL_FUNCTIONS, infer_phases
from .structure import (
    call_graph,
    concurrent_groups,
    hoistable_bindings,
    reachable_functions,
    recursive_functions,
    uses_tensor_dependent_control_flow,
)
from .taint import INVARIANT, TAINTED, TaintAnalysis, TaintResult, analyze_taint

__all__ = [
    "analyze_taint",
    "TaintAnalysis",
    "TaintResult",
    "TAINTED",
    "INVARIANT",
    "specialize_functions",
    "infer_phases",
    "PhaseAssignment",
    "STRUCTURAL_FUNCTIONS",
    "call_graph",
    "reachable_functions",
    "recursive_functions",
    "concurrent_groups",
    "hoistable_bindings",
    "uses_tensor_dependent_control_flow",
]
