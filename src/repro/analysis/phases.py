"""Program-phase inference (§4.1, §A.3).

Depth-based scheduling alone can batch too eagerly across the semantic
stages of a model (e.g. the per-token output classifier of an RNN should run
as one batched kernel only after the recurrent stage finished for *every*
instance, but the per-instance depth counters differ because sentence
lengths differ).  The paper divides the computation of ``main`` into
*program phases*: the scheduler drains all DFG nodes of phase *p* before any
node of phase *p+1* executes.

Heuristic (matching the paper's "individual semantic stages"): every
top-level binding of ``main`` that invokes a (non-structural) global
function or one of the higher-order prelude functions is a *stage*.  A
stage's phase is ``max(phase of the stages it depends on) + 1``; independent
stages share a phase (so e.g. the forward and backward RNNs of BiRNN stay
batchable with each other).  Users can override the heuristic by annotating
calls with ``phase_boundary`` (see :func:`repro.ir.builder.phase_boundary`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir.expr import Call, Expr, GlobalVar, Let, Var
from ..ir.module import IRModule
from ..ir.visitor import free_vars


#: prelude functions that move data around without invoking tensor kernels
STRUCTURAL_FUNCTIONS = {"reverse", "rev_append"}


@dataclass
class PhaseAssignment:
    """Phases of the top-level bindings of ``main``."""

    #: phase per top-level binding, keyed by ``id(binding value expr)``
    binding_phase: Dict[int, int] = field(default_factory=dict)
    #: phase of the final (return) expression of ``main``
    result_phase: int = 0
    #: total number of phases
    num_phases: int = 1

    def phase_of(self, value_expr: Expr, default: int = 0) -> int:
        return self.binding_phase.get(id(value_expr), default)


def _is_stage_call(expr: Expr, module: IRModule) -> bool:
    """A binding value that constitutes its own semantic stage."""
    if not isinstance(expr, Call):
        return False
    if expr.attrs.get("phase_boundary"):
        return True
    op = expr.op
    if isinstance(op, GlobalVar):
        if op.name in STRUCTURAL_FUNCTIONS:
            return False
        func = module.functions.get(op.name)
        if func is not None and func.attrs.get("structural"):
            return False
        return True
    return False


def infer_phases(module: IRModule, enabled: bool = True) -> PhaseAssignment:
    """Compute the phase of every top-level binding in ``main``.

    With ``enabled=False`` (ablation: program phases off) every binding gets
    phase 0.
    """
    main = module.main
    assignment = PhaseAssignment()

    bindings: List[Tuple[Var, Expr]] = []
    body: Expr = main.body
    while isinstance(body, Let):
        bindings.append((body.var, body.value))
        body = body.body

    if not enabled:
        for _, value in bindings:
            assignment.binding_phase[id(value)] = 0
        assignment.result_phase = 0
        assignment.num_phases = 1
        return assignment

    var_phase: Dict[int, int] = {}
    var_is_stage: Dict[int, bool] = {}
    max_phase = 0

    def expr_phase(expr: Expr) -> int:
        """Phase induced by the bindings an expression depends on: a use of a
        stage output forces at least ``stage_phase + 1``; non-stage values
        propagate their own phase."""
        phase = 0
        for v in free_vars(expr):
            if id(v) in var_phase:
                bump = 1 if var_is_stage.get(id(v), False) else 0
                phase = max(phase, var_phase[id(v)] + bump)
        return phase

    for var, value in bindings:
        is_stage = _is_stage_call(value, module)
        explicit = isinstance(value, Call) and value.attrs.get("phase_boundary")
        phase = expr_phase(value)
        if explicit:
            phase = max(phase, max_phase + 1)
        assignment.binding_phase[id(value)] = phase
        var_phase[id(var)] = phase
        var_is_stage[id(var)] = is_stage
        max_phase = max(max_phase, phase)

    assignment.result_phase = expr_phase(body)
    max_phase = max(max_phase, assignment.result_phase)
    assignment.num_phases = max_phase + 1
    return assignment
