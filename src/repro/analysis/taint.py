"""Parameter-reuse (invariance) analysis — §5.1.

To generate batched kernels ACROBAT must know, for every tensor-operator
argument, whether the value is *batch-invariant* (the same array for every
instance in the mini-batch — model parameters, constants and anything
computed only from them) or *per-instance*.  Invariant arguments are passed
to batched kernels once and reused; per-instance arguments are gathered
across the batch.

The paper uses a 1-context-sensitive taint analysis.  Here context
sensitivity is obtained by running the code-duplication pass
(:mod:`repro.analysis.duplication`) first — after specialization each global
function has a single calling context of interest — and the taint analysis
itself is a straightforward monotone fixpoint over the module:

* taint source: the per-instance inputs of ``main`` (every parameter *not*
  bound to a concrete weight array at compile time);
* propagation: an expression is tainted when any value it depends on is
  tainted; ADT/tuple values are collapsed to a single taint bit;
* functions are summarized per abstract argument vector and re-analyzed
  until the summaries stabilize (recursion converges in a couple of
  iterations because the lattice has two points).

The result maps every expression (by identity) in every reachable function
to ``True`` (per-instance / tainted) or ``False`` (batch-invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..ir.adt import pattern_bound_vars
from ..ir.expr import (
    Call,
    Constant,
    ConstructorRef,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    OpRef,
    TupleExpr,
    TupleGetItem,
    Var,
)
from ..ir.module import IRModule
from ..kernels.registry import get_op, has_op

TAINTED = True
INVARIANT = False


@dataclass
class TaintResult:
    """Result of the invariance analysis."""

    #: taint of every analyzed expression, keyed by ``id(expr)``
    expr_taint: Dict[int, bool] = field(default_factory=dict)
    #: per function name: taint of each parameter (after fixpoint)
    param_taint: Dict[str, List[bool]] = field(default_factory=dict)
    #: function names reachable from main
    reachable: Set[str] = field(default_factory=set)

    def is_tainted(self, expr: Expr) -> bool:
        """True when ``expr`` is per-instance (varies across the batch)."""
        return self.expr_taint.get(id(expr), TAINTED)

    def is_invariant(self, expr: Expr) -> bool:
        return not self.is_tainted(expr)


class TaintAnalysis:
    """Whole-module taint/invariance fixpoint."""

    def __init__(self, module: IRModule, instance_params: Sequence[str]) -> None:
        self.module = module
        #: names of ``main`` parameters that carry per-instance inputs
        self.instance_params = set(instance_params)
        self.result = TaintResult()
        #: function summaries: name -> {abstract arg tuple -> return taint}
        self._summaries: Dict[str, Dict[Tuple[bool, ...], bool]] = {}
        self._in_progress: Set[Tuple[str, Tuple[bool, ...]]] = set()
        self._changed = True

    # -- public API -----------------------------------------------------------
    def run(self) -> TaintResult:
        main = self.module.main
        main_args = [
            TAINTED if p.name_hint in self.instance_params else INVARIANT
            for p in main.params
        ]
        iterations = 0
        while self._changed and iterations < 20:
            self._changed = False
            self.result.expr_taint = {}
            self.result.reachable = set()
            self._analyze_function("main", main, main_args)
            iterations += 1
        self.result.param_taint["main"] = list(main_args)
        return self.result

    # -- function analysis ------------------------------------------------------
    def _analyze_function(self, name: str, func: Function, arg_taints: List[bool]) -> bool:
        key = tuple(arg_taints)
        summaries = self._summaries.setdefault(name, {})
        self.result.reachable.add(name)
        if (name, key) in self._in_progress:
            # recursive call: use the current best summary (optimistically
            # invariant on the first visit; the outer fixpoint re-runs)
            return summaries.get(key, INVARIANT)
        self._in_progress.add((name, key))
        try:
            env: Dict[int, bool] = {}
            for p, t in zip(func.params, arg_taints):
                env[id(p)] = t
            prev_params = self.result.param_taint.get(name)
            merged = [
                (t or prev_params[i]) if prev_params and i < len(prev_params) else t
                for i, t in enumerate(arg_taints)
            ]
            if prev_params != merged:
                self.result.param_taint[name] = merged
                self._changed = True
            ret = self._eval(func.body, env)
            if summaries.get(key) != ret:
                summaries[key] = ret
                self._changed = True
            return ret
        finally:
            self._in_progress.discard((name, key))

    # -- expression evaluation -----------------------------------------------------
    def _eval(self, expr: Expr, env: Dict[int, bool]) -> bool:
        taint = self._eval_inner(expr, env)
        prev = self.result.expr_taint.get(id(expr))
        self.result.expr_taint[id(expr)] = taint or (prev or False)
        return self.result.expr_taint[id(expr)]

    def _eval_inner(self, expr: Expr, env: Dict[int, bool]) -> bool:
        if isinstance(expr, Var):
            return env.get(id(expr), TAINTED)
        if isinstance(expr, Constant):
            return INVARIANT
        if isinstance(expr, (OpRef, ConstructorRef, GlobalVar)):
            return INVARIANT
        if isinstance(expr, Function):
            # a closure's taint is the taint of its captured environment;
            # approximated by analyzing at call sites (see Call below)
            return INVARIANT
        if isinstance(expr, Let):
            value_taint = self._eval(expr.value, env)
            env = dict(env)
            env[id(expr.var)] = value_taint
            return self._eval(expr.body, env)
        if isinstance(expr, If):
            cond = self._eval(expr.cond, env)
            then_t = self._eval(expr.then_branch, env)
            else_t = self._eval(expr.else_branch, env)
            return cond or then_t or else_t
        if isinstance(expr, Match):
            data_taint = self._eval(expr.data, env)
            result = INVARIANT
            for clause in expr.clauses:
                cenv = dict(env)
                for v in pattern_bound_vars(clause.pattern):
                    cenv[id(v)] = data_taint
                clause_taint = self._eval(clause.body, cenv)  # evaluate every clause
                result = result or clause_taint
            return result or data_taint
        if isinstance(expr, TupleExpr):
            out = INVARIANT
            for f in expr.fields:
                out = self._eval(f, env) or out
            return out
        if isinstance(expr, TupleGetItem):
            return self._eval(expr.tup, env)
        if isinstance(expr, Call):
            return self._eval_call(expr, env)
        raise TypeError(f"taint analysis: unknown expression {type(expr).__name__}")

    def _eval_call(self, call: Call, env: Dict[int, bool]) -> bool:
        arg_taints = [self._eval(a, env) for a in call.args]
        op = call.op
        if isinstance(op, OpRef):
            if has_op(op.name) and get_op(op.name).kind == "sync":
                # reading a value to the host keeps its taint
                return any(arg_taints) if arg_taints else INVARIANT
            return any(arg_taints) if arg_taints else INVARIANT
        if isinstance(op, ConstructorRef):
            return any(arg_taints) if arg_taints else INVARIANT
        if isinstance(op, GlobalVar):
            func = self.module.functions.get(op.name)
            if func is None:
                return any(arg_taints)
            if func.attrs.get("parallel_map") or op.name in ("map", "foldl"):
                # higher-order prelude functions: analyze the closure body with
                # element taint equal to the list taint
                return self._eval_prelude_hof(op.name, call, arg_taints, env)
            return self._analyze_function(op.name, func, arg_taints)
        if isinstance(op, Var):
            # calling a closure passed as an argument: conservative
            return any(arg_taints) or env.get(id(op), TAINTED)
        if isinstance(op, Function):
            fenv = dict(env)
            for p, t in zip(op.params, arg_taints):
                fenv[id(p)] = t
            return self._eval(op.body, fenv)
        return any(arg_taints)

    def _eval_prelude_hof(
        self, name: str, call: Call, arg_taints: List[bool], env: Dict[int, bool]
    ) -> bool:
        """map/foldl applied to an inline closure: propagate element taint
        through the closure body so ops inside are classified correctly."""
        closure = call.args[0]
        if name == "map":
            elem_taint = arg_taints[1] if len(arg_taints) > 1 else TAINTED
            closure_arg_taints = [elem_taint]
        else:  # foldl(f, init, xs)
            init_taint = arg_taints[1] if len(arg_taints) > 1 else TAINTED
            elem_taint = arg_taints[2] if len(arg_taints) > 2 else TAINTED
            closure_arg_taints = [init_taint or elem_taint, elem_taint]
        if isinstance(closure, Function):
            fenv = dict(env)
            for p, t in zip(closure.params, closure_arg_taints):
                fenv[id(p)] = t
            return self._eval(closure.body, fenv)
        if isinstance(closure, GlobalVar) and closure.name in self.module.functions:
            return self._analyze_function(
                closure.name, self.module.functions[closure.name], closure_arg_taints
            )
        return any(arg_taints)


def analyze_taint(module: IRModule, instance_params: Sequence[str]) -> TaintResult:
    """Convenience wrapper: run the invariance analysis on ``module``."""
    return TaintAnalysis(module, instance_params).run()
