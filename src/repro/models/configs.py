"""Model configurations (§7.1, Table 3).

The paper evaluates each model at two sizes.  For the recurrent/recursive
models the hidden sizes match the paper (256/512, MV-RNN 64/128).  For
Berxit the paper uses BERT-base / BERT-large hyper-parameters; full BERT
dimensions are far beyond what the NumPy substrate can execute in a test
suite, so the *structure* (shared-weight transformer layers, early exit,
multi-head attention) is preserved at reduced width — the scaling is
recorded here and in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ModelSize:
    """Hyper-parameters of one model size."""

    name: str
    hidden: int
    #: output classes of the final classifier
    classes: int = 16
    #: embedding dimensionality of inputs (defaults to ``hidden``)
    embed: int = 0
    #: transformer-specific knobs (Berxit)
    layers: int = 0
    heads: int = 0
    seq_len: int = 0
    ffn: int = 0

    def __post_init__(self):
        if self.embed == 0:
            object.__setattr__(self, "embed", self.hidden)


#: §7.1: "For the MV-RNN model, we use hidden sizes 64 and 128 ... For the
#: remaining models, the small and the large model sizes use hidden sizes of
#: 256 and 512 respectively."
SIZES: Dict[str, Dict[str, ModelSize]] = {
    "treelstm": {
        "small": ModelSize("small", hidden=256),
        "large": ModelSize("large", hidden=512),
    },
    "mvrnn": {
        "small": ModelSize("small", hidden=64),
        "large": ModelSize("large", hidden=128),
    },
    "birnn": {
        "small": ModelSize("small", hidden=256),
        "large": ModelSize("large", hidden=512),
    },
    "nestedrnn": {
        "small": ModelSize("small", hidden=256),
        "large": ModelSize("large", hidden=512),
    },
    "drnn": {
        "small": ModelSize("small", hidden=256),
        "large": ModelSize("large", hidden=512),
    },
    # Scaled-down BERT-style sizes (structure preserved, width reduced so the
    # NumPy substrate stays tractable; paper: BERT-base / 18-layer BERT-large).
    "berxit": {
        "small": ModelSize("small", hidden=96, layers=4, heads=4, seq_len=32, ffn=192),
        "large": ModelSize("large", hidden=128, layers=6, heads=8, seq_len=32, ffn=256),
    },
    "stackrnn": {
        "small": ModelSize("small", hidden=256),
        "large": ModelSize("large", hidden=512),
    },
    # Autoregressive decoder cells (beyond the paper's Table 3): one decode
    # step per request, driven by repro.generate.  ``classes`` doubles as the
    # vocabulary size, kept small so greedy decoding hits EOS naturally.
    "declm": {
        "small": ModelSize("small", hidden=256, classes=32),
        "large": ModelSize("large", hidden=512, classes=32),
    },
    "declm_gru": {
        "small": ModelSize("small", hidden=256, classes=32),
        "large": ModelSize("large", hidden=512, classes=32),
    },
}

#: reduced sizes used by the unit-test suite so it runs in seconds
TEST_SIZES: Dict[str, ModelSize] = {
    "treelstm": ModelSize("test", hidden=16),
    "mvrnn": ModelSize("test", hidden=8),
    "birnn": ModelSize("test", hidden=16),
    "nestedrnn": ModelSize("test", hidden=16),
    "drnn": ModelSize("test", hidden=16),
    "berxit": ModelSize("test", hidden=16, layers=2, heads=2, seq_len=8, ffn=32),
    "stackrnn": ModelSize("test", hidden=16),
    "declm": ModelSize("test", hidden=16, classes=16),
    "declm_gru": ModelSize("test", hidden=16, classes=16),
}

MODEL_NAMES = list(SIZES.keys())


def get_size(model: str, size: str) -> ModelSize:
    """Look up the configuration for ``model`` at ``size`` ("small"/"large"/"test")."""
    if size == "test":
        return TEST_SIZES[model]
    return SIZES[model][size]
