"""The seven evaluation models of the paper (Table 3), expressed in the IR.

Every model module provides the same surface:

* ``build(size, seed) -> (IRModule, params)``
* ``build_for(size_name, seed) -> (IRModule, params, ModelSize)``
* ``instance_input(module, raw) -> per-instance input mapping``
* ``make_batch(module, size, batch_size, seed) -> list of instances``
"""

from . import berxit, birnn, declm, drnn, mvrnn, nestedrnn, stackrnn, treelstm
from .configs import MODEL_NAMES, SIZES, TEST_SIZES, ModelSize, get_size

#: model name -> module, in the paper's Table 3/5 order; the ``declm``
#: decoder cells (autoregressive generation, PR 8) follow the encoders
MODEL_MODULES = {
    "treelstm": treelstm,
    "mvrnn": mvrnn,
    "birnn": birnn,
    "nestedrnn": nestedrnn,
    "drnn": drnn,
    "berxit": berxit,
    "stackrnn": stackrnn,
    "declm": declm,
    "declm_gru": declm.gru,
}

__all__ = [
    "treelstm",
    "mvrnn",
    "birnn",
    "nestedrnn",
    "drnn",
    "berxit",
    "stackrnn",
    "declm",
    "MODEL_MODULES",
    "MODEL_NAMES",
    "ModelSize",
    "get_size",
    "SIZES",
    "TEST_SIZES",
]
