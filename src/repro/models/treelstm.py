"""TreeLSTM (Socher et al. 2013) over binary parse trees.

The canonical recursive model of the paper's evaluation: dynamic control
flow follows the parse-tree structure, recursion over the two children is
instance-parallel (annotated concurrent), the leaf embedding transformation
hoists to depth 0, and every internal node evaluates a large static block of
gate computations (ten ``dense`` calls sharing the two child states, which
horizontal fusion merges).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..data.trees import TreeNode, random_treebank
from ..ir import (
    IRModule,
    ScopeBuilder,
    call,
    concurrent,
    function,
    match,
    op,
    pat_ctor,
    prelude_module,
    tuple_expr,
    tuple_get,
    var,
)
from .common import glorot, tree_to_adt, zeros
from .configs import ModelSize, get_size

GATES = ("i", "fl", "fr", "o", "u")


def build(size: ModelSize, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray]]:
    """Build the TreeLSTM IR module and its randomly initialized parameters."""
    H, E, C = size.hidden, size.embed, size.classes
    mod = prelude_module()
    leaf_ctor = mod.get_constructor("Leaf")
    node_ctor = mod.get_constructor("Node")
    cell_gv = mod.get_global_var("treelstm_cell")

    # -- recursive cell ------------------------------------------------------
    tree = var("tree")
    w_leaf, b_leaf = var("leaf_wt"), var("leaf_bias")
    gate_l = {g: var(f"{g}_l_wt") for g in GATES}
    gate_r = {g: var(f"{g}_r_wt") for g in GATES}
    gate_b = {g: var(f"{g}_bias") for g in GATES}
    weight_vars = (
        [w_leaf, b_leaf]
        + [gate_l[g] for g in GATES]
        + [gate_r[g] for g in GATES]
        + [gate_b[g] for g in GATES]
    )

    emb = var("emb")
    leaf_sb = ScopeBuilder()
    h0 = leaf_sb.let("h0", op.tanh(op.add(op.dense(emb, w_leaf), b_leaf)))
    c0 = leaf_sb.let("c0", op.full(shape=(1, H), value=0.0))
    leaf_sb.ret(tuple_expr(h0, c0))

    left, right = var("left"), var("right")
    node_sb = ScopeBuilder()
    lcall = call(cell_gv, left, *weight_vars)
    rcall = call(cell_gv, right, *weight_vars)
    concurrent(lcall, rcall)
    lres = node_sb.let("lres", lcall)
    rres = node_sb.let("rres", rcall)
    hl = node_sb.let("hl", tuple_get(lres, 0))
    cl = node_sb.let("cl", tuple_get(lres, 1))
    hr = node_sb.let("hr", tuple_get(rres, 0))
    cr = node_sb.let("cr", tuple_get(rres, 1))
    gates = {}
    for g in GATES:
        act = op.tanh if g == "u" else op.sigmoid
        gates[g] = node_sb.let(
            g,
            act(op.add(op.add(op.dense(hl, gate_l[g]), op.dense(hr, gate_r[g])), gate_b[g])),
        )
    c_new = node_sb.let(
        "c_new",
        op.add(
            op.add(op.mul(gates["i"], gates["u"]), op.mul(gates["fl"], cl)),
            op.mul(gates["fr"], cr),
        ),
    )
    h_new = node_sb.let("h_new", op.mul(gates["o"], op.tanh(c_new)))
    node_sb.ret(tuple_expr(h_new, c_new))

    body = match(
        tree,
        [
            (pat_ctor(leaf_ctor, emb), leaf_sb.get()),
            (pat_ctor(node_ctor, left, right), node_sb.get()),
        ],
    )
    mod.add_function(
        "treelstm_cell", function([tree] + weight_vars, body, name="treelstm_cell")
    )

    # -- main ------------------------------------------------------------------
    m_weight_vars = [var(v.name_hint) for v in weight_vars]
    cls_wt, cls_bias = var("cls_wt"), var("cls_bias")
    m_tree = var("tree")
    msb = ScopeBuilder()
    res = msb.let("res", call(cell_gv, m_tree, *m_weight_vars))
    h = msb.let("h", tuple_get(res, 0))
    msb.ret(op.add(op.dense(h, cls_wt), cls_bias))
    mod.add_function(
        "main",
        function(m_weight_vars + [cls_wt, cls_bias, m_tree], msb.get(), name="main"),
    )

    # -- parameters ---------------------------------------------------------------
    rng = np.random.default_rng(seed)
    params: Dict[str, np.ndarray] = {
        "leaf_wt": glorot(rng, (E, H)),
        "leaf_bias": zeros((1, H)),
        "cls_wt": glorot(rng, (H, C)),
        "cls_bias": zeros((1, C)),
    }
    for g in GATES:
        params[f"{g}_l_wt"] = glorot(rng, (H, H))
        params[f"{g}_r_wt"] = glorot(rng, (H, H))
        params[f"{g}_bias"] = zeros((1, H))
    return mod, params


def instance_input(module: IRModule, tree: TreeNode) -> Dict[str, Any]:
    """Convert a parse tree into the per-instance input of ``main``."""
    return {"tree": tree_to_adt(module, tree)}


def make_batch(
    module: IRModule, size: ModelSize, batch_size: int, seed: int = 0
) -> List[Dict[str, Any]]:
    """Generate a mini-batch of tree instances (SST-like size distribution)."""
    trees = random_treebank(batch_size, size.embed, seed=seed)
    return [instance_input(module, t) for t in trees]


def build_for(size_name: str, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray], ModelSize]:
    """Convenience: build the model at a named size ("small"/"large"/"test")."""
    size = get_size("treelstm", size_name)
    mod, params = build(size, seed)
    return mod, params, size
