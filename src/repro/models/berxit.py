"""Berxit: early-exit BERT inference (Xin et al. 2021).

A stack of weight-shared transformer encoder layers; after every layer an
exit head reads back a confidence value and stops early when it crosses a
threshold (tensor-dependent control flow).  The layer itself — fused QKV
projections, multi-head attention, residual/layer-norm, feed-forward — is one
big static block, so this model stresses the tensor-compute side rather than
control-flow overheads (§7.4: models with high tensor computation benefit
less from scheduling optimizations).

The paper evaluates BERT-base / 18-layer BERT-large hyper-parameters; this
reproduction keeps the structure but reduces width/sequence length so the
NumPy substrate stays tractable (see ``repro.models.configs``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..data.sequences import random_matrix_sequence
from ..ir import (
    IRModule,
    ScopeBuilder,
    call,
    function,
    if_else,
    op,
    prelude_module,
    var,
)
from .common import glorot, zeros
from .configs import ModelSize, get_size

#: early-exit confidence threshold; with random weights roughly half the
#: instances exit early, which is what exercises the divergence
EXIT_THRESHOLD = 0.55


def _attention_ffn_block(sb: ScopeBuilder, x, weights: Dict[str, Any], size: ModelSize):
    """Emit one transformer encoder layer into ``sb`` and return its output."""
    H, S, heads, ffn = size.hidden, size.seq_len, size.heads, size.ffn
    dh = H // heads
    q = sb.let("q", op.dense(x, weights["wq"]))
    k = sb.let("k", op.dense(x, weights["wk"]))
    v = sb.let("v", op.dense(x, weights["wv"]))
    qh = sb.let("qh", op.transpose(op.reshape(q, newshape=(S, heads, dh)), axes=(1, 0, 2)))
    kh = sb.let("kh", op.transpose(op.reshape(k, newshape=(S, heads, dh)), axes=(1, 2, 0)))
    vh = sb.let("vh", op.transpose(op.reshape(v, newshape=(S, heads, dh)), axes=(1, 0, 2)))
    scores = sb.let("scores", op.mul(op.matmul(qh, kh), float(1.0 / np.sqrt(dh))))
    probs = sb.let("probs", op.softmax(scores, axis=-1))
    ctx = sb.let("ctx", op.matmul(probs, vh))
    merged = sb.let(
        "merged", op.reshape(op.transpose(ctx, axes=(1, 0, 2)), newshape=(S, H))
    )
    attn_out = sb.let("attn_out", op.dense(merged, weights["wo"]))
    x1 = sb.let(
        "x1", op.layer_norm(op.add(x, attn_out), weights["ln1_g"], weights["ln1_b"])
    )
    ffn_out = sb.let(
        "ffn_out",
        op.add(
            op.dense(
                op.gelu(op.add(op.dense(x1, weights["w1"]), weights["b1"])), weights["w2"]
            ),
            weights["b2"],
        ),
    )
    x2 = sb.let(
        "x2", op.layer_norm(op.add(x1, ffn_out), weights["ln2_g"], weights["ln2_b"])
    )
    return x2


_WEIGHT_NAMES = [
    "wq", "wk", "wv", "wo", "ln1_g", "ln1_b", "w1", "b1", "w2", "b2",
    "ln2_g", "ln2_b", "exit_wt", "exit_bias",
]


def build(size: ModelSize, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray]]:
    """Build the Berxit IR module and parameters (layers share all weights)."""
    H, S, ffn = size.hidden, size.seq_len, size.ffn
    mod = prelude_module()
    layer_gv = mod.get_global_var("berxit_layers")

    x, remaining = var("x"), var("remaining")
    weight_vars = {name: var(name) for name in _WEIGHT_NAMES}
    wv_list = [weight_vars[n] for n in _WEIGHT_NAMES]

    sb = ScopeBuilder()
    x2 = _attention_ffn_block(sb, x, weight_vars, size)
    pooled = sb.let("pooled", op.mean(x2, axis=0, keepdims=True))
    conf_t = sb.let(
        "conf_t",
        op.sigmoid(op.add(op.dense(pooled, weight_vars["exit_wt"]), weight_vars["exit_bias"])),
    )
    conf = sb.let("conf", op.item(conf_t))
    stop = op.scalar_or(op.scalar_gt(conf, EXIT_THRESHOLD), op.scalar_le(remaining, 1))
    sb.ret(
        if_else(
            stop,
            x2,
            call(layer_gv, x2, op.scalar_sub(remaining, 1), *wv_list),
        )
    )
    mod.add_function(
        "berxit_layers",
        function([x, remaining] + wv_list, sb.get(), name="berxit_layers"),
    )

    m_weights = {name: var(name) for name in _WEIGHT_NAMES}
    cls_wt, cls_bias = var("cls_wt"), var("cls_bias")
    m_x = var("x")
    msb = ScopeBuilder()
    encoded = msb.let(
        "encoded", call(layer_gv, m_x, size.layers, *[m_weights[n] for n in _WEIGHT_NAMES])
    )
    pooled = msb.let("pooled", op.mean(encoded, axis=0, keepdims=True))
    msb.ret(op.add(op.dense(pooled, cls_wt), cls_bias))
    mod.add_function(
        "main",
        function(
            [m_weights[n] for n in _WEIGHT_NAMES] + [cls_wt, cls_bias, m_x],
            msb.get(),
            name="main",
        ),
    )

    rng = np.random.default_rng(seed)
    params = {
        "wq": glorot(rng, (H, H)),
        "wk": glorot(rng, (H, H)),
        "wv": glorot(rng, (H, H)),
        "wo": glorot(rng, (H, H)),
        "ln1_g": np.ones((1, H), dtype=np.float32),
        "ln1_b": zeros((1, H)),
        "w1": glorot(rng, (H, ffn)),
        "b1": zeros((1, ffn)),
        "w2": glorot(rng, (ffn, H)),
        "b2": zeros((1, H)),
        "ln2_g": np.ones((1, H), dtype=np.float32),
        "ln2_b": zeros((1, H)),
        "exit_wt": glorot(rng, (H, 1)),
        "exit_bias": zeros((1, 1)),
        "cls_wt": glorot(rng, (H, size.classes)),
        "cls_bias": zeros((1, size.classes)),
    }
    return mod, params


def instance_input(module: IRModule, embeddings: np.ndarray) -> Dict[str, Any]:
    """Per-instance input: the ``(seq_len, hidden)`` token-embedding matrix."""
    return {"x": embeddings}


def make_batch(
    module: IRModule, size: ModelSize, batch_size: int, seed: int = 0
) -> List[Dict[str, Any]]:
    seqs = random_matrix_sequence(batch_size, size.seq_len, size.hidden, seed=seed)
    return [instance_input(module, s) for s in seqs]


def build_for(size_name: str, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray], ModelSize]:
    size = get_size("berxit", size_name)
    mod, params = build(size, seed)
    return mod, params, size
