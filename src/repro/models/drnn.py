"""DRNN: doubly recurrent neural network for top-down tree generation
(Alvarez-Melis & Jaakkola 2017).

From a root state the model decides, by reading back a gating tensor,
whether to expand the current node into two children (tensor-dependent
control flow); the two child expansions are independent and annotated as
concurrent, so ACROBAT runs them on separate fibers and batches across
subtrees (§4.2).  The child gating uses a broadcasting element-wise
multiplication (``scale``), which DyNet executes unbatched (§7.3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..ir import (
    IRModule,
    ScopeBuilder,
    call,
    concurrent,
    ctor,
    function,
    if_else,
    op,
    prelude_module,
    var,
)
from .common import glorot, zeros
from .configs import ModelSize, get_size

#: maximum generated tree depth (paper: "randomly generated tensors")
DEFAULT_MAX_DEPTH = 4
TEST_MAX_DEPTH = 3


def build(
    size: ModelSize, seed: int = 0, max_depth: int = DEFAULT_MAX_DEPTH
) -> Tuple[IRModule, Dict[str, np.ndarray]]:
    """Build the DRNN IR module and parameters."""
    H = size.hidden
    mod = prelude_module()
    leaf = mod.get_constructor("Leaf")
    node = mod.get_constructor("Node")
    drnn_gv = mod.get_global_var("drnn_expand")

    state, budget = var("state"), var("budget")
    w_state, b_state = var("state_wt"), var("state_bias")
    w_gate, b_gate = var("gate_wt"), var("gate_bias")
    w_left, w_right = var("left_wt"), var("right_wt")
    weight_vars = [w_state, b_state, w_gate, b_gate, w_left, w_right]

    sb = ScopeBuilder()
    h = sb.let("h", op.tanh(op.add(op.dense(state, w_state), b_state)))
    gate = sb.let("gate", op.sigmoid(op.add(op.dense(h, w_gate), b_gate)))  # (1, 2)
    gate_mag = sb.let("gate_mag", op.mean(gate, axis=1, keepdims=True))  # (1, 1)
    expand_score = sb.let("expand_score", op.item(gate, index=0))

    # expansion branch: gate each child state with the (1,1) magnitude tensor
    # (broadcasting element-wise multiplication: DyNet runs this unbatched)
    esb = ScopeBuilder()
    lstate = esb.let("lstate", op.scale(op.tanh(op.dense(h, w_left)), gate_mag))
    rstate = esb.let("rstate", op.scale(op.tanh(op.dense(h, w_right)), gate_mag))
    lcall = call(drnn_gv, lstate, op.scalar_sub(budget, 1), *weight_vars)
    rcall = call(drnn_gv, rstate, op.scalar_sub(budget, 1), *weight_vars)
    concurrent(lcall, rcall)
    lsub = esb.let("lsub", lcall)
    rsub = esb.let("rsub", rcall)
    esb.ret(ctor(node, lsub, rsub))

    expand = op.scalar_and(op.scalar_gt(expand_score, 0.5), op.scalar_gt(budget, 0))
    sb.ret(if_else(expand, esb.get(), ctor(leaf, h)))
    mod.add_function(
        "drnn_expand", function([state, budget] + weight_vars, sb.get(), name="drnn_expand")
    )

    m_weight_vars = [var(v.name_hint) for v in weight_vars]
    root = var("root")
    msb = ScopeBuilder()
    msb.ret(call(drnn_gv, root, max_depth, *m_weight_vars))
    mod.add_function("main", function(m_weight_vars + [root], msb.get(), name="main"))

    rng = np.random.default_rng(seed)
    params = {
        "state_wt": glorot(rng, (H, H)),
        "state_bias": zeros((1, H)),
        "gate_wt": glorot(rng, (H, 2)),
        "gate_bias": zeros((1, 2)),
        "left_wt": glorot(rng, (H, H)),
        "right_wt": glorot(rng, (H, H)),
    }
    return mod, params


def instance_input(module: IRModule, root_vector: np.ndarray) -> Dict[str, Any]:
    """Per-instance input: the root representation vector."""
    return {"root": root_vector}


def make_batch(
    module: IRModule, size: ModelSize, batch_size: int, seed: int = 0
) -> List[Dict[str, Any]]:
    """Random root vectors (the paper's DRNN dataset is randomly generated
    tensors)."""
    rng = np.random.default_rng(seed)
    return [
        instance_input(module, rng.standard_normal((1, size.hidden)).astype(np.float32))
        for _ in range(batch_size)
    ]


def build_for(
    size_name: str, seed: int = 0, max_depth: int | None = None
) -> Tuple[IRModule, Dict[str, np.ndarray], ModelSize]:
    size = get_size("drnn", size_name)
    depth = max_depth if max_depth is not None else (
        TEST_MAX_DEPTH if size_name == "test" else DEFAULT_MAX_DEPTH
    )
    mod, params = build(size, seed, max_depth=depth)
    return mod, params, size
