"""Autoregressive decoder cell (single-step RNN/GRU language-model head).

Unlike the seven single-shot encoders from the paper's Table 3, this model
is one *step* of a generation loop: ``main(weights..., state, inp)`` maps a
recurrent state and an embedded token to ``(new_state, logits)``.  The
generation driver (``repro.generate``) feeds the returned state back in at
the next step, so the sequential structure lives *outside* the DFG and each
step's nodes batch freely with round-mates — decode steps of live sequences
and fresh prefills land in the same rounds.

The cell is deliberately pure feedforward (no tensor-dependent control
flow): token selection (argmax / EOS) happens host-side in the driver, which
keeps the model on the non-fiber path so plan caching, speculation
(``prepare=True``) and kernel specialization all apply to decode rounds.

Two cells share this module:

* ``declm`` — a tanh-RNN cell;
* ``declm_gru`` — a GRU cell (update/reset gates; uses the registered
  ``sub``/``mul`` elementwise kernels so no constant tensors are needed:
  ``h' = z*h + (c - z*c)`` ≡ ``z*h + (1-z)*c``).

Both are registered in ``MODEL_MODULES`` so the generic harness/test
surface (``build``/``build_for``/``instance_input``/``make_batch``) covers
them like any encoder.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..ir import IRModule, ScopeBuilder, function, op, prelude_module, tuple_expr, var
from .common import glorot, zeros
from .configs import ModelSize, get_size


def _rnn_main(mod: IRModule) -> List[str]:
    """tanh-RNN step: ``h' = tanh(b + x@Wi + h@Wh)``; logits off ``h'``."""
    in_wt, rec_wt, rec_bias = var("in_wt"), var("rec_wt"), var("rec_bias")
    out_wt, out_bias = var("out_wt"), var("out_bias")
    state, inp = var("state"), var("inp")

    sb = ScopeBuilder()
    pre = sb.let(
        "pre", op.add(op.add(rec_bias, op.dense(inp, in_wt)), op.dense(state, rec_wt))
    )
    new_state = sb.let("new_state", op.tanh(pre))
    logits = sb.let("logits", op.add(op.dense(new_state, out_wt), out_bias))
    sb.ret(tuple_expr(new_state, logits))
    mod.add_function(
        "main",
        function(
            [in_wt, rec_wt, rec_bias, out_wt, out_bias, state, inp],
            sb.get(),
            name="main",
        ),
    )
    return ["in_wt", "rec_wt", "rec_bias", "out_wt", "out_bias"]


def _gru_main(mod: IRModule) -> List[str]:
    """GRU step: update gate ``z``, reset gate ``r``, candidate ``c``."""
    names = [
        "z_in", "z_rec", "z_bias",
        "r_in", "r_rec", "r_bias",
        "c_in", "c_rec", "c_bias",
        "out_wt", "out_bias",
    ]
    v = {n: var(n) for n in names}
    state, inp = var("state"), var("inp")

    def gate(prefix: str, act, hidden):
        return act(
            op.add(
                op.add(v[f"{prefix}_bias"], op.dense(inp, v[f"{prefix}_in"])),
                op.dense(hidden, v[f"{prefix}_rec"]),
            )
        )

    sb = ScopeBuilder()
    z = sb.let("z", gate("z", op.sigmoid, state))
    r = sb.let("r", gate("r", op.sigmoid, state))
    c = sb.let("c", gate("c", op.tanh, op.mul(r, state)))
    # h' = z*h + (1-z)*c, written without a ones-constant: z*h + (c - z*c)
    new_state = sb.let("new_state", op.add(op.mul(z, state), op.sub(c, op.mul(z, c))))
    logits = sb.let("logits", op.add(op.dense(new_state, v["out_wt"]), v["out_bias"]))
    sb.ret(tuple_expr(new_state, logits))
    mod.add_function(
        "main",
        function([v[n] for n in names] + [state, inp], sb.get(), name="main"),
    )
    return names


def build(
    size: ModelSize, seed: int = 0, cell: str = "rnn"
) -> Tuple[IRModule, Dict[str, np.ndarray]]:
    """Build one decoder step.  ``main``'s unbound inputs are ``state``
    (1, hidden) and ``inp`` (1, embed); it returns ``(new_state, logits)``
    with ``logits`` shaped (1, classes) — ``classes`` doubles as the
    vocabulary size."""
    H, E, C = size.hidden, size.embed, size.classes
    mod = prelude_module()
    names = _rnn_main(mod) if cell == "rnn" else _gru_main(mod)

    rng = np.random.default_rng(seed)
    params: Dict[str, np.ndarray] = {}
    for name in names:
        if name.endswith("_bias") or name == "out_bias":
            width = C if name == "out_bias" else H
            params[name] = zeros((1, width))
        elif name in ("in_wt",) or name.endswith("_in"):
            params[name] = glorot(rng, (E, H))
        elif name == "out_wt":
            params[name] = glorot(rng, (H, C))
        else:  # recurrent H x H
            params[name] = glorot(rng, (H, H))
    return mod, params


def embedding(size: ModelSize, seed: int = 0) -> np.ndarray:
    """Deterministic token-embedding table, shape (vocab, embed).

    Seeded independently of the cell weights so model and embedding can be
    rebuilt separately yet bitwise-agree between the eager reference loop
    and the batched generation driver.
    """
    rng = np.random.default_rng(seed + 7919)
    return glorot(rng, (size.classes, size.embed))


def initial_state(size: ModelSize) -> np.ndarray:
    """Fresh per-sequence recurrent state (zeros, shape (1, hidden))."""
    return zeros((1, size.hidden))


def select_token(logits: np.ndarray) -> int:
    """Greedy host-side decode: argmax over the vocabulary axis.

    Kept here (not in the driver) so the eager reference loop and the
    batched path share one bitwise-identical selection rule.
    """
    return int(np.argmax(np.asarray(logits), axis=-1).ravel()[0])


def instance_input(module: IRModule, raw: Tuple[np.ndarray, np.ndarray]) -> Dict[str, Any]:
    """``raw`` is a ``(state, embedded_token)`` pair."""
    state, inp = raw
    return {"state": state, "inp": inp}


def make_batch(
    module: IRModule, size: ModelSize, batch_size: int, seed: int = 0
) -> List[Dict[str, Any]]:
    """Random mid-generation decode steps (random states, random tokens)."""
    rng = np.random.default_rng(seed)
    emb = embedding(size, seed=0)
    out = []
    for _ in range(batch_size):
        state = np.tanh(rng.standard_normal((1, size.hidden))).astype(np.float32)
        tok = int(rng.integers(0, size.classes))
        out.append(instance_input(module, (state, emb[tok : tok + 1])))
    return out


def build_for(
    size_name: str, seed: int = 0
) -> Tuple[IRModule, Dict[str, np.ndarray], ModelSize]:
    size = get_size("declm", size_name)
    mod, params = build(size, seed, cell="rnn")
    return mod, params, size


class _GRUVariant:
    """Module-shaped shim registering the GRU cell as ``declm_gru``."""

    @staticmethod
    def build(size: ModelSize, seed: int = 0):
        return build(size, seed, cell="gru")

    @staticmethod
    def build_for(size_name: str, seed: int = 0):
        size = get_size("declm_gru", size_name)
        mod, params = build(size, seed, cell="gru")
        return mod, params, size

    embedding = staticmethod(embedding)
    initial_state = staticmethod(initial_state)
    select_token = staticmethod(select_token)
    instance_input = staticmethod(instance_input)
    make_batch = staticmethod(make_batch)


gru = _GRUVariant()
