"""Bidirectional RNN (Schuster & Paliwal 1997) for token classification.

Exercises three of the paper's mechanisms at once:

* the forward and backward passes call the *same* ``@rnn`` function with
  different weights, triggering the code-duplication/specialization pass
  (§B.1) so parameter reuse survives batching;
* the per-token input transformation hoists out of the recursion (§A.1);
* the per-token output classifiers form their own program phase so they all
  batch into one kernel even though sentence lengths differ (§A.3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..data.sequences import random_sequences
from ..ir import (
    IRModule,
    ScopeBuilder,
    call,
    ctor,
    function,
    match,
    op,
    pat_ctor,
    prelude_module,
    tuple_expr,
    tuple_get,
    var,
)
from .common import glorot, zeros
from .configs import ModelSize, get_size


def _define_rnn(mod: IRModule) -> None:
    """``@rnn(inps, state, bias, i_wt, h_wt) -> List[state]`` (Listing 1)."""
    nil = mod.get_constructor("Nil")
    cons = mod.get_constructor("Cons")
    rnn_gv = mod.get_global_var("rnn")

    inps, state, bias, i_wt, h_wt = (
        var("inps"), var("state"), var("bias"), var("i_wt"), var("h_wt"),
    )
    inp, tail = var("inp"), var("tail")
    sb = ScopeBuilder()
    inp_linear = sb.let("inp_linear", op.add(bias, op.dense(inp, i_wt)))
    new_state = sb.let(
        "new_state", op.sigmoid(op.add(inp_linear, op.dense(state, h_wt)))
    )
    sb.ret(ctor(cons, new_state, call(rnn_gv, tail, new_state, bias, i_wt, h_wt)))
    body = match(
        inps,
        [(pat_ctor(nil), ctor(nil)), (pat_ctor(cons, inp, tail), sb.get())],
    )
    mod.add_function("rnn", function([inps, state, bias, i_wt, h_wt], body, name="rnn"))


def _define_zip2(mod: IRModule) -> None:
    """``@zip2(xs, ys) -> List[(x, y)]`` (structural, no tensor ops)."""
    nil = mod.get_constructor("Nil")
    cons = mod.get_constructor("Cons")
    zip_gv = mod.get_global_var("zip2")

    xs, ys = var("xs"), var("ys")
    x, xt, y, yt = var("x"), var("xt"), var("y"), var("yt")
    inner = match(
        ys,
        [
            (pat_ctor(nil), ctor(nil)),
            (
                pat_ctor(cons, y, yt),
                ctor(cons, tuple_expr(x, y), call(zip_gv, xt, yt)),
            ),
        ],
    )
    body = match(xs, [(pat_ctor(nil), ctor(nil)), (pat_ctor(cons, x, xt), inner)])
    mod.add_function("zip2", function([xs, ys], body, name="zip2", structural=True))


def build(size: ModelSize, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray]]:
    """Build the BiRNN IR module and parameters."""
    H, E, C = size.hidden, size.embed, size.classes
    mod = prelude_module()
    _define_rnn(mod)
    _define_zip2(mod)
    rnn_gv = mod.get_global_var("rnn")
    zip_gv = mod.get_global_var("zip2")

    f_bias, f_i, f_h, f_init = var("f_bias"), var("f_i_wt"), var("f_h_wt"), var("f_init")
    b_bias, b_i, b_h, b_init = var("b_bias"), var("b_i_wt"), var("b_h_wt"), var("b_init")
    out_wt, out_bias = var("out_wt"), var("out_bias")
    inps = var("inps")

    p = var("p")
    out_fn = function(
        [p],
        op.relu(
            op.add(
                op.dense(op.concat(tuple_get(p, 0), tuple_get(p, 1), axis=1), out_wt),
                out_bias,
            )
        ),
    )

    msb = ScopeBuilder()
    f_states = msb.let("f_states", call(rnn_gv, inps, f_init, f_bias, f_i, f_h))
    rinps = msb.let("rinps", call(mod.get_global_var("reverse"), inps))
    b_states_rev = msb.let("b_states_rev", call(rnn_gv, rinps, b_init, b_bias, b_i, b_h))
    b_states = msb.let("b_states", call(mod.get_global_var("reverse"), b_states_rev))
    pairs = msb.let("pairs", call(zip_gv, f_states, b_states))
    msb.ret(call(mod.get_global_var("map"), out_fn, pairs))

    mod.add_function(
        "main",
        function(
            [f_bias, f_i, f_h, f_init, b_bias, b_i, b_h, b_init, out_wt, out_bias, inps],
            msb.get(),
            name="main",
        ),
    )

    rng = np.random.default_rng(seed)
    params = {
        "f_bias": zeros((1, H)),
        "f_i_wt": glorot(rng, (E, H)),
        "f_h_wt": glorot(rng, (H, H)),
        "f_init": zeros((1, H)),
        "b_bias": zeros((1, H)),
        "b_i_wt": glorot(rng, (E, H)),
        "b_h_wt": glorot(rng, (H, H)),
        "b_init": zeros((1, H)),
        "out_wt": glorot(rng, (2 * H, C)),
        "out_bias": zeros((1, C)),
    }
    return mod, params


def instance_input(module: IRModule, tokens: List[np.ndarray]) -> Dict[str, Any]:
    """Convert a token-embedding sequence into the per-instance input."""
    return {"inps": module.make_list(tokens)}


def make_batch(
    module: IRModule, size: ModelSize, batch_size: int, seed: int = 0
) -> List[Dict[str, Any]]:
    seqs = random_sequences(batch_size, size.embed, seed=seed)
    return [instance_input(module, s) for s in seqs]


def build_for(size_name: str, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray], ModelSize]:
    size = get_size("birnn", size_name)
    mod, params = build(size, seed)
    return mod, params, size
