"""StackRNN: a transition-based (shift/reduce) parser with RNN cells
standing in for the StackLSTM of Dyer et al. 2015 (as in the paper, Table 3).

At every step the parser combines the front of the buffer with the top of
the stack, predicts an action with an ``argmax`` whose result is read back to
decide the next transition (tensor-dependent control flow), and either
*shifts* (pushes a new state) or *reduces* (composes the two top stack
entries).  The two branches invoke different numbers of operators, which is
what the ghost-operator alignment targets (§4.1), and the ``argmax`` is an
operator DyNet cannot batch (§7.3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..data.sequences import random_sequences
from ..ir import (
    IRModule,
    ScopeBuilder,
    call,
    ctor,
    function,
    if_else,
    match,
    op,
    pat_ctor,
    prelude_module,
    var,
)
from .common import glorot, zeros
from .configs import ModelSize, get_size


def build(size: ModelSize, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray]]:
    """Build the StackRNN IR module and parameters."""
    H, E, C = size.hidden, size.embed, size.classes
    mod = prelude_module()
    nil = mod.get_constructor("Nil")
    cons = mod.get_constructor("Cons")
    parse_gv = mod.get_global_var("parse_step")

    buffer, stack = var("buffer"), var("stack")
    w_s, b_s = var("step_wt"), var("step_bias")
    w_act = var("act_wt")
    w_r, b_r = var("reduce_wt"), var("reduce_bias")
    empty_vec = var("empty_vec")
    cls_wt, cls_bias = var("cls_wt"), var("cls_bias")
    weight_vars = [w_s, b_s, w_act, w_r, b_r, empty_vec, cls_wt, cls_bias]

    # -- final result once the buffer is exhausted --------------------------------
    top, rest = var("top"), var("rest")
    done_body = match(
        stack,
        [
            (pat_ctor(nil), op.relu(op.dense(empty_vec, cls_wt))),
            (pat_ctor(cons, top, rest), op.relu(op.add(op.dense(top, cls_wt), cls_bias))),
        ],
    )

    # -- one parser step -----------------------------------------------------------
    tok, buf_rest = var("tok"), var("buf_rest")
    st_top, st_rest = var("st_top"), var("st_rest")
    step_sb = ScopeBuilder()
    stack_top = step_sb.let(
        "stack_top",
        match(stack, [(pat_ctor(nil), empty_vec), (pat_ctor(cons, st_top, st_rest), st_top)]),
    )
    state = step_sb.let(
        "state",
        op.sigmoid(op.add(op.dense(op.concat(tok, stack_top, axis=1), w_s), b_s)),
    )
    logits = step_sb.let("logits", op.dense(state, w_act))  # (1, 2): shift / reduce
    act_t = step_sb.let("act_t", op.argmax(logits, axis=-1))
    act = step_sb.let("act", op.item_int(act_t))

    # shift: consume the token, push the new state
    shift_branch = call(parse_gv, buf_rest, ctor(cons, state, stack), *weight_vars)

    # reduce: compose the two top stack entries (keeps the buffer unchanged);
    # falls back to shifting when the stack is too small
    a, r1, b, r2 = var("a"), var("r1"), var("b"), var("r2")
    rsb = ScopeBuilder()
    comb = rsb.let(
        "comb", op.tanh(op.add(op.dense(op.concat(a, b, axis=1), w_r), b_r))
    )
    rsb.ret(call(parse_gv, buffer, ctor(cons, comb, r2), *weight_vars))
    reduce_inner = match(
        r1,
        [
            (pat_ctor(nil), shift_branch),
            (pat_ctor(cons, b, r2), rsb.get()),
        ],
    )
    reduce_branch = match(
        stack,
        [
            (pat_ctor(nil), shift_branch),
            (pat_ctor(cons, a, r1), reduce_inner),
        ],
    )

    step_sb.ret(if_else(op.scalar_eq(act, 0), shift_branch, reduce_branch))
    body = match(
        buffer,
        [
            (pat_ctor(nil), done_body),
            (pat_ctor(cons, tok, buf_rest), step_sb.get()),
        ],
    )
    mod.add_function(
        "parse_step", function([buffer, stack] + weight_vars, body, name="parse_step")
    )

    # -- main ------------------------------------------------------------------------
    m_weight_vars = [var(v.name_hint) for v in weight_vars]
    toks = var("tokens")
    msb = ScopeBuilder()
    msb.ret(call(parse_gv, toks, ctor(nil), *m_weight_vars))
    mod.add_function("main", function(m_weight_vars + [toks], msb.get(), name="main"))

    rng = np.random.default_rng(seed)
    params = {
        "step_wt": glorot(rng, (E + H, H)),
        "step_bias": zeros((1, H)),
        "act_wt": glorot(rng, (H, 2)),
        "reduce_wt": glorot(rng, (2 * H, H)),
        "reduce_bias": zeros((1, H)),
        "empty_vec": zeros((1, H)),
        "cls_wt": glorot(rng, (H, C)),
        "cls_bias": zeros((1, C)),
    }
    return mod, params


def instance_input(module: IRModule, tokens: List[np.ndarray]) -> Dict[str, Any]:
    """Per-instance input: the token-embedding buffer."""
    return {"tokens": module.make_list(tokens)}


def make_batch(
    module: IRModule, size: ModelSize, batch_size: int, seed: int = 0
) -> List[Dict[str, Any]]:
    seqs = random_sequences(batch_size, size.embed, seed=seed)
    return [instance_input(module, s) for s in seqs]


def build_for(size_name: str, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray], ModelSize]:
    size = get_size("stackrnn", size_name)
    mod, params = build(size, seed)
    return mod, params, size
