"""NestedRNN: an RNN loop nested inside a GRU-style outer loop (Table 3).

The paper's workload iterates both loops for a pseudo-random number of
iterations in [20, 40], using pre-determined random seeds to emulate
tensor-dependent control flow (§7.3).  We do the same: every outer segment
carries a list of "coin" tensors; the inner loop keeps running while the
coin it reads back from the device is positive, which exercises the
synchronization / fiber machinery exactly like genuinely learned exit
decisions would.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..data.sequences import coin_run_lists
from ..ir import (
    IRModule,
    ScopeBuilder,
    call,
    function,
    if_else,
    match,
    op,
    pat_ctor,
    prelude_module,
    var,
)
from .common import glorot, zeros
from .configs import ModelSize, get_size

#: default iteration ranges; tests use a much smaller range than the paper's
PAPER_ITER_RANGE = (20, 40)
TEST_ITER_RANGE = (2, 5)


def build(size: ModelSize, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray]]:
    """Build the NestedRNN IR module and parameters."""
    H = size.hidden
    mod = prelude_module()
    nil = mod.get_constructor("Nil")
    cons = mod.get_constructor("Cons")
    inner_gv = mod.get_global_var("inner_rnn")
    outer_gv = mod.get_global_var("outer_gru")

    # -- inner RNN loop: run one cell per coin while the coin reads positive ----
    coins, istate = var("coins"), var("istate")
    w_in, b_in = var("inner_wt"), var("inner_bias")
    coin, crest = var("coin"), var("crest")
    isb = ScopeBuilder()
    s2 = isb.let("s2", op.sigmoid(op.add(op.dense(istate, w_in), b_in)))
    flag = isb.let("flag", op.item(coin))
    isb.ret(
        if_else(
            op.scalar_gt(flag, 0.5),
            call(inner_gv, crest, s2, w_in, b_in),
            s2,
        )
    )
    inner_body = match(
        coins,
        [(pat_ctor(nil), istate), (pat_ctor(cons, coin, crest), isb.get())],
    )
    mod.add_function(
        "inner_rnn", function([coins, istate, w_in, b_in], inner_body, name="inner_rnn")
    )

    # -- outer GRU-style loop over segments --------------------------------------
    segs, ostate = var("segs"), var("ostate")
    o_w_in, o_b_in = var("inner_wt"), var("inner_bias")
    w_z, b_z, w_h, b_h = var("z_wt"), var("z_bias"), var("h_wt"), var("h_bias")
    seg, srest = var("seg"), var("srest")
    osb = ScopeBuilder()
    inner_res = osb.let("inner_res", call(inner_gv, seg, ostate, o_w_in, o_b_in))
    z = osb.let(
        "z",
        op.sigmoid(op.add(op.dense(op.concat(ostate, inner_res, axis=1), w_z), b_z)),
    )
    h_cand = osb.let(
        "h_cand",
        op.tanh(op.add(op.dense(op.concat(ostate, inner_res, axis=1), w_h), b_h)),
    )
    new_state = osb.let(
        "new_state",
        op.add(op.mul(z, ostate), op.mul(op.sub(op.full(shape=(1, H), value=1.0), z), h_cand)),
    )
    osb.ret(call(outer_gv, srest, new_state, o_w_in, o_b_in, w_z, b_z, w_h, b_h))
    outer_body = match(
        segs,
        [(pat_ctor(nil), ostate), (pat_ctor(cons, seg, srest), osb.get())],
    )
    mod.add_function(
        "outer_gru",
        function([segs, ostate, o_w_in, o_b_in, w_z, b_z, w_h, b_h], outer_body, name="outer_gru"),
    )

    # -- main --------------------------------------------------------------------
    m_w_in, m_b_in = var("inner_wt"), var("inner_bias")
    m_w_z, m_b_z, m_w_h, m_b_h = var("z_wt"), var("z_bias"), var("h_wt"), var("h_bias")
    init, cls_wt, cls_bias = var("init_state"), var("cls_wt"), var("cls_bias")
    m_segs = var("segs")
    msb = ScopeBuilder()
    final = msb.let(
        "final", call(outer_gv, m_segs, init, m_w_in, m_b_in, m_w_z, m_b_z, m_w_h, m_b_h)
    )
    msb.ret(op.add(op.dense(final, cls_wt), cls_bias))
    mod.add_function(
        "main",
        function(
            [m_w_in, m_b_in, m_w_z, m_b_z, m_w_h, m_b_h, init, cls_wt, cls_bias, m_segs],
            msb.get(),
            name="main",
        ),
    )

    rng = np.random.default_rng(seed)
    params = {
        "inner_wt": glorot(rng, (H, H)),
        "inner_bias": zeros((1, H)),
        "z_wt": glorot(rng, (2 * H, H)),
        "z_bias": zeros((1, H)),
        "h_wt": glorot(rng, (2 * H, H)),
        "h_bias": zeros((1, H)),
        "init_state": zeros((1, H)),
        "cls_wt": glorot(rng, (H, size.classes)),
        "cls_bias": zeros((1, size.classes)),
    }
    return mod, params


def instance_input(module: IRModule, segments: List[List[int]]) -> Dict[str, Any]:
    """Convert per-segment coin runs (lists of 0/1 ints) into the ADT input."""
    seg_values = [
        module.make_list([np.full((1, 1), float(c), dtype=np.float32) for c in seg])
        for seg in segments
    ]
    return {"segs": module.make_list(seg_values)}


def make_batch(
    module: IRModule,
    size: ModelSize,
    batch_size: int,
    seed: int = 0,
    iter_range: Tuple[int, int] = TEST_ITER_RANGE,
    num_segments_range: Tuple[int, int] = (2, 4),
) -> List[Dict[str, Any]]:
    """Generate per-instance nested iteration structures with seeded
    pseudo-randomness (the paper's methodology for emulating tensor-dependent
    control flow)."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(batch_size):
        n_segs = int(rng.integers(num_segments_range[0], num_segments_range[1] + 1))
        segs = coin_run_lists(n_segs, iter_range[0], iter_range[1], seed=seed * 1000 + i)
        out.append(instance_input(module, segs))
    return out


def build_for(size_name: str, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray], ModelSize]:
    size = get_size("nestedrnn", size_name)
    mod, params = build(size, seed)
    return mod, params, size
