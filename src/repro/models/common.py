"""Shared helpers for model definitions."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..data.trees import TreeNode
from ..ir import ADTValue, IRModule


def glorot(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot-uniform initialization (float32)."""
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    fan_out = shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def make_linear_params(
    rng: np.random.Generator, prefix: str, in_dim: int, out_dim: int
) -> Dict[str, np.ndarray]:
    """Weight + bias pair named ``{prefix}_wt`` / ``{prefix}_bias``."""
    return {
        f"{prefix}_wt": glorot(rng, (in_dim, out_dim)),
        f"{prefix}_bias": zeros((1, out_dim)),
    }


def list_to_adt(module: IRModule, items: Iterable) -> ADTValue:
    """Python list -> prelude ``List`` ADT value."""
    return module.make_list(items)


def adt_to_list(module: IRModule, value: ADTValue) -> List:
    """Prelude ``List`` ADT value -> Python list."""
    return module.from_list(value)


def tree_to_adt(module: IRModule, tree: TreeNode, leaf_payload=None) -> ADTValue:
    """Convert a :class:`~repro.data.trees.TreeNode` into the prelude ``Tree``
    ADT.  ``leaf_payload(tree_node)`` customizes the leaf field (defaults to
    the node's embedding array)."""
    leaf = module.get_constructor("Leaf")
    node = module.get_constructor("Node")

    def convert(t: TreeNode) -> ADTValue:
        if t.is_leaf:
            payload = leaf_payload(t) if leaf_payload is not None else t.embedding
            return ADTValue(leaf, [payload])
        return ADTValue(node, [convert(t.left), convert(t.right)])

    return convert(tree)
