"""MV-RNN (Matrix-Vector Recursive Neural Network, Socher et al. 2012).

Every constituent is represented by a vector *and* a matrix.  Composing two
children multiplies each child's vector by the *other child's matrix* — a
matrix product of two intermediate activations, which is exactly the case
DyNet's first-argument batching heuristic cannot batch (§7.3, Table 7).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..data.trees import TreeNode, random_treebank
from ..ir import (
    ADTDef,
    ADTValue,
    AnyType,
    IRModule,
    ScopeBuilder,
    call,
    concurrent,
    function,
    match,
    op,
    pat_ctor,
    prelude_module,
    tuple_expr,
    tuple_get,
    var,
)
from .common import glorot, zeros
from .configs import ModelSize, get_size


def build(size: ModelSize, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray]]:
    """Build the MV-RNN IR module and parameters."""
    H, C = size.hidden, size.classes
    mod = prelude_module()
    mvtree = mod.add_adt(
        ADTDef(
            "MVTree",
            [("MVLeaf", [AnyType(), AnyType()]), ("MVNode", [AnyType(), AnyType()])],
        )
    )
    leaf_ctor = mvtree.constructor("MVLeaf")
    node_ctor = mvtree.constructor("MVNode")
    cell_gv = mod.get_global_var("mvrnn_cell")

    tree = var("tree")
    w_v, b_v, w_m = var("v_wt"), var("v_bias"), var("m_wt")
    weight_vars = [w_v, b_v, w_m]

    lvec, lmat = var("lvec"), var("lmat")
    leaf_body = tuple_expr(lvec, lmat)

    left, right = var("left"), var("right")
    nsb = ScopeBuilder()
    lcall = call(cell_gv, left, *weight_vars)
    rcall = call(cell_gv, right, *weight_vars)
    concurrent(lcall, rcall)
    lres = nsb.let("lres", lcall)
    rres = nsb.let("rres", rcall)
    la = nsb.let("la", tuple_get(lres, 0))
    lA = nsb.let("lA", tuple_get(lres, 1))
    ra = nsb.let("ra", tuple_get(rres, 0))
    rA = nsb.let("rA", tuple_get(rres, 1))
    # matrix-vector products of *intermediate* activations (unbatchable by
    # DyNet's first-argument heuristic)
    c1 = nsb.let("c1", op.matmul(la, rA))
    c2 = nsb.let("c2", op.matmul(ra, lA))
    vec = nsb.let("vec", op.tanh(op.add(op.dense(op.concat(c1, c2, axis=1), w_v), b_v)))
    mat = nsb.let("mat", op.dense(op.concat(lA, rA, axis=1), w_m))
    nsb.ret(tuple_expr(vec, mat))

    body = match(
        tree,
        [
            (pat_ctor(leaf_ctor, lvec, lmat), leaf_body),
            (pat_ctor(node_ctor, left, right), nsb.get()),
        ],
    )
    mod.add_function("mvrnn_cell", function([tree] + weight_vars, body, name="mvrnn_cell"))

    m_weight_vars = [var(v.name_hint) for v in weight_vars]
    cls_wt, cls_bias = var("cls_wt"), var("cls_bias")
    m_tree = var("tree")
    msb = ScopeBuilder()
    res = msb.let("res", call(cell_gv, m_tree, *m_weight_vars))
    v = msb.let("v", tuple_get(res, 0))
    msb.ret(op.add(op.dense(v, cls_wt), cls_bias))
    mod.add_function(
        "main", function(m_weight_vars + [cls_wt, cls_bias, m_tree], msb.get(), name="main")
    )

    rng = np.random.default_rng(seed)
    params = {
        "v_wt": glorot(rng, (2 * H, H)),
        "v_bias": zeros((1, H)),
        "m_wt": glorot(rng, (2 * H, H)),
        "cls_wt": glorot(rng, (H, C)),
        "cls_bias": zeros((1, C)),
    }
    return mod, params


def instance_input(module: IRModule, tree: TreeNode, seed: int = 0) -> Dict[str, Any]:
    """Convert a parse tree into MV-RNN input: each leaf carries a random
    vector and (near-identity) matrix embedding."""
    leaf = module.get_constructor("MVLeaf")
    node = module.get_constructor("MVNode")
    rng = np.random.default_rng(seed)
    hidden = None

    def convert(t: TreeNode) -> ADTValue:
        nonlocal hidden
        if t.is_leaf:
            vec = t.embedding
            hidden = vec.shape[-1]
            mat = np.eye(hidden, dtype=np.float32) + 0.05 * rng.standard_normal(
                (hidden, hidden)
            ).astype(np.float32)
            return ADTValue(leaf, [vec, mat])
        return ADTValue(node, [convert(t.left), convert(t.right)])

    return {"tree": convert(tree)}


def make_batch(
    module: IRModule, size: ModelSize, batch_size: int, seed: int = 0
) -> List[Dict[str, Any]]:
    trees = random_treebank(batch_size, size.hidden, seed=seed)
    return [instance_input(module, t, seed=seed + i) for i, t in enumerate(trees)]


def build_for(size_name: str, seed: int = 0) -> Tuple[IRModule, Dict[str, np.ndarray], ModelSize]:
    size = get_size("mvrnn", size_name)
    mod, params = build(size, seed)
    return mod, params, size
