"""Expression nodes of the ACROBAT input IR.

The language mirrors the functional subset of Relay used by the paper:
variables, constants, tensor-operator calls, user function definitions and
calls (including recursion), ``let`` bindings, ``if`` conditionals, ``match``
on algebraic data types, tuples, and references to global functions.

Expression identity is *reference* identity (nodes are freely shared as a
DAG); use :func:`repro.ir.struct_eq.structural_equal` for structural
comparisons in tests.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .adt import Constructor, Pattern
from .types import ScalarType, TensorType, Type

_var_counter = itertools.count()


class Expr:
    """Base class of all IR expressions."""

    #: optional type annotation; analyses fill this in where needed
    ty: Optional[Type] = None

    def __init__(self) -> None:
        self.ty = None
        #: free-form metadata used by compiler passes (phase ids, ghost flags...)
        self.attrs: Dict[str, Any] = {}


class Var(Expr):
    """A local variable.

    Each ``Var`` object is a distinct binding site; two variables with the
    same name hint are still different variables.
    """

    def __init__(self, name_hint: str, ty: Optional[Type] = None) -> None:
        super().__init__()
        self.name_hint = name_hint
        self.vid = next(_var_counter)
        self.ty = ty

    @property
    def name(self) -> str:
        return self.name_hint

    def __repr__(self) -> str:
        return f"Var({self.name_hint}#{self.vid})"


class GlobalVar(Expr):
    """A reference to a module-level function, e.g. ``@rnn``."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def __repr__(self) -> str:
        return f"@{self.name}"


class Constant(Expr):
    """A literal constant: a NumPy array, Python float/int/bool."""

    def __init__(self, value: Any, ty: Optional[Type] = None) -> None:
        super().__init__()
        if isinstance(value, np.ndarray):
            value = value.astype(np.float32) if value.dtype.kind == "f" else value
            if ty is None:
                ty = TensorType(value.shape, str(value.dtype))
        elif isinstance(value, bool):
            ty = ty or ScalarType("bool")
        elif isinstance(value, int):
            ty = ty or ScalarType("int32")
        elif isinstance(value, float):
            ty = ty or ScalarType("float32")
        self.value = value
        self.ty = ty

    def __repr__(self) -> str:
        if isinstance(self.value, np.ndarray):
            return f"Constant(array{self.value.shape})"
        return f"Constant({self.value!r})"


class OpRef(Expr):
    """Reference to a primitive tensor operator by name (e.g. ``"dense"``).

    The set of valid operator names and their semantics live in
    :mod:`repro.kernels.registry`; the IR itself is agnostic.
    """

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def __repr__(self) -> str:
        return f"Op({self.name})"


class ConstructorRef(Expr):
    """Reference to an ADT constructor used in call position."""

    def __init__(self, constructor: Constructor) -> None:
        super().__init__()
        self.constructor = constructor

    def __repr__(self) -> str:
        return f"Ctor({self.constructor.adt_name}.{self.constructor.name})"


class Call(Expr):
    """Application of an operator, constructor, global or local function.

    ``attrs`` carries operator attributes (e.g. ``axis`` for ``concat``) and
    compiler annotations:

    * ``concurrent_group``: calls sharing a group id are siblings of a
      fork-join region (the paper's *concurrent* annotation, Fig. 2).
    * ``phase_boundary``: marks the start of a new program phase.
    """

    def __init__(
        self,
        op: Expr,
        args: Sequence[Expr],
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__()
        self.op = op
        self.args: Tuple[Expr, ...] = tuple(args)
        self.attrs = dict(attrs or {})

    def __repr__(self) -> str:
        return f"Call({self.op!r}, {len(self.args)} args)"


class Function(Expr):
    """A (possibly recursive, via :class:`GlobalVar`) function definition.

    ``attrs`` of interest:

    * ``name``: debugging name.
    * ``parallel_map``: set on the prelude ``@map`` so the compiler assigns
      the same depth to every element-wise application (§4.1).
    * ``phase``: optional explicit program-phase override.
    """

    def __init__(
        self,
        params: Sequence[Var],
        body: Expr,
        ret_ty: Optional[Type] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__()
        self.params: Tuple[Var, ...] = tuple(params)
        self.body = body
        self.ret_ty = ret_ty
        self.attrs = dict(attrs or {})

    def __repr__(self) -> str:
        name = self.attrs.get("name", "<fn>")
        return f"Function({name}, {len(self.params)} params)"


class Let(Expr):
    """``let var = value; body``"""

    def __init__(self, var: Var, value: Expr, body: Expr) -> None:
        super().__init__()
        self.var = var
        self.value = value
        self.body = body

    def __repr__(self) -> str:
        return f"Let({self.var!r})"


class If(Expr):
    """Conditional expression.  ``cond`` must evaluate to a host scalar/bool.

    When ``cond`` (transitively) depends on an intermediate tensor value the
    model exhibits *tensor-dependent control flow* and the compiler emits a
    synchronization point before the branch (§4.2).
    """

    def __init__(self, cond: Expr, then_branch: Expr, else_branch: Expr) -> None:
        super().__init__()
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch

    def __repr__(self) -> str:
        return "If(...)"


class Clause:
    """One arm of a :class:`Match`."""

    def __init__(self, pattern: Pattern, body: Expr) -> None:
        self.pattern = pattern
        self.body = body

    def __repr__(self) -> str:
        return f"Clause({self.pattern!r})"


class Match(Expr):
    """Pattern match on an ADT value."""

    def __init__(self, data: Expr, clauses: Sequence[Clause]) -> None:
        super().__init__()
        self.data = data
        self.clauses: Tuple[Clause, ...] = tuple(clauses)

    def __repr__(self) -> str:
        return f"Match({len(self.clauses)} clauses)"


class TupleExpr(Expr):
    """Tuple construction."""

    def __init__(self, fields: Sequence[Expr]) -> None:
        super().__init__()
        self.fields: Tuple[Expr, ...] = tuple(fields)

    def __repr__(self) -> str:
        return f"Tuple({len(self.fields)})"


class TupleGetItem(Expr):
    """Projection of a tuple field."""

    def __init__(self, tup: Expr, index: int) -> None:
        super().__init__()
        self.tup = tup
        self.index = index

    def __repr__(self) -> str:
        return f"TupleGetItem({self.index})"


def is_op_call(expr: Expr, name: Optional[str] = None) -> bool:
    """True if ``expr`` is a call to a primitive operator (optionally a
    specific one)."""
    return (
        isinstance(expr, Call)
        and isinstance(expr.op, OpRef)
        and (name is None or expr.op.name == name)
    )


def is_ctor_call(expr: Expr, name: Optional[str] = None) -> bool:
    """True if ``expr`` is an ADT constructor application."""
    return (
        isinstance(expr, Call)
        and isinstance(expr.op, ConstructorRef)
        and (name is None or expr.op.constructor.name == name)
    )


def is_global_call(expr: Expr, name: Optional[str] = None) -> bool:
    """True if ``expr`` is a call to a module-level function."""
    return (
        isinstance(expr, Call)
        and isinstance(expr.op, GlobalVar)
        and (name is None or expr.op.name == name)
    )


def iter_let_chain(expr: Expr) -> Tuple[List[Tuple[Var, Expr]], Expr]:
    """Split a nested chain of ``Let`` bindings into (bindings, final body)."""
    bindings: List[Tuple[Var, Expr]] = []
    while isinstance(expr, Let):
        bindings.append((expr.var, expr.value))
        expr = expr.body
    return bindings, expr


def make_let_chain(bindings: Iterable[Tuple[Var, Expr]], body: Expr) -> Expr:
    """Inverse of :func:`iter_let_chain`."""
    result = body
    for var, value in reversed(list(bindings)):
        result = Let(var, value, result)
    return result
