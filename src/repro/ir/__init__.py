"""The ACROBAT input IR: a small Relay-like functional language.

Public surface:

* types: :class:`TensorType`, :class:`ScalarType`, :class:`ListType`,
  :class:`TupleType`, :class:`FuncType`, :class:`ADTType`
* expressions: :class:`Var`, :class:`GlobalVar`, :class:`Constant`,
  :class:`Call`, :class:`Function`, :class:`Let`, :class:`If`,
  :class:`Match`, :class:`TupleExpr`, :class:`TupleGetItem`, :class:`OpRef`,
  :class:`ConstructorRef`
* ADTs and patterns: :class:`ADTDef`, :class:`Constructor`,
  :class:`ADTValue`, pattern classes
* :class:`IRModule` and :func:`prelude_module`
* builders: :data:`op`, :class:`ScopeBuilder`, :func:`function`, ...
* utilities: :func:`free_vars`, :func:`structural_equal`, printers
"""

from .adt import (
    ADTDef,
    ADTValue,
    Constructor,
    Pattern,
    PatternConstructor,
    PatternTuple,
    PatternVar,
    PatternWildcard,
    pattern_bound_vars,
)
from .builder import (
    ScopeBuilder,
    call,
    concurrent,
    const,
    ctor,
    function,
    if_else,
    match,
    op,
    pat_ctor,
    pat_var,
    pat_wild,
    phase_boundary,
    tuple_expr,
    tuple_get,
    var,
)
from .expr import (
    Call,
    Clause,
    Constant,
    ConstructorRef,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    OpRef,
    TupleExpr,
    TupleGetItem,
    Var,
    is_ctor_call,
    is_global_call,
    is_op_call,
    iter_let_chain,
    make_let_chain,
)
from .module import IRModule, PRELUDE_FUNCTIONS, prelude_module
from .printer import expr_to_text, function_to_text, module_to_text
from .struct_eq import structural_equal
from .types import (
    ADTType,
    AnyType,
    FuncType,
    ListType,
    ScalarType,
    TensorType,
    TupleType,
    Type,
    is_scalar,
    is_tensor,
)
from .visitor import ExprMutator, ExprVisitor, collect, free_vars, post_order

__all__ = [
    # types
    "Type", "TensorType", "ScalarType", "ListType", "TupleType", "FuncType",
    "ADTType", "AnyType", "is_tensor", "is_scalar",
    # adt
    "ADTDef", "ADTValue", "Constructor", "Pattern", "PatternConstructor",
    "PatternTuple", "PatternVar", "PatternWildcard", "pattern_bound_vars",
    # expr
    "Expr", "Var", "GlobalVar", "Constant", "Call", "Clause", "Function",
    "Let", "If", "Match", "TupleExpr", "TupleGetItem", "OpRef",
    "ConstructorRef", "is_op_call", "is_ctor_call", "is_global_call",
    "iter_let_chain", "make_let_chain",
    # module
    "IRModule", "prelude_module", "PRELUDE_FUNCTIONS",
    # builder
    "op", "var", "const", "call", "ctor", "function", "if_else", "match",
    "pat_ctor", "pat_var", "pat_wild", "tuple_expr", "tuple_get",
    "ScopeBuilder", "concurrent", "phase_boundary",
    # visitors / utils
    "ExprVisitor", "ExprMutator", "post_order", "collect", "free_vars",
    "structural_equal", "expr_to_text", "function_to_text", "module_to_text",
]
