"""IR modules and the prelude.

An :class:`IRModule` holds a set of global functions (one of which is
``main``), the ADT definitions they use, and convenience accessors.  The
prelude pre-defines the ``List`` ADT and the higher-order functions ``@map``,
``@foldl`` and ``@reverse`` used throughout the paper's models.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List


from .adt import ADTDef, ADTValue, Constructor, PatternConstructor, PatternVar
from .expr import Call, Clause, ConstructorRef, Function, GlobalVar, Match, Var
from .types import AnyType


class IRModule:
    """A collection of global functions and ADT definitions."""

    def __init__(self) -> None:
        self.functions: Dict[str, Function] = {}
        self.adts: Dict[str, ADTDef] = {}
        self._global_vars: Dict[str, GlobalVar] = {}

    # -- globals ------------------------------------------------------------
    def get_global_var(self, name: str) -> GlobalVar:
        """Return the (unique) :class:`GlobalVar` for ``name``, creating it
        if needed so recursive/mutually-recursive definitions can reference
        functions before their bodies exist."""
        if name not in self._global_vars:
            self._global_vars[name] = GlobalVar(name)
        return self._global_vars[name]

    def add_function(self, name: str, func: Function) -> GlobalVar:
        """Register ``func`` under ``name`` and return its global var."""
        func.attrs.setdefault("name", name)
        self.functions[name] = func
        return self.get_global_var(name)

    def __getitem__(self, name: str) -> Function:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    @property
    def main(self) -> Function:
        """The entry function.  Its parameters are the model parameters plus
        the per-instance input(s)."""
        return self.functions["main"]

    # -- ADTs ---------------------------------------------------------------
    def add_adt(self, adt: ADTDef) -> ADTDef:
        self.adts[adt.name] = adt
        return adt

    def get_constructor(self, name: str) -> Constructor:
        """Find a constructor by name across all registered ADTs."""
        for adt in self.adts.values():
            if name in adt:
                return adt.constructor(name)
        raise KeyError(f"no constructor named {name}")

    # -- convenience runtime value builders ----------------------------------
    def make_list(self, items: Iterable[Any]) -> ADTValue:
        """Build a runtime ``List`` ADT value from a Python iterable."""
        nil = self.get_constructor("Nil")
        cons = self.get_constructor("Cons")
        value: ADTValue = ADTValue(nil, [])
        for item in reversed(list(items)):
            value = ADTValue(cons, [item, value])
        return value

    def from_list(self, value: ADTValue) -> List[Any]:
        """Convert a runtime ``List`` ADT value back into a Python list."""
        out: List[Any] = []
        while value.constructor.name == "Cons":
            out.append(value.fields[0])
            value = value.fields[1]
        return out

    def copy(self) -> "IRModule":
        """Shallow copy (functions are shared; used by non-destructive passes
        that replace whole function entries)."""
        new = IRModule()
        new.functions = dict(self.functions)
        new.adts = dict(self.adts)
        new._global_vars = dict(self._global_vars)
        return new


# ---------------------------------------------------------------------------
# Prelude
# ---------------------------------------------------------------------------


def _define_list(mod: IRModule) -> ADTDef:
    return mod.add_adt(ADTDef("List", [("Nil", []), ("Cons", [AnyType(), AnyType()])]))


def _define_tree(mod: IRModule) -> ADTDef:
    """Binary tree ADT used by TreeLSTM / MV-RNN.

    ``Leaf(embedding)`` and ``Node(left, right)``; some models use
    ``NodeWithTag(left, right, tag)`` style payloads which they define
    themselves.
    """
    return mod.add_adt(ADTDef("Tree", [("Leaf", [AnyType()]), ("Node", [AnyType(), AnyType()])]))


def _define_map(mod: IRModule) -> None:
    lst = mod.adts["List"]
    nil, cons = lst.constructor("Nil"), lst.constructor("Cons")
    f = Var("f")
    xs = Var("xs")
    h, t = Var("h"), Var("t")
    map_gv = mod.get_global_var("map")
    body = Match(
        xs,
        [
            Clause(PatternConstructor(nil, []), Call(ConstructorRef(nil), [])),
            Clause(
                PatternConstructor(cons, [PatternVar(h), PatternVar(t)]),
                Call(
                    ConstructorRef(cons),
                    [Call(f, [h]), Call(map_gv, [f, t])],
                ),
            ),
        ],
    )
    mod.add_function("map", Function([f, xs], body, attrs={"parallel_map": True}))


def _define_foldl(mod: IRModule) -> None:
    lst = mod.adts["List"]
    nil, cons = lst.constructor("Nil"), lst.constructor("Cons")
    f, acc, xs = Var("f"), Var("acc"), Var("xs")
    h, t = Var("h"), Var("t")
    foldl_gv = mod.get_global_var("foldl")
    body = Match(
        xs,
        [
            Clause(PatternConstructor(nil, []), acc),
            Clause(
                PatternConstructor(cons, [PatternVar(h), PatternVar(t)]),
                Call(foldl_gv, [f, Call(f, [acc, h]), t]),
            ),
        ],
    )
    mod.add_function("foldl", Function([f, acc, xs], body))


def _define_reverse(mod: IRModule) -> None:
    lst = mod.adts["List"]
    nil, cons = lst.constructor("Nil"), lst.constructor("Cons")
    xs, acc = Var("xs"), Var("acc")
    h, t = Var("h"), Var("t")
    helper_gv = mod.get_global_var("rev_append")
    body = Match(
        xs,
        [
            Clause(PatternConstructor(nil, []), acc),
            Clause(
                PatternConstructor(cons, [PatternVar(h), PatternVar(t)]),
                Call(helper_gv, [t, Call(ConstructorRef(cons), [h, acc])]),
            ),
        ],
    )
    mod.add_function("rev_append", Function([xs, acc], body, attrs={"structural": True}))

    ys = Var("ys")
    rev_body = Call(helper_gv, [ys, Call(ConstructorRef(nil), [])])
    mod.add_function("reverse", Function([ys], rev_body, attrs={"structural": True}))


def prelude_module() -> IRModule:
    """Create a fresh module pre-populated with the prelude (List/Tree ADTs
    and ``map``/``foldl``/``reverse``)."""
    mod = IRModule()
    _define_list(mod)
    _define_tree(mod)
    _define_map(mod)
    _define_foldl(mod)
    _define_reverse(mod)
    return mod


PRELUDE_FUNCTIONS = ("map", "foldl", "reverse", "rev_append")
