"""Algebraic data types (ADTs) and match patterns.

Dynamic models in the paper consume irregular data structures: linked lists
of token embeddings (RNN/BiRNN/StackRNN), binary parse trees (TreeLSTM,
MV-RNN) and generated trees (DRNN).  These are expressed as ADTs, consumed
with ``match`` expressions and produced with constructor calls, exactly as in
the paper's Relay listings.

At runtime ADT values are represented by :class:`ADTValue`, a tagged record
holding field values (NumPy arrays, lazy tensors, nested ADT values, ...).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from .types import Type


class Constructor:
    """A constructor of an algebraic data type.

    Parameters
    ----------
    name:
        Constructor name, e.g. ``"Cons"``.
    arg_types:
        Types of the constructor fields (may be ``AnyType`` for generics).
    adt_name:
        Name of the ADT this constructor belongs to.
    tag:
        Dense integer tag used by the runtime representation and the AOT
        generated code for cheap dispatch.
    """

    def __init__(self, name: str, arg_types: Sequence[Type], adt_name: str, tag: int) -> None:
        self.name = name
        self.arg_types: Tuple[Type, ...] = tuple(arg_types)
        self.adt_name = adt_name
        self.tag = tag

    @property
    def arity(self) -> int:
        return len(self.arg_types)

    def __repr__(self) -> str:
        return f"Constructor({self.adt_name}.{self.name}/{self.arity})"


class ADTDef:
    """Definition of an algebraic data type: a name plus its constructors."""

    def __init__(self, name: str, constructor_specs: Sequence[Tuple[str, Sequence[Type]]]) -> None:
        self.name = name
        self.constructors: List[Constructor] = [
            Constructor(cname, ctypes, name, tag)
            for tag, (cname, ctypes) in enumerate(constructor_specs)
        ]
        self._by_name = {c.name: c for c in self.constructors}

    def constructor(self, name: str) -> Constructor:
        """Look up a constructor by name."""
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        return f"ADTDef({self.name}, {[c.name for c in self.constructors]})"


class ADTValue:
    """Runtime representation of an ADT value (used by the VM, the AOT
    generated code and the baselines alike)."""

    __slots__ = ("constructor", "fields")

    def __init__(self, constructor: Constructor, fields: Sequence[Any]) -> None:
        if len(fields) != constructor.arity:
            raise ValueError(
                f"constructor {constructor.name} expects {constructor.arity} fields, "
                f"got {len(fields)}"
            )
        self.constructor = constructor
        self.fields: Tuple[Any, ...] = tuple(fields)

    @property
    def tag(self) -> int:
        return self.constructor.tag

    def __repr__(self) -> str:
        return f"{self.constructor.name}({', '.join(repr(f) for f in self.fields)})"


# ---------------------------------------------------------------------------
# Match patterns
# ---------------------------------------------------------------------------


class Pattern:
    """Base class of match patterns."""


class PatternWildcard(Pattern):
    """Matches anything, binds nothing."""

    def __repr__(self) -> str:
        return "_"


class PatternVar(Pattern):
    """Matches anything and binds it to ``var``."""

    def __init__(self, var) -> None:
        self.var = var

    def __repr__(self) -> str:
        return f"{self.var.name}"


class PatternConstructor(Pattern):
    """Matches a specific constructor and recursively matches its fields."""

    def __init__(self, constructor: Constructor, patterns: Optional[Sequence[Pattern]] = None) -> None:
        self.constructor = constructor
        self.patterns: Tuple[Pattern, ...] = tuple(patterns or ())
        if self.patterns and len(self.patterns) != constructor.arity:
            raise ValueError(
                f"pattern for {constructor.name} must have {constructor.arity} sub-patterns"
            )

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.patterns)
        return f"{self.constructor.name}({inner})"


class PatternTuple(Pattern):
    """Destructures a tuple value."""

    def __init__(self, patterns: Sequence[Pattern]) -> None:
        self.patterns: Tuple[Pattern, ...] = tuple(patterns)

    def __repr__(self) -> str:
        return "(" + ", ".join(repr(p) for p in self.patterns) + ")"


def pattern_bound_vars(pattern: Pattern) -> List:
    """All variables bound by ``pattern`` in left-to-right order."""
    out: List = []

    def rec(p: Pattern) -> None:
        if isinstance(p, PatternVar):
            out.append(p.var)
        elif isinstance(p, (PatternConstructor, PatternTuple)):
            for sub in p.patterns:
                rec(sub)

    rec(pattern)
    return out


def matches(pattern: Pattern, value: Any) -> bool:
    """Whether ``value`` matches ``pattern`` (ignoring bindings)."""
    if isinstance(pattern, (PatternWildcard, PatternVar)):
        return True
    if isinstance(pattern, PatternConstructor):
        if not isinstance(value, ADTValue) or value.constructor.name != pattern.constructor.name:
            return False
        if not pattern.patterns:
            return True
        return all(matches(p, f) for p, f in zip(pattern.patterns, value.fields))
    if isinstance(pattern, PatternTuple):
        if not isinstance(value, tuple) or len(value) != len(pattern.patterns):
            return False
        return all(matches(p, f) for p, f in zip(pattern.patterns, value))
    raise TypeError(f"unknown pattern {pattern!r}")


def bind(pattern: Pattern, value: Any, env: dict) -> None:
    """Bind the variables of ``pattern`` against ``value`` into ``env``.

    The environment is keyed by ``id(var)`` (binding sites are identified by
    object identity throughout the IR)."""
    if isinstance(pattern, PatternWildcard):
        return
    if isinstance(pattern, PatternVar):
        env[id(pattern.var)] = value
        return
    if isinstance(pattern, PatternConstructor):
        if pattern.patterns:
            for p, f in zip(pattern.patterns, value.fields):
                bind(p, f, env)
        return
    if isinstance(pattern, PatternTuple):
        for p, f in zip(pattern.patterns, value):
            bind(p, f, env)
        return
    raise TypeError(f"unknown pattern {pattern!r}")
