"""Convenience builders for constructing IR programs.

Model definitions (see :mod:`repro.models`) use two helpers:

* :data:`op` — an operator namespace: ``op.dense(x, w)`` builds a
  ``Call(OpRef("dense"), (x, w))``; keyword arguments become operator attrs.
* :class:`ScopeBuilder` — sequential ``let`` construction mirroring the
  paper's listings::

      sb = ScopeBuilder()
      lin = sb.let("inp_linear", op.add(bias, op.dense(inp, i_wt)))
      new_state = sb.let("new_state", op.sigmoid(op.add(lin, op.dense(state, h_wt))))
      sb.ret(...)
      body = sb.get()
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .adt import Constructor, Pattern, PatternConstructor, PatternVar, PatternWildcard
from .expr import (
    Call,
    Clause,
    Constant,
    ConstructorRef,
    Expr,
    Function,
    If,
    Let,
    Match,
    OpRef,
    TupleExpr,
    TupleGetItem,
    Var,
)
from .types import Type


def _wrap(value: Any) -> Expr:
    """Lift Python / NumPy literals into :class:`Constant` nodes."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, bool, np.ndarray)):
        return Constant(value)
    raise TypeError(f"cannot lift {type(value).__name__} into the IR")


class _OpNamespace:
    """Builds primitive-operator calls via attribute access."""

    def __getattr__(self, name: str):
        def make(*args: Any, **attrs: Any) -> Call:
            return Call(OpRef(name), [_wrap(a) for a in args], attrs=attrs or None)

        make.__name__ = name
        return make


#: operator call namespace, e.g. ``op.dense(x, w)``
op = _OpNamespace()


def var(name: str, ty: Optional[Type] = None) -> Var:
    """Create a fresh local variable."""
    return Var(name, ty)


def const(value: Any) -> Constant:
    """Create a constant from a Python or NumPy literal."""
    return Constant(value)


def call(fn: Expr, *args: Any, **attrs: Any) -> Call:
    """Call a function value, global or constructor reference."""
    return Call(fn, [_wrap(a) for a in args], attrs=attrs or None)


def ctor(constructor: Constructor, *args: Any) -> Call:
    """Apply an ADT constructor."""
    return Call(ConstructorRef(constructor), [_wrap(a) for a in args])


def concurrent(*calls: Call, group: Optional[str] = None) -> Tuple[Call, ...]:
    """Mark ``calls`` as concurrent siblings (the paper's fork-join
    annotation, Fig. 2).  Returns the same call objects for inline use."""
    gid = group or f"cc{id(calls[0])}"
    for c in calls:
        c.attrs["concurrent_group"] = gid
    return calls


def phase_boundary(call_expr: Call) -> Call:
    """Explicitly mark ``call_expr`` as starting a new program phase
    (overrides the compiler's phase heuristic, §4.1)."""
    call_expr.attrs["phase_boundary"] = True
    return call_expr


class ScopeBuilder:
    """Builds a chain of ``let`` bindings in statement order."""

    def __init__(self) -> None:
        self._bindings: List[Tuple[Var, Expr]] = []
        self._ret: Optional[Expr] = None

    def let(self, name: str, value: Any, ty: Optional[Type] = None) -> Var:
        """Bind ``value`` to a fresh variable named ``name`` and return it."""
        v = Var(name, ty)
        self._bindings.append((v, _wrap(value)))
        return v

    def ret(self, value: Any) -> None:
        """Set the final expression of the scope."""
        self._ret = _wrap(value)

    def get(self) -> Expr:
        """Materialize the nested ``Let`` expression."""
        if self._ret is None:
            raise ValueError("ScopeBuilder.ret() was never called")
        body = self._ret
        for v, value in reversed(self._bindings):
            body = Let(v, value, body)
        return body


def function(
    params: Sequence[Var],
    body: Expr,
    ret_ty: Optional[Type] = None,
    name: Optional[str] = None,
    **attrs: Any,
) -> Function:
    """Create a :class:`Function` with optional attrs."""
    all_attrs: Dict[str, Any] = dict(attrs)
    if name is not None:
        all_attrs["name"] = name
    return Function(params, body, ret_ty, all_attrs)


def if_else(cond: Any, then_branch: Any, else_branch: Any) -> If:
    """Create an ``if`` expression."""
    return If(_wrap(cond), _wrap(then_branch), _wrap(else_branch))


def match(
    data: Expr,
    clauses: Sequence[Tuple[Pattern, Any]],
) -> Match:
    """Create a ``match`` expression from (pattern, body) pairs."""
    return Match(data, [Clause(p, _wrap(b)) for p, b in clauses])


def pat_ctor(constructor: Constructor, *subpatterns: Union[Pattern, Var, None]) -> PatternConstructor:
    """Pattern matching a constructor; sub-patterns may be ``Var`` (shorthand
    for :class:`PatternVar`), ``None`` (wildcard) or nested patterns."""
    pats: List[Pattern] = []
    for p in subpatterns:
        if p is None:
            pats.append(PatternWildcard())
        elif isinstance(p, Var):
            pats.append(PatternVar(p))
        else:
            pats.append(p)
    return PatternConstructor(constructor, pats)


def pat_var(v: Var) -> PatternVar:
    """Pattern binding the whole scrutinee to ``v``."""
    return PatternVar(v)


def pat_wild() -> PatternWildcard:
    """Wildcard pattern."""
    return PatternWildcard()


def tuple_expr(*fields: Any) -> TupleExpr:
    """Tuple construction."""
    return TupleExpr([_wrap(f) for f in fields])


def tuple_get(tup: Expr, index: int) -> TupleGetItem:
    """Tuple projection."""
    return TupleGetItem(tup, index)
