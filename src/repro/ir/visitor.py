"""Expression visitors and mutators.

``ExprVisitor`` performs a memoized traversal of the expression DAG;
``ExprMutator`` rebuilds expressions bottom-up, preserving sharing.  All
compiler passes and analyses are built on these.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set

from .expr import (
    Call,
    Clause,
    Constant,
    ConstructorRef,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    OpRef,
    TupleExpr,
    TupleGetItem,
    Var,
)


class ExprVisitor:
    """Memoized read-only traversal over an expression DAG."""

    def __init__(self) -> None:
        self._memo: Set[int] = set()

    def visit(self, expr: Expr) -> None:
        key = id(expr)
        if key in self._memo:
            return
        self._memo.add(key)
        method = getattr(self, f"visit_{type(expr).__name__.lower()}", None)
        if method is None:
            raise TypeError(f"no visitor for {type(expr).__name__}")
        method(expr)

    # -- leaf nodes ---------------------------------------------------------
    def visit_var(self, expr: Var) -> None:
        pass

    def visit_globalvar(self, expr: GlobalVar) -> None:
        pass

    def visit_constant(self, expr: Constant) -> None:
        pass

    def visit_opref(self, expr: OpRef) -> None:
        pass

    def visit_constructorref(self, expr: ConstructorRef) -> None:
        pass

    # -- compound nodes -----------------------------------------------------
    def visit_call(self, expr: Call) -> None:
        self.visit(expr.op)
        for arg in expr.args:
            self.visit(arg)

    def visit_function(self, expr: Function) -> None:
        for p in expr.params:
            self.visit(p)
        self.visit(expr.body)

    def visit_let(self, expr: Let) -> None:
        self.visit(expr.var)
        self.visit(expr.value)
        self.visit(expr.body)

    def visit_if(self, expr: If) -> None:
        self.visit(expr.cond)
        self.visit(expr.then_branch)
        self.visit(expr.else_branch)

    def visit_match(self, expr: Match) -> None:
        self.visit(expr.data)
        for clause in expr.clauses:
            self.visit(clause.body)

    def visit_tupleexpr(self, expr: TupleExpr) -> None:
        for f in expr.fields:
            self.visit(f)

    def visit_tuplegetitem(self, expr: TupleGetItem) -> None:
        self.visit(expr.tup)


class ExprMutator:
    """Bottom-up rewriting of an expression DAG with sharing preserved."""

    def __init__(self) -> None:
        self._memo: Dict[int, Expr] = {}

    def visit(self, expr: Expr) -> Expr:
        key = id(expr)
        if key in self._memo:
            return self._memo[key]
        method = getattr(self, f"visit_{type(expr).__name__.lower()}", None)
        if method is None:
            raise TypeError(f"no mutator for {type(expr).__name__}")
        result = method(expr)
        self._memo[key] = result
        return result

    # -- leaf nodes ---------------------------------------------------------
    def visit_var(self, expr: Var) -> Expr:
        return expr

    def visit_globalvar(self, expr: GlobalVar) -> Expr:
        return expr

    def visit_constant(self, expr: Constant) -> Expr:
        return expr

    def visit_opref(self, expr: OpRef) -> Expr:
        return expr

    def visit_constructorref(self, expr: ConstructorRef) -> Expr:
        return expr

    # -- compound nodes -----------------------------------------------------
    def visit_call(self, expr: Call) -> Expr:
        op = self.visit(expr.op)
        args = [self.visit(a) for a in expr.args]
        if op is expr.op and all(a is b for a, b in zip(args, expr.args)):
            return expr
        new = Call(op, args, dict(expr.attrs))
        new.ty = expr.ty
        return new

    def visit_function(self, expr: Function) -> Expr:
        body = self.visit(expr.body)
        if body is expr.body:
            return expr
        new = Function(expr.params, body, expr.ret_ty, dict(expr.attrs))
        new.ty = expr.ty
        return new

    def visit_let(self, expr: Let) -> Expr:
        value = self.visit(expr.value)
        body = self.visit(expr.body)
        if value is expr.value and body is expr.body:
            return expr
        new = Let(expr.var, value, body)
        new.ty = expr.ty
        return new

    def visit_if(self, expr: If) -> Expr:
        cond = self.visit(expr.cond)
        then_branch = self.visit(expr.then_branch)
        else_branch = self.visit(expr.else_branch)
        if (
            cond is expr.cond
            and then_branch is expr.then_branch
            and else_branch is expr.else_branch
        ):
            return expr
        new = If(cond, then_branch, else_branch)
        new.ty = expr.ty
        new.attrs = dict(expr.attrs)
        return new

    def visit_match(self, expr: Match) -> Expr:
        data = self.visit(expr.data)
        clauses = [Clause(c.pattern, self.visit(c.body)) for c in expr.clauses]
        if data is expr.data and all(c.body is o.body for c, o in zip(clauses, expr.clauses)):
            return expr
        new = Match(data, clauses)
        new.ty = expr.ty
        new.attrs = dict(expr.attrs)
        return new

    def visit_tupleexpr(self, expr: TupleExpr) -> Expr:
        fields = [self.visit(f) for f in expr.fields]
        if all(a is b for a, b in zip(fields, expr.fields)):
            return expr
        new = TupleExpr(fields)
        new.ty = expr.ty
        return new

    def visit_tuplegetitem(self, expr: TupleGetItem) -> Expr:
        tup = self.visit(expr.tup)
        if tup is expr.tup:
            return expr
        new = TupleGetItem(tup, expr.index)
        new.ty = expr.ty
        return new


def post_order(expr: Expr, callback: Callable[[Expr], None]) -> None:
    """Apply ``callback`` to every sub-expression in post-order (each node
    visited once even if shared)."""

    class _Walker(ExprVisitor):
        def visit(self, e: Expr) -> None:  # type: ignore[override]
            if id(e) in self._memo:
                return
            super().visit(e)
            callback(e)

    _Walker().visit(expr)


def collect(expr: Expr, predicate: Callable[[Expr], bool]) -> List[Expr]:
    """Collect all sub-expressions satisfying ``predicate`` in post-order."""
    out: List[Expr] = []
    post_order(expr, lambda e: out.append(e) if predicate(e) else None)
    return out


def free_vars(expr: Expr) -> List[Var]:
    """Free variables of ``expr`` in first-use order."""
    bound: Set[int] = set()
    free: List[Var] = []
    seen_free: Set[int] = set()

    def rec(e: Expr) -> None:
        if isinstance(e, Var):
            if id(e) not in bound and id(e) not in seen_free:
                seen_free.add(id(e))
                free.append(e)
            return
        if isinstance(e, (GlobalVar, Constant, OpRef, ConstructorRef)):
            return
        if isinstance(e, Call):
            rec(e.op)
            for a in e.args:
                rec(a)
            return
        if isinstance(e, Function):
            saved = {id(p) for p in e.params}
            added = saved - bound
            bound.update(added)
            rec(e.body)
            bound.difference_update(added)
            return
        if isinstance(e, Let):
            rec(e.value)
            added = {id(e.var)} - bound
            bound.update(added)
            rec(e.body)
            bound.difference_update(added)
            return
        if isinstance(e, If):
            rec(e.cond)
            rec(e.then_branch)
            rec(e.else_branch)
            return
        if isinstance(e, Match):
            rec(e.data)
            from .adt import pattern_bound_vars

            for clause in e.clauses:
                pvars = {id(v) for v in pattern_bound_vars(clause.pattern)}
                added = pvars - bound
                bound.update(added)
                rec(clause.body)
                bound.difference_update(added)
            return
        if isinstance(e, TupleExpr):
            for f in e.fields:
                rec(f)
            return
        if isinstance(e, TupleGetItem):
            rec(e.tup)
            return
        raise TypeError(f"unknown expr {type(e).__name__}")

    rec(expr)
    return free
