"""Pretty printer for the IR (Relay-style text format).

Used in error messages, tests and the examples; the text form is not
re-parsed anywhere, it is purely for human consumption.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .adt import PatternConstructor, PatternTuple, PatternVar, PatternWildcard
from .expr import (
    Call,
    Constant,
    ConstructorRef,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    OpRef,
    TupleExpr,
    TupleGetItem,
    Var,
)
from .module import IRModule


class _Printer:
    def __init__(self) -> None:
        self._var_names: Dict[int, str] = {}
        self._name_counts: Dict[str, int] = {}

    def _name(self, v: Var) -> str:
        if id(v) not in self._var_names:
            base = v.name_hint or "v"
            count = self._name_counts.get(base, 0)
            self._name_counts[base] = count + 1
            self._var_names[id(v)] = base if count == 0 else f"{base}_{count}"
        return "%" + self._var_names[id(v)]

    def _pattern(self, p) -> str:
        if isinstance(p, PatternWildcard):
            return "_"
        if isinstance(p, PatternVar):
            return self._name(p.var)
        if isinstance(p, PatternConstructor):
            if not p.patterns:
                return p.constructor.name
            return f"{p.constructor.name}({', '.join(self._pattern(s) for s in p.patterns)})"
        if isinstance(p, PatternTuple):
            return "(" + ", ".join(self._pattern(s) for s in p.patterns) + ")"
        return repr(p)

    def expr(self, e: Expr, indent: int = 0) -> str:
        pad = "  " * indent
        if isinstance(e, Var):
            return self._name(e)
        if isinstance(e, GlobalVar):
            return f"@{e.name}"
        if isinstance(e, OpRef):
            return e.name
        if isinstance(e, ConstructorRef):
            return e.constructor.name
        if isinstance(e, Constant):
            if isinstance(e.value, np.ndarray):
                return f"const<{list(e.value.shape)}>"
            return repr(e.value)
        if isinstance(e, Call):
            args = ", ".join(self.expr(a, indent) for a in e.args)
            attrs = ""
            shown = {k: v for k, v in e.attrs.items() if k not in ("span",)}
            if shown:
                attrs = " /*" + ", ".join(f"{k}={v}" for k, v in shown.items()) + "*/"
            return f"{self.expr(e.op, indent)}({args}){attrs}"
        if isinstance(e, Let):
            lines: List[str] = []
            cur: Expr = e
            while isinstance(cur, Let):
                lines.append(
                    f"{pad}let {self._name(cur.var)} = {self.expr(cur.value, indent)};"
                )
                cur = cur.body
            lines.append(f"{pad}{self.expr(cur, indent)}")
            return "\n".join(lines)
        if isinstance(e, If):
            return (
                f"if ({self.expr(e.cond, indent)}) {{\n"
                f"{'  ' * (indent + 1)}{self.expr(e.then_branch, indent + 1)}\n"
                f"{pad}}} else {{\n"
                f"{'  ' * (indent + 1)}{self.expr(e.else_branch, indent + 1)}\n"
                f"{pad}}}"
            )
        if isinstance(e, Match):
            clauses = []
            for c in e.clauses:
                body = self.expr(c.body, indent + 2)
                clauses.append(f"{'  ' * (indent + 1)}{self._pattern(c.pattern)} => {{\n{body}\n{'  ' * (indent + 1)}}}")
            return f"match ({self.expr(e.data, indent)}) {{\n" + ",\n".join(clauses) + f"\n{pad}}}"
        if isinstance(e, Function):
            params = ", ".join(
                f"{self._name(p)}" + (f": {p.ty}" if p.ty is not None else "") for p in e.params
            )
            body = self.expr(e.body, indent + 1)
            return f"fn ({params}) {{\n{body}\n{pad}}}"
        if isinstance(e, TupleExpr):
            return "(" + ", ".join(self.expr(f, indent) for f in e.fields) + ")"
        if isinstance(e, TupleGetItem):
            return f"{self.expr(e.tup, indent)}.{e.index}"
        return repr(e)


def expr_to_text(expr: Expr) -> str:
    """Render a single expression."""
    return _Printer().expr(expr)


def function_to_text(name: str, func: Function) -> str:
    """Render one global function definition."""
    printer = _Printer()
    params = ", ".join(
        printer._name(p) + (f": {p.ty}" if p.ty is not None else "") for p in func.params
    )
    attrs = {k: v for k, v in func.attrs.items() if k != "name"}
    attr_str = f"  /* {attrs} */" if attrs else ""
    body = printer.expr(func.body, 1)
    return f"def @{name}({params}) {{{attr_str}\n{body}\n}}"


def module_to_text(mod: IRModule, include_prelude: bool = False) -> str:
    """Render a whole module; prelude functions are omitted by default."""
    from .module import PRELUDE_FUNCTIONS

    parts: List[str] = []
    for name, func in mod.functions.items():
        if not include_prelude and name in PRELUDE_FUNCTIONS:
            continue
        parts.append(function_to_text(name, func))
    return "\n\n".join(parts)
