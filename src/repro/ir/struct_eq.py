"""Structural equality of IR expressions.

Used by tests and by pass-idempotence checks.  Two expressions are
structurally equal when they have the same shape up to alpha-renaming of
bound variables and elementwise-equal constants.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .adt import (
    Pattern,
    PatternConstructor,
    PatternTuple,
    PatternVar,
    PatternWildcard,
)
from .expr import (
    Call,
    Constant,
    ConstructorRef,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    OpRef,
    TupleExpr,
    TupleGetItem,
    Var,
)


def structural_equal(lhs: Expr, rhs: Expr) -> bool:
    """Return True when ``lhs`` and ``rhs`` are structurally equal."""
    return _Comparator().equal(lhs, rhs)


class _Comparator:
    def __init__(self) -> None:
        self._var_map: Dict[int, int] = {}

    def equal(self, a: Expr, b: Expr) -> bool:
        if type(a) is not type(b):
            return False
        if isinstance(a, Var):
            mapped = self._var_map.get(id(a))
            if mapped is not None:
                return mapped == id(b)
            # free variables must be identical objects
            return a is b
        if isinstance(a, GlobalVar):
            return a.name == b.name
        if isinstance(a, OpRef):
            return a.name == b.name
        if isinstance(a, ConstructorRef):
            return (
                a.constructor.name == b.constructor.name
                and a.constructor.adt_name == b.constructor.adt_name
            )
        if isinstance(a, Constant):
            av, bv = a.value, b.value
            if isinstance(av, np.ndarray) or isinstance(bv, np.ndarray):
                return (
                    isinstance(av, np.ndarray)
                    and isinstance(bv, np.ndarray)
                    and av.shape == bv.shape
                    and np.allclose(av, bv)
                )
            return av == bv
        if isinstance(a, Call):
            return (
                self.equal(a.op, b.op)
                and len(a.args) == len(b.args)
                and all(self.equal(x, y) for x, y in zip(a.args, b.args))
                and _attrs_equal(a.attrs, b.attrs)
            )
        if isinstance(a, Function):
            if len(a.params) != len(b.params):
                return False
            for pa, pb in zip(a.params, b.params):
                self._var_map[id(pa)] = id(pb)
            return self.equal(a.body, b.body)
        if isinstance(a, Let):
            if not self.equal(a.value, b.value):
                return False
            self._var_map[id(a.var)] = id(b.var)
            return self.equal(a.body, b.body)
        if isinstance(a, If):
            return (
                self.equal(a.cond, b.cond)
                and self.equal(a.then_branch, b.then_branch)
                and self.equal(a.else_branch, b.else_branch)
            )
        if isinstance(a, Match):
            if len(a.clauses) != len(b.clauses) or not self.equal(a.data, b.data):
                return False
            for ca, cb in zip(a.clauses, b.clauses):
                if not self._pattern_equal(ca.pattern, cb.pattern):
                    return False
                if not self.equal(ca.body, cb.body):
                    return False
            return True
        if isinstance(a, TupleExpr):
            return len(a.fields) == len(b.fields) and all(
                self.equal(x, y) for x, y in zip(a.fields, b.fields)
            )
        if isinstance(a, TupleGetItem):
            return a.index == b.index and self.equal(a.tup, b.tup)
        raise TypeError(f"unknown expr {type(a).__name__}")

    def _pattern_equal(self, a: Pattern, b: Pattern) -> bool:
        if type(a) is not type(b):
            return False
        if isinstance(a, PatternWildcard):
            return True
        if isinstance(a, PatternVar):
            self._var_map[id(a.var)] = id(b.var)
            return True
        if isinstance(a, PatternConstructor):
            if a.constructor.name != b.constructor.name or len(a.patterns) != len(b.patterns):
                return False
            return all(self._pattern_equal(x, y) for x, y in zip(a.patterns, b.patterns))
        if isinstance(a, PatternTuple):
            if len(a.patterns) != len(b.patterns):
                return False
            return all(self._pattern_equal(x, y) for x, y in zip(a.patterns, b.patterns))
        raise TypeError(f"unknown pattern {type(a).__name__}")


def _attrs_equal(a: dict, b: dict) -> bool:
    keys = set(a) | set(b)
    for k in keys:
        if k == "concurrent_group":
            # group identity is symbolic; presence must match
            if (k in a) != (k in b):
                return False
            continue
        if a.get(k) != b.get(k):
            return False
    return True
