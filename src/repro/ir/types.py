"""Type system for the ACROBAT input IR.

The IR is a small, Relay-like functional language.  Types are used both for
documentation of model programs and by the static analyses (parameter-reuse
taint analysis, static-block extraction, batched-kernel signature
construction) which need tensor shapes to generate batched kernels and to
estimate kernel costs.

Shapes are fully static per *instance*: dynamism in the paper's workloads
comes from control flow (how many times an operator runs, and on which
operands), not from symbolic shapes inside a single operator call.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple


class Type:
    """Base class of all IR types."""

    def __eq__(self, other) -> bool:  # structural equality
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


class AnyType(Type):
    """Unknown/unannotated type.  Analyses treat it conservatively."""

    def __str__(self) -> str:
        return "?"


class TensorType(Type):
    """A dense tensor with a static shape and dtype.

    Parameters
    ----------
    shape:
        Static shape of the tensor, e.g. ``(1, 256)``.
    dtype:
        NumPy dtype name, defaults to ``"float32"``.
    """

    def __init__(self, shape: Sequence[int], dtype: str = "float32") -> None:
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.dtype = dtype

    def _key(self):
        return (self.shape, self.dtype)

    @property
    def size(self) -> int:
        """Number of scalar elements in a tensor of this type."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        """Size in bytes assuming 4-byte elements for float32/int32."""
        itemsize = 1 if self.dtype == "bool" else 4
        return self.size * itemsize

    def __str__(self) -> str:
        return f"Tensor[{self.shape}, {self.dtype}]"


class ScalarType(Type):
    """A host scalar (Relay models these as 0-d tensors).

    Scalars are the values that feed *tensor-dependent control flow*: reading
    one out of a lazily evaluated tensor forces DFG execution.
    """

    def __init__(self, dtype: str = "float32") -> None:
        self.dtype = dtype

    def _key(self):
        return (self.dtype,)

    def __str__(self) -> str:
        return f"Scalar[{self.dtype}]"


class ListType(Type):
    """Linked list (the prelude ``List`` ADT) of ``elem`` values."""

    def __init__(self, elem: Type) -> None:
        self.elem = elem

    def _key(self):
        return (self.elem,)

    def __str__(self) -> str:
        return f"List[{self.elem}]"


class TupleType(Type):
    """A fixed-arity product type."""

    def __init__(self, fields: Iterable[Type]) -> None:
        self.fields: Tuple[Type, ...] = tuple(fields)

    def _key(self):
        return self.fields

    def __str__(self) -> str:
        return "(" + ", ".join(str(f) for f in self.fields) + ")"


class FuncType(Type):
    """Type of a function value."""

    def __init__(self, params: Iterable[Type], ret: Type) -> None:
        self.params: Tuple[Type, ...] = tuple(params)
        self.ret = ret

    def _key(self):
        return (self.params, self.ret)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"fn({params}) -> {self.ret}"


class ADTType(Type):
    """Reference to a user-declared algebraic data type (e.g. ``Tree``)."""

    def __init__(self, name: str, type_args: Optional[Sequence[Type]] = None) -> None:
        self.name = name
        self.type_args: Tuple[Type, ...] = tuple(type_args or ())

    def _key(self):
        return (self.name, self.type_args)

    def __str__(self) -> str:
        if self.type_args:
            args = ", ".join(str(a) for a in self.type_args)
            return f"{self.name}[{args}]"
        return self.name


def is_tensor(ty: Optional[Type]) -> bool:
    """True when ``ty`` is a concrete :class:`TensorType`."""
    return isinstance(ty, TensorType)


def is_scalar(ty: Optional[Type]) -> bool:
    """True when ``ty`` is a :class:`ScalarType`."""
    return isinstance(ty, ScalarType)
