"""Relay-VM-style interpreter and eager reference executor.

Two execution modes over the same tree-walking evaluator:

* ``eager``  — every tensor operator executes immediately with NumPy,
  unbatched.  This is the *ground truth* used by the test-suite to check all
  other backends, and it doubles as the "no auto-batching" eager baseline.
* ``lazy``   — tensor operators are recorded as single-operator DFG nodes in
  an :class:`~repro.runtime.executor.AcrobatRuntime` (depths are recomputed
  dynamically by the runtime), which models executing the unbatched program
  on the Relay VM with dynamic batching but *without* AOT compilation.  The
  interpretation overhead per IR node is what Table 4 measures against the
  AOT-compiled program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..engine.engine import ExecutionEngine, InstanceArgBinder, ProgramBinding
from ..ir.adt import ADTValue, bind, matches
from ..ir.expr import (
    Call,
    Constant,
    ConstructorRef,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    OpRef,
    TupleExpr,
    TupleGetItem,
    Var,
)
from ..ir.module import IRModule
from ..kernels.batched import BlockKernel
from ..kernels.block import single_op_block
from ..kernels.registry import get_op
from ..runtime.device import DeviceSimulator, GPUSpec
from ..runtime.executor import AcrobatRuntime, ExecutionOptions, RunStats
from ..runtime.fibers import FiberScheduler
from ..runtime.tensor import LazyTensor, materialize_value
from ..utils import ensure_recursion_limit


class _Closure:
    """A function value paired with its defining environment."""

    __slots__ = ("func", "env")

    def __init__(self, func: Function, env: Dict[int, Any]) -> None:
        self.func = func
        self.env = env


class Interpreter:
    """Environment-passing evaluator for the IR."""

    def __init__(
        self,
        module: IRModule,
        mode: str = "eager",
        runtime: Optional[AcrobatRuntime] = None,
    ) -> None:
        if mode not in ("eager", "lazy"):
            raise ValueError("mode must be 'eager' or 'lazy'")
        self.module = module
        self.mode = mode
        self.runtime = runtime
        #: lazily created single-operator blocks, keyed by operator signature
        self._op_blocks: Dict[Tuple, int] = {}
        # deep recursion support: raised once at construction, never lowering
        # a limit the user already raised (the engine does the same for the
        # compiled path)
        ensure_recursion_limit()

    # -- public ------------------------------------------------------------------
    def run_main(self, args: Sequence[Any]) -> Any:
        main = self.module.main
        env = {id(p): a for p, a in zip(main.params, args)}
        return self._eval(main.body, env)

    # -- evaluation -----------------------------------------------------------------
    def _eval(self, expr: Expr, env: Dict[int, Any]) -> Any:
        if isinstance(expr, Var):
            try:
                return env[id(expr)]
            except KeyError:
                raise KeyError(f"interpreter: unbound variable {expr!r}") from None
        if isinstance(expr, Constant):
            return expr.value
        if isinstance(expr, GlobalVar):
            return _Closure(self.module.functions[expr.name], {})
        if isinstance(expr, Function):
            return _Closure(expr, dict(env))
        if isinstance(expr, Let):
            value = self._eval(expr.value, env)
            env = dict(env)
            env[id(expr.var)] = value
            return self._eval(expr.body, env)
        if isinstance(expr, If):
            cond = self._eval(expr.cond, env)
            return self._eval(expr.then_branch if cond else expr.else_branch, env)
        if isinstance(expr, Match):
            data = self._eval(expr.data, env)
            for clause in expr.clauses:
                if matches(clause.pattern, data):
                    cenv = dict(env)
                    bind(clause.pattern, data, cenv)
                    return self._eval(clause.body, cenv)
            raise RuntimeError("match failure")
        if isinstance(expr, TupleExpr):
            return tuple(self._eval(f, env) for f in expr.fields)
        if isinstance(expr, TupleGetItem):
            return self._eval(expr.tup, env)[expr.index]
        if isinstance(expr, Call):
            return self._eval_call(expr, env)
        raise TypeError(f"interpreter: cannot evaluate {type(expr).__name__}")

    def _eval_call(self, call: Call, env: Dict[int, Any]) -> Any:
        op = call.op
        args = [self._eval(a, env) for a in call.args]
        if isinstance(op, OpRef):
            return self._apply_op(op.name, args, call.attrs)
        if isinstance(op, ConstructorRef):
            return ADTValue(op.constructor, args)
        if isinstance(op, GlobalVar):
            func = self.module.functions[op.name]
            return self._apply_closure(_Closure(func, {}), args)
        closure = self._eval(op, env)
        return self._apply_closure(closure, args)

    def _apply_closure(self, closure: Any, args: List[Any]) -> Any:
        if not isinstance(closure, _Closure):
            raise TypeError(f"interpreter: calling non-function value {closure!r}")
        func = closure.func
        env = dict(closure.env)
        for p, a in zip(func.params, args):
            env[id(p)] = a
        return self._eval(func.body, env)

    # -- operators ---------------------------------------------------------------------
    def _apply_op(self, name: str, args: List[Any], attrs: Dict[str, Any]) -> Any:
        opdef = get_op(name)
        if opdef.kind == "host":
            return opdef.compute(*args, **attrs)
        if opdef.kind == "sync":
            if self.mode == "lazy":
                self.runtime.trigger()
                value = self.runtime.read(args[0])
            else:
                value = np.asarray(args[0])
            return opdef.compute(value, **attrs)
        if self.mode == "eager":
            concrete = [np.asarray(a) for a in args]
            return np.asarray(opdef.compute(*concrete, **attrs))
        return self._invoke_lazy(name, args, attrs)

    def _invoke_lazy(self, name: str, args: List[Any], attrs: Dict[str, Any]) -> Any:
        opdef = get_op(name)
        arg_shapes = []
        for a in args:
            if isinstance(a, LazyTensor):
                arg_shapes.append(a.inferred_shape)
            else:
                arg_shapes.append(tuple(np.asarray(a).shape))
        key = (
            name,
            len(args),
            tuple(arg_shapes),
            tuple(sorted((k, str(v)) for k, v in attrs.items())),
        )
        if key not in self._op_blocks:
            block = single_op_block(
                block_id=len(self.runtime.kernels),
                op_name=name,
                num_inputs=len(args),
                attrs=attrs,
                name=f"vm_{name}",
            )
            kernel = BlockKernel(block, enable_fusion=False, enable_horizontal_fusion=False)
            self.runtime.kernels[block.block_id] = kernel
            self._op_blocks[key] = block.block_id
        result = self.runtime.invoke(self._op_blocks[key], 0, 0, args)
        if isinstance(result, LazyTensor) and all(s is not None for s in arg_shapes):
            try:
                result.inferred_shape = tuple(opdef.infer_shape(list(arg_shapes), attrs))
            except Exception:
                result.inferred_shape = None
        return result


class VMProgramBinding(ProgramBinding):
    """Engine adapter interpreting the unbatched program per instance."""

    uses_fibers = False

    def __init__(self, model: "VMModel") -> None:
        self.model = model

    def bind(
        self, runtime: AcrobatRuntime, fibers: Optional[FiberScheduler]
    ) -> Callable[[Any], Any]:
        interp = Interpreter(self.model.module, mode="lazy", runtime=runtime)
        binder = self.model.instance_binder

        return lambda instance: interp.run_main(binder(instance))


@dataclass
class VMModel:
    """Relay-VM-style execution of a model (Table 4 baseline).

    Mirrors the :class:`~repro.compiler.driver.CompiledModel` interface so the
    experiment harness can swap backends; execution goes through the shared
    :class:`~repro.engine.engine.ExecutionEngine`.
    """

    module: IRModule
    params: Dict[str, np.ndarray]
    gpu_spec: Optional[GPUSpec] = None
    gather_fusion: bool = True
    #: when False, every operator executes as its own batch of one (eager,
    #: no-auto-batching execution — the PyTorch baseline of Fig. 5)
    batching: bool = True
    last_stats: Optional[RunStats] = None

    @property
    def instance_binder(self) -> InstanceArgBinder:
        return InstanceArgBinder(
            [p.name_hint for p in self.module.main.params], self.params
        )

    def _instance_args(self, instance: Any) -> List[Any]:
        return self.instance_binder(instance)

    def make_engine(
        self,
        device: Optional[DeviceSimulator] = None,
        scheduler: Optional[str] = None,
        *,
        devices: Any = None,
        placement: Any = None,
        placement_args: Optional[Dict[str, Any]] = None,
        interconnect: Any = None,
    ) -> ExecutionEngine:
        """Engine interpreting the program with runtime-only batching.

        Kernels start empty: the interpreter creates single-operator blocks
        on demand and installs them into the engine's runtime.
        ``devices``/``placement``/``interconnect`` shard execution over a
        device group exactly as :meth:`CompiledModel.make_engine` does.
        """
        return ExecutionEngine(
            program=VMProgramBinding(self),
            kernels={},
            options=ExecutionOptions(
                gather_fusion=self.gather_fusion,
                scheduler=scheduler
                or ("dynamic_depth" if self.batching else "nobatch"),
            ),
            device=device,
            gpu_spec=self.gpu_spec,
            devices=devices,
            placement=placement,
            placement_args=placement_args,
            interconnect=interconnect,
        )

    def session(
        self,
        max_batch: Optional[int] = None,
        device: Optional[DeviceSimulator] = None,
        scheduler: Optional[str] = None,
        *,
        flush_policy: Any = None,
        flush_args: Optional[Dict[str, Any]] = None,
        clock: Any = None,
        devices: Any = None,
        placement: Any = None,
        placement_args: Optional[Dict[str, Any]] = None,
        interconnect: Any = None,
    ):
        """Open a cross-request batching session over the interpreter
        (same surface as :meth:`CompiledModel.session`)."""
        return self.make_engine(
            device,
            scheduler,
            devices=devices,
            placement=placement,
            placement_args=placement_args,
            interconnect=interconnect,
        ).session(
            max_batch=max_batch, policy=flush_policy, policy_args=flush_args, clock=clock
        )

    def serve(
        self,
        policy: Any = "adaptive",
        *,
        clock: Any = None,
        device: Optional[DeviceSimulator] = None,
        scheduler: Optional[str] = None,
        devices: Any = None,
        placement: Any = None,
        placement_args: Optional[Dict[str, Any]] = None,
        interconnect: Any = None,
        **policy_args: Any,
    ):
        """Open a policy-driven serving session over the interpreter (same
        surface as :meth:`CompiledModel.serve`)."""
        return self.make_engine(
            device,
            scheduler,
            devices=devices,
            placement=placement,
            placement_args=placement_args,
            interconnect=interconnect,
        ).session(policy=policy, policy_args=policy_args or None, clock=clock)

    def run(
        self, instances: Sequence[Any], device: Optional[DeviceSimulator] = None
    ) -> Tuple[List[Any], RunStats]:
        outputs, stats = self.make_engine(device).run(instances)
        self.last_stats = stats
        return outputs, stats


def run_reference(
    module: IRModule,
    params: Mapping[str, np.ndarray],
    instances: Sequence[Any],
) -> List[Any]:
    """Ground-truth unbatched eager execution (used for correctness checks)."""
    vm = VMModel(module=module, params={k: np.asarray(v) for k, v in params.items()})
    interp = Interpreter(module, mode="eager")
    outputs = []
    for instance in instances:
        outputs.append(materialize_value(interp.run_main(vm._instance_args(instance))))
    return outputs
