"""Relay-VM-style interpreter baseline and eager reference executor."""

from .interpreter import Interpreter, VMModel, run_reference

__all__ = ["Interpreter", "VMModel", "run_reference"]
