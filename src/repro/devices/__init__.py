"""Multi-device execution: device groups, interconnects and placement.

PR 1–3 built a single-accelerator system: one
:class:`~repro.runtime.device.DeviceSimulator`, one arena space, one block
of counters.  This package removes that assumption:

* :mod:`repro.devices.device` — the :class:`Device` protocol: the narrow
  surface the runtime, memory planner and serving layer require of an
  accelerator (a standalone simulator satisfies it as the one-member
  degenerate case);
* :mod:`repro.devices.interconnect` — the :class:`Interconnect` cost model
  pricing device-to-device transfers (``pcie`` / ``nvlink`` presets), so
  cross-device gathers are charged rather than free;
* :mod:`repro.devices.group` — :class:`DeviceGroup`: N simulators with
  per-device counters/residency, group aggregation, and elapsed-vs-total
  device-time accounting (members run concurrently);
* :mod:`repro.devices.placement` — :class:`PlacementPolicy` and its
  string-keyed registry (``single``, ``round_robin``, ``data_parallel``,
  ``pipeline``, ``tensor_parallel``): *where* each scheduled batch
  executes, mirroring the scheduler-policy and flush-policy registries.

Entry points: ``compile_model(...).serve(policy, devices=4,
placement="round_robin")`` opens a sharded serving session;
``Server(devices=4, placement="data_parallel")`` shards a whole multi-model
deployment over one group.
"""

from .device import Device
from .group import DeviceGroup
from .interconnect import INTERCONNECT_PRESETS, Interconnect
from .placement import (
    DataParallelPlacement,
    LearnedWorkPlacement,
    PipelinePlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    SinglePlacement,
    TensorParallelPlacement,
    available_placements,
    make_placement,
    partition_stages,
    register_placement,
    unregister_placement,
)

__all__ = [
    "Device",
    "DeviceGroup",
    "Interconnect",
    "INTERCONNECT_PRESETS",
    "PlacementPolicy",
    "SinglePlacement",
    "RoundRobinPlacement",
    "DataParallelPlacement",
    "LearnedWorkPlacement",
    "PipelinePlacement",
    "TensorParallelPlacement",
    "available_placements",
    "make_placement",
    "partition_stages",
    "register_placement",
    "unregister_placement",
]
