"""Interconnect cost model: what a device-to-device transfer costs.

A :class:`~repro.devices.group.DeviceGroup` prices every cross-device
operand movement through one :class:`Interconnect`: a peer transfer costs a
fixed per-transfer latency plus the payload over the link bandwidth.  Two
presets bracket the realistic range:

* ``pcie`` — peer copies staged over the host PCIe fabric (PCIe-4-class:
  ~12 GB/s effective, several microseconds of setup);
* ``nvlink`` — direct GPU-to-GPU links (NVLink-class: ~200 GB/s, short
  setup).

The memory planner classifies operands whose producing arena lives on a
different device than the consuming batch as explicit peer transfers and
charges them here — cross-device gathers are *priced*, never free, which is
what makes placement-policy comparisons honest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class Interconnect:
    """Analytical cost model of the device-to-device fabric."""

    name: str = "pcie"
    #: peer-transfer bandwidth (GB/s)
    bandwidth_gbps: float = 12.0
    #: per-transfer setup latency (microseconds)
    latency_us: float = 6.0

    def __post_init__(self) -> None:
        if not self.bandwidth_gbps > 0:
            raise ValueError(
                f"Interconnect.bandwidth_gbps must be positive, "
                f"got {self.bandwidth_gbps!r}"
            )
        if self.latency_us < 0:
            raise ValueError("Interconnect.latency_us must be >= 0")

    def transfer_time_us(self, nbytes: float) -> float:
        """Simulated duration of one peer transfer of ``nbytes`` bytes."""
        return self.latency_us + float(nbytes) / (self.bandwidth_gbps * 1e3)

    @classmethod
    def preset(cls, name: str, **overrides) -> "Interconnect":
        """A named interconnect preset (``pcie``, ``nvlink``), optionally
        with field overrides."""
        try:
            base = INTERCONNECT_PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown interconnect preset {name!r}; available presets: "
                f"{', '.join(sorted(INTERCONNECT_PRESETS))}"
            ) from None
        return replace(base, **overrides) if overrides else base

    @classmethod
    def available_presets(cls) -> Tuple[str, ...]:
        return tuple(sorted(INTERCONNECT_PRESETS))


INTERCONNECT_PRESETS: Dict[str, Interconnect] = {
    "pcie": Interconnect(name="pcie", bandwidth_gbps=12.0, latency_us=6.0),
    "nvlink": Interconnect(name="nvlink", bandwidth_gbps=200.0, latency_us=2.0),
}
