"""The ``Device`` protocol: what the runtime requires of an accelerator.

Until PR 4 every layer assumed *the* :class:`~repro.runtime.device.DeviceSimulator`;
the protocol below is the contract that assumption has been narrowed to.
Anything satisfying it can back an :class:`~repro.runtime.executor.AcrobatRuntime`:

* the analytical single-GPU simulator (the degenerate one-member group);
* a :class:`~repro.devices.group.DeviceGroup` of N simulators plus an
  interconnect cost model.

The key shift is that charging is *indexed*: batches carry a device index
assigned by a placement policy, and the runtime resolves the member device
with :meth:`Device.device_for` before charging launches, gathers and
transfers.  Cross-device operand movement goes through
:meth:`Device.peer_transfer`, which a standalone simulator rejects (it has
no peers) and a group prices through its interconnect.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, runtime_checkable

from ..runtime.device import DeviceCounters, GPUSpec


@runtime_checkable
class Device(Protocol):
    """Structural interface shared by ``DeviceSimulator`` and ``DeviceGroup``.

    Only the surface the runtime, memory planner and serving layer touch is
    part of the contract; the cost-model internals stay implementation
    details of the member simulators.
    """

    #: cost-model parameters of the (primary) accelerator
    spec: GPUSpec

    @property
    def num_devices(self) -> int:
        """How many member devices placement policies may target."""
        ...

    def device_for(self, index: int) -> object:
        """The member device a batch placed on ``index`` executes on."""
        ...

    def peer_transfer(self, src: int, dst: int, nbytes: float) -> float:
        """Charge a device-to-device transfer; returns its simulated
        duration in microseconds (0 when ``src == dst``)."""
        ...

    def counters_dict(self) -> Dict[str, float]:
        """Aggregate device counters (``RunStats.device``)."""
        ...

    def per_device_dicts(self) -> List[Dict[str, float]]:
        """Per-member counter breakdown (empty for a standalone device)."""
        ...

    def device_summary(self) -> Dict[str, object]:
        """Busy-time / utilization / balance summary."""
        ...

    def reset(self) -> None:
        """Clear accumulated counters on every member."""
        ...

    def reset_residency(self) -> None:
        """Forget uploaded host arrays on every member."""
        ...

    def set_schedule_quality(self, kernel_name: str, quality: float) -> None:
        """Record an auto-scheduler result on every member."""
        ...


__all__ = ["Device", "DeviceCounters", "GPUSpec"]
