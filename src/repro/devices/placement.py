"""Placement policies: *where* does a scheduled batch execute?

After the scheduler has grouped a round's DFG nodes into batches and before
the memory planner runs, a :class:`PlacementPolicy` assigns every batch a
device index within the runtime's :class:`~repro.devices.group.DeviceGroup`
— possibly splitting batches into per-device shards.  Policies are
string-keyed through a registry mirroring the scheduler-policy and
flush-policy registries: runtimes resolve them by name via
:func:`make_placement`, and third parties add their own with
:func:`register_placement`.

Built-in policies:

``single``
    Everything on device 0 (the pre-multi-device behaviour; the group's
    other members stay idle).
``round_robin``
    Request-level sharding: instance ``i`` lives on device ``i % N``, so
    every scheduled batch splits into per-device shards along instance
    boundaries.  A request's whole DFG chain stays on one device, so no
    cross-device operand traffic arises for independent requests.
``data_parallel``
    Split each scheduled batch into N contiguous shards *when its size
    amortizes the extra launches*: using the device cost model, splitting
    pays when the memory-time saved by shrinking the per-device batch
    exceeds the serial CPU-side API overhead of the extra launches.  Small
    batches stay whole but route round-robin across the group, and splits
    anchor at a per-round rotating base device, so neither unsplittable
    work nor partial splits pile on device 0.
``pipeline``
    Depth-staged execution: contiguous runs of the round's scheduled
    batches (the scheduler emits them in depth order) become pipeline
    stages, stage ``s`` on device ``s``, balanced by the learned per-block
    work model.  Stages of one round run sequentially, so the policy's win
    is continuous serving: per-device timeline lanes let stage ``k`` of
    round ``N+1`` start as soon as stage ``k`` of round ``N`` drains.
``tensor_parallel``
    Intra-batch splitting: blocks whose observed launch time amortizes it
    are marked to execute as ``1/k`` cost shards on ``k`` members
    concurrently, with peer-priced gathers assembling the partial outputs
    on the home device.

Whatever a policy does, results are reference-identical: placement moves
*where* a batch executes (and what transfers are charged), never what it
computes.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.scheduler import ScheduledBatch
from ..runtime.tensor import LazyTensor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernels.batched import BlockKernel
    from .device import Device

PlacementFactory = Callable[..., "PlacementPolicy"]

_REGISTRY: Dict[str, PlacementFactory] = {}


class PlacementPolicy:
    """Assigns every scheduled batch of a round to a device in the group."""

    #: registry name
    name = "single"

    #: how the serving timeline models this policy's rounds across the
    #: group's per-device lanes: ``"concurrent"`` (members execute disjoint
    #: shares of the round in parallel — every built-in sharding policy) or
    #: ``"staged"`` (members execute the round's shares *in sequence*, each
    #: lane freeing as its stage drains — the pipeline policy, whose
    #: cross-round overlap lives exactly in that distinction)
    timeline_mode = "concurrent"

    def place_round(
        self,
        batches: List[ScheduledBatch],
        group: "Device",
        kernels: Dict[int, "BlockKernel"],
    ) -> List[ScheduledBatch]:
        """Return the round's batches with device indices assigned.

        Policies may split batches (returning more, smaller ones) but must
        preserve execution order: a shard of batch *k* must appear before
        any shard of batch *k+1*, so dependency order survives placement.
        """
        return batches

    def observe(
        self,
        block_id: int,
        batch_size: int,
        duration_us: float,
        num_launches: int,
        spec: Any,
        bytes_written: float = 0.0,
    ) -> None:
        """Feedback hook: the executor reports every batch's simulated
        launch time (and output bytes) after charging it, so adaptive
        policies can learn per-block device cost (the static operand-byte
        estimate cannot see compute-bound work)."""

    def note_reset(self) -> None:
        """Run-boundary hook: the runtime calls this when it resets for a
        new run (one serving flush, one ``run()`` call).  Sync rounds
        *within* a run share whatever state the policy keys placement on;
        policies that rotate placement do so here, so dependency chains
        spanning a run's rounds (fiber programs) stay device-aligned."""

    def snapshot_state(self) -> Any:
        """Opaque snapshot of whatever mutable state :meth:`place_round`
        advances, taken before a *speculative* placement so an abandoned
        speculation can roll back via :meth:`restore_state`.  Stateless
        policies return None.  Learned cost state (EWMAs fed by
        :meth:`observe`) deliberately stays out of the snapshot: it only
        tunes *future* split decisions, never the identity of a committed
        round, so keeping observations from an aborted speculation is
        harmless — and they were paid for."""
        return None

    def restore_state(self, state: Any) -> None:
        """Roll back to a :meth:`snapshot_state` snapshot (abandoning a
        speculative placement).  No-op for stateless policies."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# -- registry -----------------------------------------------------------------


def register_placement(
    name: str,
    factory: Optional[PlacementFactory] = None,
    *,
    overwrite: bool = False,
) -> Any:
    """Register a placement policy under ``name`` (plain call or decorator).

    Registering an existing name raises unless ``overwrite=True``.
    """

    def _register(fn: PlacementFactory) -> PlacementFactory:
        if not overwrite and name in _REGISTRY:
            raise ValueError(
                f"placement policy {name!r} is already registered "
                f"(pass overwrite=True to replace it)"
            )
        _REGISTRY[name] = fn
        return fn

    if factory is None:
        return _register
    return _register(factory)


def unregister_placement(name: str) -> None:
    """Remove a placement policy from the registry (no-op for unknown names)."""
    _REGISTRY.pop(name, None)


def available_placements() -> Tuple[str, ...]:
    """Names of all registered placement policies, sorted."""
    return tuple(sorted(_REGISTRY))


def make_placement(name: str, **policy_args: Any) -> PlacementPolicy:
    """Instantiate the placement policy registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; available policies: "
            f"{', '.join(available_placements())}"
        ) from None
    return factory(**policy_args)


# -- shared learned cost model ------------------------------------------------


def partition_stages(
    costs: Sequence[float], num_stages: int
) -> List[Tuple[int, int]]:
    """Contiguous partition of ``costs`` into at most ``num_stages`` runs
    minimizing the maximum run cost (the classic linear-partition DP).

    Returns half-open ``(start, end)`` index pairs covering the whole list
    in order, one per non-empty stage.  Deterministic: among equally good
    partitions, the earliest cut points win.
    """
    n = len(costs)
    if n == 0:
        return []
    k = max(1, min(int(num_stages), n))
    if k == 1:
        return [(0, n)]
    prefix = [0.0]
    for c in costs:
        prefix.append(prefix[-1] + float(c))
    # best[i]: minimal max-stage cost of costs[:i] under the current stage
    # budget; cuts[j][i]: the last cut index achieving best[i] with budget j
    best = list(prefix[1:])  # budget 1: the whole prefix is one run
    cuts: List[List[int]] = [[0] * (n + 1)]
    for _ in range(2, k + 1):
        nxt = [0.0] * n
        cut = [0] * (n + 1)
        for i in range(1, n + 1):
            best_cost, best_s = prefix[i], 0  # s = 0: keep costs[:i] whole
            for s in range(1, i):
                cost = max(best[s - 1], prefix[i] - prefix[s])
                if cost < best_cost:
                    best_cost, best_s = cost, s
            nxt[i - 1] = best_cost
            cut[i] = best_s
        best = nxt
        cuts.append(cut)
    stages: List[Tuple[int, int]] = []
    i = n
    for cut in reversed(cuts):
        s = cut[i]
        stages.append((s, i))
        i = s
        if i == 0:
            break
    stages.reverse()
    return stages


class LearnedWorkPlacement(PlacementPolicy):
    """Shared learned-cost machinery for adaptive placement policies.

    Keeps a per-block EWMA of *observed* per-instance device work (fed back
    by the executor through :meth:`observe`, launch overhead excluded) plus
    an EWMA of per-instance output bytes, with a static operand-byte
    estimate as the cold-start fallback — the model ``data_parallel`` has
    always used, hoisted so the pipeline stage balancer and the
    tensor-parallel splitter drive off the same observations.
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        self.smoothing = float(smoothing)
        #: EWMA of per-instance device work (us, launch overhead excluded)
        #: per block id, learned from observed launches
        self._work_us: Dict[int, float] = {}
        #: EWMA of per-instance output bytes per block id (prices the
        #: partial-output gathers of a tensor-parallel split)
        self._out_bytes: Dict[int, float] = {}

    def observe(
        self,
        block_id: int,
        batch_size: int,
        duration_us: float,
        num_launches: int,
        spec: Any,
        bytes_written: float = 0.0,
    ) -> None:
        work = max(0.0, duration_us - num_launches * spec.launch_overhead_us)
        per_instance = work / max(1, batch_size)
        s = self.smoothing
        prev = self._work_us.get(block_id)
        self._work_us[block_id] = (
            per_instance if prev is None else s * per_instance + (1 - s) * prev
        )
        per_out = float(bytes_written) / max(1, batch_size)
        prev_out = self._out_bytes.get(block_id)
        self._out_bytes[block_id] = (
            per_out if prev_out is None else s * per_out + (1 - s) * prev_out
        )

    def _batch_cost_us(
        self,
        batch: ScheduledBatch,
        group: "Device",
        kernels: Dict[int, "BlockKernel"],
    ) -> float:
        """Estimated device time of one batched launch of ``batch``.

        Observed EWMA first; static operand-byte memory time as the
        cold-start fallback; when nothing is known at all (the first round
        of a fiber program) the batch *size* is the only signal — the
        units are wrong but relative magnitudes still balance stages.
        """
        spec = group.spec
        size = len(batch.nodes)
        observed = self._work_us.get(batch.block_id)
        if observed is not None:
            return observed * size + spec.launch_overhead_us
        shared, var, known = self._estimate_bytes(batch, kernels)
        if known:
            bw = spec.mem_bandwidth_gbps * 1e3
            return (shared + var * size) / bw + spec.launch_overhead_us
        return float(size)

    @staticmethod
    def _estimate_bytes(
        batch: ScheduledBatch, kernels: Dict[int, "BlockKernel"]
    ) -> Tuple[float, float, bool]:
        """(shared bytes per launch, varying bytes per instance, any known).

        Reads sizes off the first node's operands; pending lazy tensors have
        no value yet and contribute nothing (an underestimate — the split
        decision errs toward keeping batches whole, which is the safe side).
        """
        kernel = kernels.get(batch.block_id)
        if kernel is None:
            return 0.0, 0.0, False
        node = batch.nodes[0]
        shared = var = 0.0
        known = False
        for inp in kernel.block.inputs:
            arg = node.args[inp.index]
            if isinstance(arg, LazyTensor):
                storage = arg.storage
                if storage is None:
                    continue
                nbytes = float(storage.nbytes)
            else:
                nbytes = float(np.asarray(arg).nbytes)
            known = True
            if inp.shared:
                shared += nbytes
            else:
                var += nbytes
        return shared, var, known


# -- built-in policies --------------------------------------------------------


@register_placement("single")
class SinglePlacement(PlacementPolicy):
    """Everything on device 0 (the degenerate, pre-sharding placement)."""

    name = "single"


@register_placement("round_robin")
class RoundRobinPlacement(PlacementPolicy):
    """Request-level sharding: instance ``i`` executes on device ``i % N``.

    Every scheduled batch splits along instance boundaries into at most N
    per-device shards (node order within each shard is preserved, and
    shards inherit their batch's position in the round, so dependency order
    survives).  Because the *same* instances map to the same device in
    every round, a request's whole chain — and therefore every
    producer/consumer arena pair — stays device-local.
    """

    name = "round_robin"

    def place_round(
        self,
        batches: List[ScheduledBatch],
        group: "Device",
        kernels: Dict[int, "BlockKernel"],
    ) -> List[ScheduledBatch]:
        n = group.num_devices
        if n <= 1:
            return batches
        placed: List[ScheduledBatch] = []
        for batch in batches:
            shards: Dict[int, List] = {}
            for node in batch.nodes:
                shards.setdefault(node.instance_id % n, []).append(node)
            if len(shards) == 1:
                device, nodes = next(iter(shards.items()))
                batch.device = device
                placed.append(batch)
                continue
            for device in sorted(shards):
                placed.append(
                    ScheduledBatch(
                        block_id=batch.block_id,
                        nodes=shards[device],
                        device=device,
                    )
                )
        return placed


@register_placement("data_parallel")
class DataParallelPlacement(LearnedWorkPlacement):
    """Split big batches into contiguous per-device shards; keep small ones,
    rotating them round-robin over a per-round home device.

    For each scheduled batch of size ``B`` the policy asks the device cost
    model whether sharding pays: splitting into ``k`` shards divides the
    batch's per-device *work* time by ``k`` (shards run concurrently) but
    adds ``(k-1)`` serial CPU-side launches at ``api_overhead_us`` each.
    Every shard count from 2 to the device count is considered and the one
    with the best *net* elapsed saving wins — an intermediate split can pay
    where the maximal one does not.

    The per-instance work estimate has two sources.  Once a block has
    executed, the policy uses the *observed* launch durations the executor
    feeds back through :meth:`observe` (an EWMA per block — this captures
    compute-bound and memory-bound work alike, exactly as the adaptive
    flush policy learns launches-per-round).  Before the first observation
    it falls back to a static estimate from the batch's already
    materialized / host operand bytes: memory time shrinks from
    ``(shared + B*var) / bw`` to ``(shared + ceil(B/k)*var) / bw`` (shared
    operands are re-read by every shard).  When nothing is known at all
    (e.g. the first round of a fiber program) a batch splits optimistically
    once every shard can hold ``min_shard`` instances.

    Shards are *contiguous* runs of the batch's nodes, so two consecutive
    batches over the same instances shard identically and their
    producer/consumer arenas stay device-local; mismatched memberships
    degrade to priced peer transfers, never to wrong results.

    Neither unsplit batches nor partial splits pile onto the low device
    indices (the ROADMAP's ~0.33-at-4-devices busy-time imbalance):

    * batches the cost model keeps whole route **round-robin** — each
      unsplit batch takes the next device in rotation, so the work the
      splitter cannot shard still spreads over the whole group (any
      cross-device producer/consumer operands this creates are priced peer
      transfers, and an unsplit batch is by definition a small one);
    * a ``k``-way split anchors at a per-*run* base that rotates across
      runs (serving flushes), occupying devices ``base .. base+k-1``
      (mod N) — partial splits stop favouring devices 0..k-1, while
      same-``k`` producer/consumer pairs within a run (including fiber
      programs' chains across sync rounds) keep their shard placement
      aligned: chains stay device-local exactly as before.

    Deliberate tradeoff: plan-cache signatures carry batch device (cached
    plans must replay with placement identity), so rotation multiplies the
    signatures of otherwise identical serving rounds by up to N — the
    steady state warms N plan variants instead of one.  The sharding
    benchmark measures the net effect end-to-end and rotation still wins
    clearly (``benchmarks/results/sharding.txt``: ~2.8x vs ~2.0x speedup
    at 4 devices); if a workload with many
    distinct shapes ever thrashes the 256-entry cache bound, pinning the
    rotation (``single``-style) or widening the cache is the knob.
    """

    name = "data_parallel"

    def __init__(self, min_shard: int = 2, smoothing: float = 0.5) -> None:
        if min_shard < 1:
            raise ValueError("data_parallel placement needs min_shard >= 1")
        super().__init__(smoothing=smoothing)
        self.min_shard = int(min_shard)
        #: next device in the unsplit-batch round-robin rotation
        self._unsplit_rr = 0
        #: base device anchoring this run's splits (advances at the next
        #: run boundary — :meth:`note_reset` — once the run placed
        #: something)
        self._round_base = 0
        self._placed_since_reset = False

    def place_round(
        self,
        batches: List[ScheduledBatch],
        group: "Device",
        kernels: Dict[int, "BlockKernel"],
    ) -> List[ScheduledBatch]:
        n = group.num_devices
        if n <= 1:
            return batches
        placed: List[ScheduledBatch] = []
        base = self._round_base % n
        for batch in batches:
            k = self._num_shards(batch, group, kernels)
            if k <= 1:
                # stays whole; route round-robin instead of piling on one
                # device
                batch.device = self._unsplit_rr % n
                self._unsplit_rr = (self._unsplit_rr + 1) % n
                placed.append(batch)
                continue
            nodes = batch.nodes
            per_shard = math.ceil(len(nodes) / k)
            for shard_index in range(k):
                shard = nodes[shard_index * per_shard : (shard_index + 1) * per_shard]
                if shard:
                    placed.append(
                        ScheduledBatch(
                            block_id=batch.block_id,
                            nodes=shard,
                            device=(base + shard_index) % n,
                        )
                    )
        if batches:
            self._placed_since_reset = True
        return placed

    def note_reset(self) -> None:
        # rotate the split anchor once per run (serving flush), never
        # between a run's sync rounds: fiber chains spanning rounds keep
        # their producer/consumer shards device-aligned
        if self._placed_since_reset:
            self._round_base += 1
            self._placed_since_reset = False

    def snapshot_state(self) -> Any:
        # everything place_round/note_reset advance; _work_us (observe
        # EWMAs) intentionally excluded — see the base-class docstring
        return (self._unsplit_rr, self._round_base, self._placed_since_reset)

    def restore_state(self, state: Any) -> None:
        self._unsplit_rr, self._round_base, self._placed_since_reset = state

    # -- cost model ------------------------------------------------------------
    def _num_shards(
        self,
        batch: ScheduledBatch,
        group: "Device",
        kernels: Dict[int, "BlockKernel"],
    ) -> int:
        size = len(batch.nodes)
        k_max = min(group.num_devices, size // self.min_shard)
        if k_max <= 1:
            return 1
        spec = group.spec
        observed = self._work_us.get(batch.block_id)
        if observed is not None:
            per_instance_us = observed
        else:
            shared_bytes, var_bytes, known = self._estimate_bytes(batch, kernels)
            if not known:
                return k_max  # no estimate yet: shard optimistically
            # static fallback: memory time only (shared operands are re-read
            # by every shard, so only the varying bytes actually shard)
            per_instance_us = var_bytes / (spec.mem_bandwidth_gbps * 1e3)
        # pick the shard count with the best *net* elapsed saving: shards
        # run concurrently, so k shards save work * (B - ceil(B/k)) but add
        # (k - 1) serial CPU-side launches — the maximal k is not always the
        # best (or even profitable) split
        best_k, best_net = 1, 0.0
        for k in range(2, k_max + 1):
            saved_us = per_instance_us * (size - math.ceil(size / k))
            net = saved_us - (k - 1) * spec.api_overhead_us
            if net > best_net:
                best_k, best_net = k, net
        return best_k


@register_placement("pipeline")
class PipelinePlacement(LearnedWorkPlacement):
    """Depth-staged execution: contiguous *depth levels* of a run become
    pipeline stages, stage ``s`` on device ``s``.

    Every scheduler emits a round's batches in dependency (depth) order,
    and a run's sync rounds are themselves depth-ordered (a fiber
    program's round ``r+1`` consumes round ``r``), so any contiguous
    partition of the run's batch stream is execution-safe.  Batches stay
    whole — pipeline moves depth levels, not instances — so the only
    cross-device traffic is the stage boundaries' producer/consumer
    operands, priced by the planner as peer transfers.

    The balancer has two regimes, both costed with the learned per-block
    work EWMA (static operand-byte fallback) that also drives
    ``data_parallel``:

    * **single-round runs** (DFG-accumulation models: the whole flush is
      one sync round holding every depth) — :func:`partition_stages` picks
      the contiguous partition minimizing the busiest stage;
    * **multi-round runs** (fiber programs: one shallow round per depth
      step, nothing to partition within a round) — stages span *rounds*:
      each batch lands on stage ``floor(n * cost_so_far / est_run_cost)``,
      where the run's total cost is an EWMA learned at run boundaries
      (:meth:`note_reset`).  A first, unobserved run stays on stage 0.

    Within one run the stages execute sequentially (stage ``s+1`` consumes
    stage ``s``'s outputs), so a lone flush gains nothing; the win is
    continuous serving, where per-device timeline lanes
    (``timeline_mode = "staged"``,
    :meth:`~repro.serve.loop.DeviceTimeline.launch_round`) let stage ``k``
    of round ``N+1`` start as soon as stage ``k`` of round ``N`` drains —
    while stage ``k+1`` of round ``N`` is still executing downstream.  In
    steady state the flush rate is set by the busiest *stage*, not the
    whole flush, which is exactly what request-level sharding cannot do
    for a deep chain's launch-bound rounds.
    """

    name = "pipeline"
    timeline_mode = "staged"

    def __init__(self, smoothing: float = 0.5) -> None:
        super().__init__(smoothing=smoothing)
        #: estimated cost of the current run so far (us of _batch_cost_us)
        self._run_cost_seen = 0.0
        #: rounds placed in the current run
        self._rounds_this_run = 0
        #: EWMA over completed runs of the run's total cost / round count
        self._est_run_cost: Optional[float] = None
        self._est_rounds: Optional[float] = None

    def place_round(
        self,
        batches: List[ScheduledBatch],
        group: "Device",
        kernels: Dict[int, "BlockKernel"],
    ) -> List[ScheduledBatch]:
        n = group.num_devices
        if not batches:
            return batches
        costs = [self._batch_cost_us(batch, group, kernels) for batch in batches]
        if n <= 1:
            self._run_cost_seen += sum(costs)
            self._rounds_this_run += 1
            return batches
        if self._est_rounds is not None and self._est_rounds > 1.5:
            # multi-round (fiber) run: stage by cumulative cost fraction of
            # the learned whole-run cost, so depth steps stream through the
            # devices in order.  min() guards drifted estimates: a longer
            # run than predicted tops out at the last stage, it never wraps
            # (stages must be monotone for the staged timeline to overlap).
            total = max(self._est_run_cost or 0.0, 1e-9)
            for batch, cost in zip(batches, costs):
                frac = self._run_cost_seen / total
                batch.device = min(n - 1, int(frac * n))
                self._run_cost_seen += cost
        else:
            # single-round run (or first, unobserved run): balanced
            # contiguous partition of this round's batches
            for stage, (start, end) in enumerate(partition_stages(costs, n)):
                for batch in batches[start:end]:
                    batch.device = stage
            self._run_cost_seen += sum(costs)
        self._rounds_this_run += 1
        return batches

    def note_reset(self) -> None:
        # run boundary: fold the finished run's observed shape into the
        # run-cost model that stages the next one
        if self._rounds_this_run:
            s = self.smoothing
            cost, rounds = self._run_cost_seen, float(self._rounds_this_run)
            self._est_run_cost = (
                cost
                if self._est_run_cost is None
                else s * cost + (1 - s) * self._est_run_cost
            )
            self._est_rounds = (
                rounds
                if self._est_rounds is None
                else s * rounds + (1 - s) * self._est_rounds
            )
        self._run_cost_seen = 0.0
        self._rounds_this_run = 0

    def snapshot_state(self) -> Any:
        # the within-run progress place_round advances (the run-shape EWMAs
        # move only at note_reset, which speculation never reaches)
        return (self._run_cost_seen, self._rounds_this_run)

    def restore_state(self, state: Any) -> None:
        self._run_cost_seen, self._rounds_this_run = state


@register_placement("tensor_parallel")
class TensorParallelPlacement(LearnedWorkPlacement):
    """Split individual heavy blocks column/row-wise across group members.

    Every batch stays whole with its home on device 0; a block whose
    *observed* launch time amortizes the split is marked
    ``tp_devices = (0 .. k-1)``.  The executor then charges each member a
    ``1/k``-scaled shard of every launch record (shards run concurrently,
    so the batch's elapsed time is its slowest shard) plus ``k-1``
    peer-priced gathers shipping the remote members' output partials to
    the home device through the group's
    :class:`~repro.devices.interconnect.Interconnect`; the memory planner
    marks the output arenas with the shard set (the partial-output arena
    kind) and plan/specializer fingerprints gain the shard axis.

    The split decision is deliberately *not* optimistic: an unobserved
    block never splits, because a wrong tensor-parallel split charges real
    interconnect gathers where a wrong ``data_parallel`` split only wastes
    launch overhead.  Splitting ``k`` ways pays when the work saved,
    ``work * (1 - 1/k)``, beats the ``k-1`` extra launches plus the gather
    of the ``(k-1)/k`` remote share of the block's output bytes (EWMA of
    observed output sizes).

    Numerics: the NumPy kernel still executes exactly once, unsharded — a
    real ``k``-way matmul split changes the fp reduction order, and
    placement must stay bitwise reference-identical.  Sharding is a
    cost-model transform, exactly like the device simulator itself.
    """

    name = "tensor_parallel"

    def __init__(self, smoothing: float = 0.5) -> None:
        super().__init__(smoothing=smoothing)

    def place_round(
        self,
        batches: List[ScheduledBatch],
        group: "Device",
        kernels: Dict[int, "BlockKernel"],
    ) -> List[ScheduledBatch]:
        n = group.num_devices
        if n <= 1:
            return batches
        interconnect = getattr(group, "interconnect", None)
        for batch in batches:
            batch.device = 0
            k = self._split_ways(batch, group, interconnect)
            batch.tp_devices = tuple(range(k)) if k > 1 else None
        return batches

    def _split_ways(
        self, batch: ScheduledBatch, group: "Device", interconnect: Any
    ) -> int:
        if interconnect is None:
            return 1
        per_instance = self._work_us.get(batch.block_id)
        if per_instance is None:
            return 1
        size = len(batch.nodes)
        work_us = per_instance * size
        out_bytes = self._out_bytes.get(batch.block_id, 0.0) * size
        spec = group.spec
        best_k, best_net = 1, 0.0
        for k in range(2, group.num_devices + 1):
            saved_us = work_us * (1.0 - 1.0 / k)
            gather_us = (k - 1) * interconnect.transfer_time_us(out_bytes / k)
            extra_us = (k - 1) * (spec.launch_overhead_us + spec.api_overhead_us)
            net = saved_us - gather_us - extra_us
            if net > best_net:
                best_k, best_net = k, net
        return best_k
