"""A group of simulated devices behind one runtime.

:class:`DeviceGroup` owns N :class:`~repro.runtime.device.DeviceSimulator`\\ s
plus an :class:`~repro.devices.interconnect.Interconnect` cost model, and
implements the same :class:`~repro.devices.device.Device` surface a single
simulator does — so the runtime, memory planner and serving layer are
indifferent to whether they charge one accelerator or a sharded group.

Semantics the group pins down:

* **per-device counters, group aggregation** — every member keeps its own
  :class:`~repro.runtime.device.DeviceCounters`; :attr:`counters` /
  :meth:`counters_dict` report the element-wise sum, and
  :meth:`per_device_dicts` the per-member breakdown, so per-device counter
  sums always equal the group totals.
* **elapsed vs total device time** — members execute a round concurrently,
  so the group's *elapsed* device time is the busiest member's total
  (``elapsed_device_us``), while ``total_device_us`` stays the sum of work
  performed.  Latency accounting uses the elapsed figure; throughput gains
  from sharding come exactly from that max-vs-sum gap.
* **priced peer transfers** — operand movement between members goes through
  :meth:`peer_transfer`, charged on the *destination* device via the
  interconnect model (a cross-device gather is never free).
* **per-device residency** — each member has its own residency cache, so
  parameters replicated across the group are uploaded (and charged) once
  per device, as they would be on real hardware.

Heterogeneous groups are supported: pass one spec per device
(``DeviceGroup([GPUSpec.preset("a100"), GPUSpec.preset("laptop")])``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..runtime.device import DeviceCounters, DeviceSimulator, GPUSpec
from .interconnect import Interconnect

SpecLike = Union[GPUSpec, str]


def _resolve_spec(spec: Optional[SpecLike]) -> Optional[GPUSpec]:
    if isinstance(spec, str):
        return GPUSpec.preset(spec)
    return spec


class DeviceGroup:
    """N simulated devices plus an interconnect, behind one Device surface.

    Parameters
    ----------
    devices:
        The group's members: an integer count (devices built from ``spec``),
        a sequence of :class:`GPUSpec`/preset names (one device per spec —
        heterogeneous groups), or a sequence of already constructed
        :class:`DeviceSimulator`\\ s to adopt.
    spec:
        Spec for integer ``devices``: a :class:`GPUSpec`, a preset name, or
        a sequence of either (length must match ``devices``).
    interconnect:
        Peer-transfer cost model: an :class:`Interconnect` or a preset name
        (``"pcie"``, ``"nvlink"``).
    schedule_table / default_schedule_quality:
        Shared auto-scheduler results, applied to every member.
    """

    def __init__(
        self,
        devices: Union[int, Sequence[SpecLike], Sequence[DeviceSimulator]] = 1,
        *,
        spec: Union[SpecLike, Sequence[SpecLike], None] = None,
        interconnect: Union[Interconnect, str] = "pcie",
        schedule_table: Optional[Dict[str, float]] = None,
        default_schedule_quality: float = 0.9,
    ) -> None:
        if isinstance(interconnect, str):
            interconnect = Interconnect.preset(interconnect)
        self.interconnect = interconnect

        members: List[DeviceSimulator]
        if isinstance(devices, int):
            if devices < 1:
                raise ValueError("a device group needs at least one device")
            if isinstance(spec, (list, tuple)):
                if len(spec) != devices:
                    raise ValueError(
                        f"got {len(spec)} specs for {devices} devices; "
                        f"heterogeneous groups need exactly one spec per device"
                    )
                specs = [_resolve_spec(s) for s in spec]
            else:
                specs = [_resolve_spec(spec)] * devices
            members = [
                DeviceSimulator(
                    spec=s,
                    schedule_table=schedule_table,
                    default_schedule_quality=default_schedule_quality,
                    device_id=i,
                )
                for i, s in enumerate(specs)
            ]
        else:
            items = list(devices)
            if not items:
                raise ValueError("a device group needs at least one device")
            if any(isinstance(d, DeviceSimulator) for d in items):
                if not all(isinstance(d, DeviceSimulator) for d in items):
                    raise TypeError(
                        "a device group takes either DeviceSimulators or "
                        "specs/preset names, not a mixture"
                    )
                # adopted simulators are NOT mutated (they may still back a
                # standalone runtime elsewhere); the group addresses members
                # by position, so their own device_id is irrelevant here
                members = items
            else:
                members = [
                    DeviceSimulator(
                        spec=_resolve_spec(s),
                        schedule_table=schedule_table,
                        default_schedule_quality=default_schedule_quality,
                        device_id=i,
                    )
                    for i, s in enumerate(items)
                ]
        self.devices: List[DeviceSimulator] = members

    @classmethod
    def coerce(
        cls,
        devices: Union[int, Sequence[SpecLike], Sequence[DeviceSimulator], "DeviceGroup"],
        *,
        spec: Union[SpecLike, Sequence[SpecLike], None] = None,
        interconnect: Union[Interconnect, str, None] = None,
        schedule_table: Optional[Dict[str, float]] = None,
        default_schedule_quality: float = 0.9,
    ) -> "DeviceGroup":
        """Normalize a ``devices=`` argument into a group: an existing group
        is adopted as-is, anything else goes through the constructor.  The
        single coercion point for every layer accepting ``devices=``.

        ``interconnect=None`` means "the pcie default" when building a new
        group; an *explicit* interconnect combined with an already built
        group is rejected rather than silently ignored (the group keeps its
        own interconnect).  Likewise a non-empty ``schedule_table`` (a tuned
        model's per-kernel qualities) is rejected when the adopted group's
        members were not built with the same table: adoption never mutates
        the group, so accepting it would silently simulate every kernel at
        ``default_schedule_quality`` instead of its tuned quality."""
        if isinstance(devices, cls):
            if interconnect is not None:
                raise ValueError(
                    "interconnect= cannot be combined with an already built "
                    "DeviceGroup (the group keeps its own interconnect, "
                    f"{devices.interconnect.name!r}); construct the group "
                    "with the desired interconnect instead"
                )
            if schedule_table and any(
                member.schedule_table != dict(schedule_table)
                for member in devices.devices
            ):
                raise ValueError(
                    "a tuned schedule_table cannot be combined with an "
                    "already built DeviceGroup whose members were not "
                    "constructed with it (adoption never mutates the group, "
                    "so its kernels would silently run at "
                    "default_schedule_quality); build the group with "
                    "DeviceGroup(n, schedule_table=model.schedule_table) or "
                    "pass devices as an int / spec list instead"
                )
            return devices
        return cls(
            devices,
            spec=spec,
            interconnect="pcie" if interconnect is None else interconnect,
            schedule_table=schedule_table,
            default_schedule_quality=default_schedule_quality,
        )

    # -- container surface -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, index: int) -> DeviceSimulator:
        return self.devices[index]

    def __iter__(self) -> Iterator[DeviceSimulator]:
        return iter(self.devices)

    # -- Device protocol -------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def spec(self) -> GPUSpec:
        """The primary (device-0) spec; placement heuristics read cost-model
        parameters here."""
        return self.devices[0].spec

    @property
    def schedule_table(self) -> Dict[str, float]:
        return self.devices[0].schedule_table

    def device_for(self, index: int) -> DeviceSimulator:
        try:
            return self.devices[index]
        except IndexError:
            raise IndexError(
                f"batch placed on device {index}, but the group owns "
                f"{len(self.devices)} devices"
            ) from None

    def peer_transfer(self, src: int, dst: int, nbytes: float) -> float:
        """Charge one device-to-device transfer over the interconnect.

        The cost lands on the *destination* device (the consumer stalls on
        the incoming copy); same-device transfers are free.  Returns the
        simulated duration in microseconds.
        """
        if src == dst:
            return 0.0
        self.device_for(src)  # validate the source index too
        dst_dev = self.device_for(dst)
        t = self.interconnect.transfer_time_us(nbytes)
        counters = dst_dev.counters
        counters.peer_time_us += t
        counters.num_peer_transfers += 1
        counters.bytes_peer += float(nbytes)
        counters.api_time_us += dst_dev.spec.api_overhead_us
        return t

    @property
    def counters(self) -> DeviceCounters:
        """Element-wise sum of every member's counters."""
        return DeviceCounters.merge([d.counters for d in self.devices])

    def counters_dict(self) -> Dict[str, float]:
        """Aggregate counters plus the group-only ``elapsed_device_us`` (the
        busiest member — members run a round concurrently)."""
        merged = self.counters.as_dict()
        merged["elapsed_device_us"] = max(
            d.counters.total_device_us for d in self.devices
        )
        return merged

    def per_device_dicts(self) -> List[Dict[str, float]]:
        # keyed by position in the group: adopted simulators keep their own
        # device_id untouched, and placement indices are positional anyway
        return [
            {"device": float(i), **d.counters.as_dict()}
            for i, d in enumerate(self.devices)
        ]

    def device_summary(self) -> Dict[str, object]:
        """Busy time, utilization and balance across the group.

        ``utilization`` is each member's busy time relative to the busiest
        member; ``balance`` is the least-busy / busiest ratio over the
        *participating* members (1.0 = the members sharing the work share
        it perfectly).  A member a placement left idle is reported by
        ``active_devices``, not by zeroing balance: ``single`` on a 4-group
        is one perfectly balanced active device, not a 0.00-balance group.
        Reflects counters since the last reset.
        """
        busy = [d.counters.total_device_us for d in self.devices]
        active = [b for b in busy if b > 0.0]
        top = max(busy)
        return {
            "count": len(self.devices),
            "active_devices": len(active),
            "interconnect": self.interconnect.name,
            "busy_us": busy,
            "utilization": [b / top if top > 0 else 0.0 for b in busy],
            "balance": (min(active) / top) if active else 1.0,
        }

    def reset(self) -> None:
        for d in self.devices:
            d.reset()

    def reset_residency(self) -> None:
        for d in self.devices:
            d.reset_residency()

    def note_resident(self, array, device: int = 0) -> None:
        """Mark a device-born host array resident on one member (default the
        primary).  A wrong member guess is safe: the next use on another
        member charges a correctly-priced upload there."""
        self.device_for(device).note_resident(array)

    def set_schedule_quality(self, kernel_name: str, quality: float) -> None:
        for d in self.devices:
            d.set_schedule_quality(kernel_name, quality)

    def __repr__(self) -> str:
        names = {d.spec.name for d in self.devices}
        kind = names.pop() if len(names) == 1 else "heterogeneous"
        return (
            f"DeviceGroup(n={len(self.devices)}, spec={kind!r}, "
            f"interconnect={self.interconnect.name!r})"
        )
