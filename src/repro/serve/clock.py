"""Clocks driving flush policies and traffic generation.

Serving decisions ("has this batch waited past its deadline?") and serving
metrics (queueing delay, end-to-end request latency) are all statements
about *time*, so the serving layer never reads ``time.perf_counter``
directly: every :class:`~repro.serve.session.InferenceSession` carries a
:class:`Clock` and asks it.  Two implementations exist:

* :class:`WallClock` — real time.  The default for interactive use; request
  latencies are real elapsed wall-clock time.
* :class:`SimulatedClock` — a manually advanced virtual clock.  Tests and
  the open-loop traffic benchmark (:mod:`repro.serve.traffic`) script
  arrival times on it and charge each flush round's execution latency via
  :meth:`Clock.charge`, so a whole latency-vs-throughput sweep runs in
  milliseconds of real time and deadline semantics are exactly
  reproducible.

All timestamps are in seconds (an arbitrary epoch; only differences
matter).
"""

from __future__ import annotations

import time


class Clock:
    """Time source for flush policies, sessions and traffic drivers."""

    def now(self) -> float:
        """Current timestamp in seconds."""
        raise NotImplementedError

    def charge(self, seconds: float) -> None:
        """Account ``seconds`` of execution time against the clock.

        On a wall clock this is a no-op (real time already passed while the
        work ran); a simulated clock advances, so completion timestamps of
        flushed requests include the round's execution latency.
        """


class WallClock(Clock):
    """Real time (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class SimulatedClock(Clock):
    """Manually advanced virtual time, for tests and open-loop benchmarks."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (negative values are an error)."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp``; clamped — time never goes
        backwards (an arrival scheduled in the past is simply processed
        now)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def charge(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self._now:.6f}s)"
