"""The serving subsystem: first-class cross-request batching for inference.

ACROBAT's hybrid static+dynamic auto-batching pays off most in a serving
setting, where independent requests arrive continuously and must be batched
*across* each other.  This package is that execution-facing API:

* :mod:`repro.serve.clock` — pluggable time (:class:`WallClock` /
  :class:`SimulatedClock`) so deadline semantics and latency metrics are
  testable and benchmarkable without real waiting;
* :mod:`repro.serve.policy` — :class:`FlushPolicy` and its string-keyed
  registry (``manual``, ``size``, ``deadline``, ``adaptive``): *when* a
  session's backlog executes as one batched round;
* :mod:`repro.serve.request` — future-style :class:`RequestHandle` with
  per-request queueing/latency/launch-share statistics;
* :mod:`repro.serve.session` — :class:`InferenceSession`, the persistent
  policy-driven batching session (``submit``/``poll``/``flush``);
* :mod:`repro.serve.loop` — :class:`ServeLoop`, the single-owner serving
  event loop: thread-safe bounded admission (backpressure), loop-driven
  deadline polling, and continuous batching over a
  :class:`~repro.serve.loop.DeviceTimeline`;
* :mod:`repro.serve.prepare` — :class:`RoundPreparer`, the wall-clock
  worker of the overlapped host pipeline: builds the predicted next round
  (schedule/placement/memory plan) while the loop sleeps, so a flush only
  has to execute (``ServeLoop(prepare=True)``;
  deterministically inlined in ``run_trace``);
* :mod:`repro.serve.server` — :class:`Server`/:class:`Endpoint`
  multiplexing multiple compiled models over one shared device simulator,
  with ``run()``/``drain()``/``shutdown()`` facading the loop;
* :mod:`repro.serve.traffic` — open-loop arrival processes (Poisson,
  bursty, multi-tenant ``tenant_mix``) and deterministic replay on the
  simulated clock — caller-driven (``replay``) or continuous
  (``replay_continuous``) — feeding the ``experiments.serving`` and
  ``experiments.continuous`` benchmarks;
* :mod:`repro.serve.topology` — the sharded serving front door: the loop
  topology registry (``single``/``per_device``/``per_endpoint``),
  SLO-aware admission (priority classes, per-tenant token-bucket quotas,
  slack-based shedding), cross-loop work-stealing, and
  :func:`run_topology_trace`, the deterministic multi-loop trace driver
  behind ``Server.run_trace``.

Entry points: ``compile_model(...).serve(policy="adaptive")`` opens a
policy-driven session; ``Server().add_endpoint(name, model, policy=...)``
builds a multi-model deployment; ``with server.run(): ...`` serves it from
any number of producer threads with awaitable request handles.
"""

from .clock import Clock, SimulatedClock, WallClock
from .loop import (
    BACKPRESSURE_POLICIES,
    BackpressureFull,
    DeviceTimeline,
    LoopStopped,
    RequestShed,
    ServeLoop,
)
from .policy import (
    PRIORITY_CLASSES,
    AdaptivePolicy,
    DeadlinePolicy,
    FlushPolicy,
    ManualPolicy,
    SizePolicy,
    available_flush_policies,
    make_flush_policy,
    priority_rank,
    register_flush_policy,
    resolve_priority,
    select_shed_victim,
    unregister_flush_policy,
)
from .prepare import RoundPreparer
from .request import (
    QuotaExceeded,
    RequestCancelled,
    RequestExpired,
    RequestHandle,
    RequestStats,
)
from .server import Endpoint, Server
from .session import InferenceSession, RoundAborted
from .topology import (
    AdmissionController,
    LoopTopology,
    PerDeviceTopology,
    PerEndpointTopology,
    SingleTopology,
    TokenBucket,
    available_topologies,
    make_topology,
    register_topology,
    run_topology_trace,
)
from .traffic import (
    TenantSpec,
    TrafficReport,
    bursty_arrivals,
    poisson_arrivals,
    replay,
    replay_continuous,
    replay_server,
    replay_server_continuous,
    tenant_mix,
)

__all__ = [
    "Clock",
    "SimulatedClock",
    "WallClock",
    "ServeLoop",
    "DeviceTimeline",
    "BackpressureFull",
    "RequestShed",
    "LoopStopped",
    "RoundPreparer",
    "BACKPRESSURE_POLICIES",
    "FlushPolicy",
    "ManualPolicy",
    "SizePolicy",
    "DeadlinePolicy",
    "AdaptivePolicy",
    "available_flush_policies",
    "make_flush_policy",
    "register_flush_policy",
    "unregister_flush_policy",
    "RequestHandle",
    "RequestStats",
    "RequestCancelled",
    "RequestExpired",
    "QuotaExceeded",
    "InferenceSession",
    "RoundAborted",
    "Endpoint",
    "Server",
    "PRIORITY_CLASSES",
    "resolve_priority",
    "priority_rank",
    "select_shed_victim",
    "TokenBucket",
    "AdmissionController",
    "LoopTopology",
    "SingleTopology",
    "PerDeviceTopology",
    "PerEndpointTopology",
    "register_topology",
    "make_topology",
    "available_topologies",
    "run_topology_trace",
    "TrafficReport",
    "poisson_arrivals",
    "bursty_arrivals",
    "tenant_mix",
    "TenantSpec",
    "replay",
    "replay_continuous",
    "replay_server",
    "replay_server_continuous",
]
