"""The serving subsystem: first-class cross-request batching for inference.

ACROBAT's hybrid static+dynamic auto-batching pays off most in a serving
setting, where independent requests arrive continuously and must be batched
*across* each other.  This package is that execution-facing API:

* :mod:`repro.serve.clock` — pluggable time (:class:`WallClock` /
  :class:`SimulatedClock`) so deadline semantics and latency metrics are
  testable and benchmarkable without real waiting;
* :mod:`repro.serve.policy` — :class:`FlushPolicy` and its string-keyed
  registry (``manual``, ``size``, ``deadline``, ``adaptive``): *when* a
  session's backlog executes as one batched round;
* :mod:`repro.serve.request` — future-style :class:`RequestHandle` with
  per-request queueing/latency/launch-share statistics;
* :mod:`repro.serve.session` — :class:`InferenceSession`, the persistent
  policy-driven batching session (``submit``/``poll``/``flush``);
* :mod:`repro.serve.server` — :class:`Server`/:class:`Endpoint`
  multiplexing multiple compiled models over one shared device simulator;
* :mod:`repro.serve.traffic` — open-loop arrival processes (Poisson,
  bursty) and deterministic replay on the simulated clock, feeding the
  ``experiments.serving`` latency-vs-throughput benchmark.

Entry points: ``compile_model(...).serve(policy="adaptive")`` opens a
policy-driven session; ``Server().add_endpoint(name, model, policy=...)``
builds a multi-model deployment.
"""

from .clock import Clock, SimulatedClock, WallClock
from .policy import (
    AdaptivePolicy,
    DeadlinePolicy,
    FlushPolicy,
    ManualPolicy,
    SizePolicy,
    available_flush_policies,
    make_flush_policy,
    register_flush_policy,
    unregister_flush_policy,
)
from .request import RequestHandle, RequestStats
from .server import Endpoint, Server
from .session import InferenceSession
from .traffic import (
    TrafficReport,
    bursty_arrivals,
    poisson_arrivals,
    replay,
    replay_server,
)

__all__ = [
    "Clock",
    "SimulatedClock",
    "WallClock",
    "FlushPolicy",
    "ManualPolicy",
    "SizePolicy",
    "DeadlinePolicy",
    "AdaptivePolicy",
    "available_flush_policies",
    "make_flush_policy",
    "register_flush_policy",
    "unregister_flush_policy",
    "RequestHandle",
    "RequestStats",
    "InferenceSession",
    "Endpoint",
    "Server",
    "TrafficReport",
    "poisson_arrivals",
    "bursty_arrivals",
    "replay",
    "replay_server",
]
