"""Multi-model serving: named endpoints over one shared device (or group).

A production deployment rarely serves a single model.  :class:`Server`
multiplexes several compiled models behind named :class:`Endpoint`\\ s that
share one accelerator — a single
:class:`~repro.runtime.device.DeviceSimulator` or, with ``devices=N``, a
:class:`~repro.devices.group.DeviceGroup` sharded by a placement policy —
and one :class:`~repro.serve.clock.Clock`: each endpoint owns a
policy-driven :class:`~repro.serve.session.InferenceSession` over its
model, requests are routed by endpoint name, and deadline-driven flushing
is coordinated server-wide through :meth:`Server.poll` /
:meth:`Server.next_deadline`.

Per-flush device counters stay isolated even on the shared device: every
session resets the device's counters at the flush that executes its round
(the residency cache — which parameters are already on the GPU — is shared
and persists, as it would on real hardware).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from ..runtime.device import DeviceSimulator, GPUSpec
from .clock import Clock, WallClock
from .request import RequestHandle
from .session import InferenceSession


class Endpoint:
    """One named model behind a server: a model plus its serving session."""

    def __init__(self, name: str, model: Any, session: InferenceSession) -> None:
        self.name = name
        self.model = model
        self.session = session

    # -- request path ----------------------------------------------------------
    def submit(self, instance: Any, at: Optional[float] = None) -> RequestHandle:
        return self.session.submit(instance, at=at)

    def poll(self) -> Optional[List[Any]]:
        return self.session.poll()

    def flush(self) -> Optional[List[Any]]:
        return self.session.flush()

    # -- introspection ---------------------------------------------------------
    @property
    def pending_requests(self) -> int:
        return self.session.pending_requests

    def next_deadline(self) -> Optional[float]:
        return self.session.next_deadline()

    def summary(self) -> Dict[str, float]:
        """Aggregate serving statistics across the endpoint's lifetime
        (running totals — O(1) regardless of how long the endpoint has
        served)."""
        session = self.session
        flushes = session.num_flushes
        return {
            "requests": session.num_requests,
            "flushes": flushes,
            "pending": self.pending_requests,
            "kernel_launches": session.total_kernel_calls,
            "mean_batch": (session.requests_flushed / flushes) if flushes else 0.0,
            "device_ms": session.total_device_ms,
        }

    def __repr__(self) -> str:
        return (
            f"Endpoint({self.name!r}, policy={self.session.policy!r}, "
            f"pending={self.pending_requests})"
        )


class Server:
    """Routes requests to named endpoints sharing one device (group) and
    clock.

    ``devices`` turns on multi-device serving: an integer count, a list of
    :class:`GPUSpec`/preset names (heterogeneous groups), or a ready
    :class:`~repro.devices.group.DeviceGroup`; endpoints then shard their
    flush batches across the group under ``placement`` (a
    :mod:`repro.devices.placement` registry name or instance, default
    ``round_robin``), and cross-device operand traffic is priced by
    ``interconnect`` (``"pcie"``/``"nvlink"`` or an
    :class:`~repro.devices.interconnect.Interconnect`).
    """

    def __init__(
        self,
        device: Optional[DeviceSimulator] = None,
        clock: Optional[Clock] = None,
        gpu_spec: Optional[GPUSpec] = None,
        *,
        devices: Any = None,
        placement: Any = None,
        interconnect: Union[str, Any, None] = None,
    ) -> None:
        if devices is not None:
            from ..devices.group import DeviceGroup

            if device is not None:
                raise ValueError(
                    "pass either an explicit device or devices=, not both "
                    "(wrap your devices in a DeviceGroup and pass it as "
                    "device= instead)"
                )
            device = DeviceGroup.coerce(devices, spec=gpu_spec, interconnect=interconnect)
        self.device = device or DeviceSimulator(spec=gpu_spec)
        if placement is not None and not isinstance(placement, str):
            # placement instances are stateful (e.g. data_parallel's learned
            # per-block work keyed by block id) and belong to exactly one
            # engine; a server-wide default is instantiated per endpoint, so
            # it must be a registry name
            raise TypeError(
                "the server-wide placement default must be a registry name; "
                "pass policy instances per endpoint via "
                "add_endpoint(placement=...)"
            )
        #: placement-policy default for endpoints (None: round_robin when
        #: the server owns a multi-device group)
        self.placement = placement
        self.clock = clock or WallClock()
        self._endpoints: Dict[str, Endpoint] = {}

    @property
    def num_devices(self) -> int:
        return getattr(self.device, "num_devices", 1)

    # -- endpoint management ---------------------------------------------------
    def add_endpoint(
        self,
        name: str,
        model: Any,
        policy: Any = "size",
        *,
        scheduler: Optional[str] = None,
        placement: Any = None,
        **policy_args: Any,
    ) -> Endpoint:
        """Register ``model`` under ``name``.

        ``model`` is any executable model exposing ``make_engine(device,
        policy)`` (:class:`~repro.compiler.driver.CompiledModel` or
        :class:`~repro.vm.interpreter.VMModel`); ``policy`` selects the
        endpoint's flush policy by name (with ``policy_args``) or instance,
        and ``scheduler`` optionally overrides the model's scheduler-policy
        name.  The endpoint's session runs on the server's shared device
        (group) and clock; ``placement`` overrides the server-wide
        placement policy for this endpoint.
        """
        if name == "devices":
            raise ValueError(
                "endpoint name 'devices' is reserved (Server.summary() "
                "reports the device-group breakdown under that key)"
            )
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already exists")
        engine = model.make_engine(
            device=self.device,
            scheduler=scheduler,
            placement=placement if placement is not None else self.placement,
        )
        session = InferenceSession(
            engine, policy=policy, policy_args=policy_args or None, clock=self.clock
        )
        endpoint = Endpoint(name, model, session)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(
                f"unknown endpoint {name!r}; registered endpoints: "
                f"{', '.join(sorted(self._endpoints)) or '(none)'}"
            ) from None

    @property
    def endpoints(self) -> Tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    # -- request path ----------------------------------------------------------
    def submit(
        self, name: str, instance: Any, at: Optional[float] = None
    ) -> RequestHandle:
        """Route one request to endpoint ``name``."""
        return self.endpoint(name).submit(instance, at=at)

    def poll(self) -> int:
        """Fire every endpoint flush whose deadline has passed; returns the
        number of rounds flushed."""
        flushed = 0
        for endpoint in self._endpoints.values():
            if endpoint.poll() is not None:
                flushed += 1
        return flushed

    def flush_all(self) -> Dict[str, Optional[List[Any]]]:
        """Flush every endpoint's backlog (drain); returns outputs by
        endpoint name (None for endpoints that were empty)."""
        return {name: ep.flush() for name, ep in self._endpoints.items()}

    def next_deadline(self) -> Optional[float]:
        """Earliest pending flush deadline across all endpoints."""
        deadlines = [
            d
            for d in (ep.next_deadline() for ep in self._endpoints.values())
            if d is not None
        ]
        return min(deadlines) if deadlines else None

    # -- introspection ---------------------------------------------------------
    def device_summary(self) -> Dict[str, Any]:
        """Utilization and balance across the server's device (group):
        per-device busy time, each member's share of the busiest member, and
        the least/busiest ratio (1.0 = perfectly balanced).  Counters are
        per-flush (sessions reset them at each round), so this reflects the
        most recent round."""
        return self.device.device_summary()

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-endpoint aggregate serving statistics, plus a ``devices``
        entry with the group's utilization/balance breakdown."""
        out: Dict[str, Dict[str, Any]] = {
            name: ep.summary() for name, ep in sorted(self._endpoints.items())
        }
        out["devices"] = self.device_summary()
        return out

    def __repr__(self) -> str:
        return f"Server(endpoints={list(self.endpoints)!r}, devices={self.num_devices})"
