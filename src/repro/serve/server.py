"""Multi-model serving: named endpoints over one shared device (or group).

A production deployment rarely serves a single model.  :class:`Server`
multiplexes several compiled models behind named :class:`Endpoint`\\ s that
share one accelerator — a single
:class:`~repro.runtime.device.DeviceSimulator` or, with ``devices=N``, a
:class:`~repro.devices.group.DeviceGroup` sharded by a placement policy —
and one :class:`~repro.serve.clock.Clock`: each endpoint owns a
policy-driven :class:`~repro.serve.session.InferenceSession` over its
model, requests are routed by endpoint name, and deadline-driven flushing
is coordinated server-wide through :meth:`Server.poll` /
:meth:`Server.next_deadline`.

Per-flush device counters stay isolated even on the shared device: every
session resets the device's counters at the flush that executes its round
(the residency cache — which parameters are already on the GPU — is shared
and persists, as it would on real hardware).

Request intake is owned by the server's :class:`~repro.serve.loop.ServeLoop`
(``server.loop``): :meth:`Server.submit`/:meth:`Server.poll`/
:meth:`Server.flush_all` are thin facades over it.  Without a running loop
they behave exactly as the historical caller-driven API; after
:meth:`Server.run` the same calls become thread-safe — requests enter the
loop's bounded admission queue (``max_pending``/``backpressure``) and all
session work happens on the loop thread, with :meth:`Server.drain` /
:meth:`Server.shutdown` replacing hand-rolled poll choreography.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from ..runtime.device import DeviceSimulator, GPUSpec
from .clock import Clock, WallClock
from .loop import ServeLoop
from .policy import FlushPolicy, resolve_priority
from .request import QuotaExceeded, RequestHandle
from .session import InferenceSession
from .topology import (
    AdmissionController,
    LoopTopology,
    SingleTopology,
    TopologyRun,
    make_topology,
    run_topology_trace,
)

#: endpoint names Server.summary() uses for its own aggregate entries
RESERVED_ENDPOINT_NAMES = ("devices", "tenants", "loops")


class Endpoint:
    """One named model behind a server: a model plus its serving session.

    Sessions are lock-free and, once :meth:`Server.run` has started the
    serve loop, owned exclusively by the loop thread — the endpoint's
    session-mutating methods therefore refuse to run while the loop does
    (route through ``Server.submit``/``drain`` instead)."""

    def __init__(
        self,
        name: str,
        model: Any,
        session: InferenceSession,
        loop: Optional[ServeLoop] = None,
        *,
        server: Any = None,
        policy: Any = None,
        policy_args: Optional[Dict[str, Any]] = None,
        scheduler: Optional[str] = None,
        placement: Any = None,
    ) -> None:
        self.name = name
        self.model = model
        self.session = session
        self._loop = loop
        self._server = server
        #: one serving session per topology slice (a single-loop server has
        #: exactly one replica: the session itself)
        self.replicas: List[InferenceSession] = [session]
        # construction arguments, kept so a multi-loop topology can rebuild
        # the endpoint's session per device complement
        self._policy = policy
        self._policy_args = policy_args
        self._scheduler = scheduler
        self._placement = placement

    def _all_loops(self) -> List[ServeLoop]:
        """Every loop serving this endpoint (one, before a multi-loop
        topology materializes)."""
        server = self._server
        if server is not None and server._topology_built:
            loops = server.topology.loops_for(self.name)
            if loops:
                return loops
        return [self._loop] if self._loop is not None else []

    def _build_replicas(
        self, complements: List[Any], clock: Clock
    ) -> List[InferenceSession]:
        """Rebuild the endpoint's serving session once per device
        complement (multi-loop topologies).  Stateful policy/placement
        instances belong to exactly one session/engine, so replication
        requires registry names for both."""
        current = self.session.engine.device
        if len(complements) == 1 and complements[0] is current:
            self.replicas = [self.session]
            return self.replicas
        if len(complements) > 1:
            if isinstance(self._policy, FlushPolicy):
                raise TypeError(
                    "a flush-policy instance is stateful and belongs to one "
                    "session; multi-loop topologies need the policy by "
                    "registry name (add_endpoint(policy='adaptive', ...))"
                )
            if self._placement is not None and not isinstance(self._placement, str):
                raise TypeError(
                    "a placement instance is stateful and belongs to one "
                    "engine; multi-loop topologies need the placement by "
                    "registry name"
                )
        replicas = []
        for dev in complements:
            multi = getattr(dev, "num_devices", 1) > 1
            engine = self.model.make_engine(
                device=dev,
                scheduler=self._scheduler,
                # a single-member slice has nothing to shard: placement only
                # rides along when the complement is itself a group
                placement=self._placement if multi else None,
            )
            replicas.append(
                InferenceSession(
                    engine,
                    policy=self._policy,
                    policy_args=dict(self._policy_args)
                    if self._policy_args
                    else None,
                    clock=clock,
                )
            )
        self.replicas = replicas
        self.session = replicas[0]
        return replicas

    def _session_op(self, what: str, op: Any) -> Any:
        """Run a session mutation under the loop's mode lock: the check and
        the operation are atomic against a concurrent ``Server.run()``, so
        the inline path can never race the freshly started loop thread
        (the same protocol ``ServeLoop.submit`` uses)."""
        loops = self._all_loops()
        if not loops:
            return op()
        with loops[0]._mode_lock:
            if any(loop.running for loop in loops):
                raise RuntimeError(
                    f"cannot {what} directly while the serve loop is "
                    "running — the loop thread owns this endpoint's "
                    "session; use Server.submit()/drain() (or shutdown() "
                    "first)"
                )
            return op()

    # -- request path ----------------------------------------------------------
    def submit(self, instance: Any, at: Optional[float] = None) -> RequestHandle:
        return self._session_op(
            "submit to an endpoint", lambda: self.session.submit(instance, at=at)
        )

    def poll(self) -> Optional[List[Any]]:
        return self._session_op("poll an endpoint", self.session.poll)

    def flush(self) -> Optional[List[Any]]:
        return self._session_op("flush an endpoint", self.session.flush)

    # -- introspection ---------------------------------------------------------
    @property
    def pending_requests(self) -> int:
        return sum(s.pending_requests for s in self.replicas)

    def next_deadline(self) -> Optional[float]:
        deadlines = [
            d for d in (s.next_deadline() for s in self.replicas) if d is not None
        ]
        return min(deadlines) if deadlines else None

    def summary(self) -> Dict[str, float]:
        """Aggregate serving statistics across the endpoint's lifetime
        (running totals — O(1) regardless of how long the endpoint has
        served, summed over every replica under a multi-loop topology),
        plus two point-in-time gauges a decode-heavy deployment watches:
        ``queue_depth`` (requests pending in the session round(s) plus
        admissions still queued at the loops for this endpoint) and
        ``oldest_pending_age_ms`` (how long the oldest such request has
        been waiting)."""
        replicas = self.replicas
        flushes = sum(s.num_flushes for s in replicas)
        requests_flushed = sum(s.requests_flushed for s in replicas)
        now = self.session.clock.now()
        oldest: Optional[float] = None
        for s in replicas:
            started = s.round_started_at
            if started is not None and (oldest is None or started < oldest):
                oldest = started
        queued = 0
        for loop in self._all_loops():
            with loop._cond:
                for adm in loop._queue:
                    if adm.name == self.name:
                        queued += 1
                        if oldest is None or adm.at < oldest:
                            oldest = adm.at
        pending = self.pending_requests
        out = {
            "requests": sum(s.num_requests for s in replicas),
            "flushes": flushes,
            "pending": pending,
            "queue_depth": pending + queued,
            "oldest_pending_age_ms": (
                max(0.0, now - oldest) * 1e3 if oldest is not None else 0.0
            ),
            "cancelled": sum(s.num_cancelled for s in replicas),
            "kernel_launches": sum(s.total_kernel_calls for s in replicas),
            "mean_batch": (requests_flushed / flushes) if flushes else 0.0,
            "device_ms": sum(s.total_device_ms for s in replicas),
            # overlapped host pipeline: rounds adopted as prepared vs
            # speculations abandoned when admission diverged
            "speculation_hits": sum(s.speculation_hits for s in replicas),
            "speculation_aborts": sum(s.speculation_aborts for s in replicas),
            "prepare_hidden_ms": sum(s.prepare_hidden_ms for s in replicas),
        }
        metrics = self.session.generation_metrics
        if metrics is not None:
            out.update(metrics.summary())
        return out

    def __repr__(self) -> str:
        return (
            f"Endpoint({self.name!r}, policy={self.session.policy!r}, "
            f"pending={self.pending_requests})"
        )


class Server:
    """Routes requests to named endpoints sharing one device (group) and
    clock.

    ``devices`` turns on multi-device serving: an integer count, a list of
    :class:`GPUSpec`/preset names (heterogeneous groups), or a ready
    :class:`~repro.devices.group.DeviceGroup`; endpoints then shard their
    flush batches across the group under ``placement`` (a
    :mod:`repro.devices.placement` registry name or instance, default
    ``round_robin``), and cross-device operand traffic is priced by
    ``interconnect`` (``"pcie"``/``"nvlink"`` or an
    :class:`~repro.devices.interconnect.Interconnect`).

    ``max_pending`` bounds the admission queue of the server's
    :class:`~repro.serve.loop.ServeLoop` and ``backpressure`` picks the
    overflow policy (``"block"``/``"reject"``/``"shed-oldest"``/
    ``"shed-slack"``); both only bite once :meth:`run` starts the loop (or,
    for the rejecting policies, on inline intake too).  ``prepare`` turns
    on the loop's overlapped host pipeline (speculative round preparation;
    see :class:`~repro.serve.loop.ServeLoop`).

    ``topology`` shards the front door (see :mod:`repro.serve.topology`):
    a registry name (``"single"``/``"per_device"``/``"per_endpoint"``, with
    ``topology_args``) or a ready :class:`LoopTopology` instance.  The
    topology materializes lazily at the first :meth:`run`/:meth:`run_trace`
    (or the first routed :meth:`submit`); endpoint registration must happen
    before that.  ``tenants`` maps tenant name → ``(rate_rps, burst)``
    token-bucket quotas for SLO-aware admission; requests from tenants over
    quota resolve with :class:`~repro.serve.request.QuotaExceeded` without
    ever reaching a loop.
    """

    def __init__(
        self,
        device: Optional[DeviceSimulator] = None,
        clock: Optional[Clock] = None,
        gpu_spec: Optional[GPUSpec] = None,
        *,
        devices: Any = None,
        placement: Any = None,
        interconnect: Union[str, Any, None] = None,
        max_pending: Optional[int] = None,
        backpressure: str = "block",
        prepare: bool = False,
        topology: Union[str, LoopTopology] = "single",
        topology_args: Optional[Dict[str, Any]] = None,
        tenants: Optional[Dict[str, Any]] = None,
    ) -> None:
        if devices is not None:
            from ..devices.group import DeviceGroup

            if device is not None:
                raise ValueError(
                    "pass either an explicit device or devices=, not both "
                    "(wrap your devices in a DeviceGroup and pass it as "
                    "device= instead)"
                )
            device = DeviceGroup.coerce(devices, spec=gpu_spec, interconnect=interconnect)
        self.device = device or DeviceSimulator(spec=gpu_spec)
        if placement is not None and not isinstance(placement, str):
            # placement instances are stateful (e.g. data_parallel's learned
            # per-block work keyed by block id) and belong to exactly one
            # engine; a server-wide default is instantiated per endpoint, so
            # it must be a registry name
            raise TypeError(
                "the server-wide placement default must be a registry name; "
                "pass policy instances per endpoint via "
                "add_endpoint(placement=...)"
            )
        #: placement-policy default for endpoints (None: round_robin when
        #: the server owns a multi-device group)
        self.placement = placement
        self.clock = clock or WallClock()
        self._endpoints: Dict[str, Endpoint] = {}
        #: the event loop owning this server's intake and flush choreography
        #: (under a multi-loop topology, re-pointed at loop 0 once the
        #: topology materializes; ``topology.loops`` holds them all)
        self.loop = ServeLoop(
            self,
            max_pending=max_pending,
            backpressure=backpressure,
            prepare=prepare,
        )
        #: SLO-aware admission: per-tenant quotas + lifecycle gauges
        self.admission = AdmissionController(tenants)
        if isinstance(topology, LoopTopology):
            self.topology = topology
        elif isinstance(topology, str):
            self.topology = make_topology(topology, **(topology_args or {}))
        else:
            raise TypeError(
                "topology must be a registry name or a LoopTopology instance, "
                f"got {type(topology).__name__}"
            )
        self._topology_built = False

    @property
    def num_devices(self) -> int:
        return getattr(self.device, "num_devices", 1)

    def _loops(self) -> List[ServeLoop]:
        """Every serve loop of the (materialized) topology; just the
        server's own loop before materialization."""
        return self.topology.loops if self._topology_built else [self.loop]

    def _materialize_topology(self) -> None:
        """Build the topology's loops against this server (idempotent).
        Happens lazily at the first ``run()``/``run_trace()`` (or a routed
        ``submit``), so every ``add_endpoint`` call is visible to it."""
        if self._topology_built:
            return
        loops = self.topology.build(self)
        self._topology_built = True
        if loops and loops[0] is not self.loop:
            self.loop = loops[0]
        for ep in self._endpoints.values():
            serving = self.topology.loops_for(ep.name)
            ep._loop = serving[0] if serving else None

    # -- endpoint management ---------------------------------------------------
    def add_endpoint(
        self,
        name: str,
        model: Any,
        policy: Any = "size",
        *,
        scheduler: Optional[str] = None,
        placement: Any = None,
        **policy_args: Any,
    ) -> Endpoint:
        """Register ``model`` under ``name``.

        ``model`` is any executable model exposing ``make_engine(device,
        policy)`` (:class:`~repro.compiler.driver.CompiledModel` or
        :class:`~repro.vm.interpreter.VMModel`); ``policy`` selects the
        endpoint's flush policy by name (with ``policy_args``) or instance,
        and ``scheduler`` optionally overrides the model's scheduler-policy
        name.  The endpoint's session runs on the server's shared device
        (group) and clock; ``placement`` overrides the server-wide
        placement policy for this endpoint.
        """
        if name in RESERVED_ENDPOINT_NAMES:
            raise ValueError(
                f"endpoint name {name!r} is reserved (Server.summary() "
                "reports its own aggregate entries under "
                f"{', '.join(RESERVED_ENDPOINT_NAMES)})"
            )
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already exists")
        if any(loop.running for loop in self._loops()):
            raise RuntimeError(
                "cannot add endpoints while the serve loop is running; "
                "register endpoints before Server.run() (or shutdown() first)"
            )
        if self._topology_built and len(self.topology.loops) > 1:
            raise RuntimeError(
                "cannot add endpoints after a multi-loop topology has "
                "materialized; register every endpoint before the first "
                "Server.run()/run_trace()"
            )
        resolved_placement = placement if placement is not None else self.placement
        engine = model.make_engine(
            device=self.device,
            scheduler=scheduler,
            placement=resolved_placement,
        )
        session = InferenceSession(
            engine, policy=policy, policy_args=policy_args or None, clock=self.clock
        )
        endpoint = Endpoint(
            name,
            model,
            session,
            loop=self.loop,
            server=self,
            policy=policy,
            policy_args=policy_args or None,
            scheduler=scheduler,
            placement=resolved_placement,
        )
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(
                f"unknown endpoint {name!r}; registered endpoints: "
                f"{', '.join(sorted(self._endpoints)) or '(none)'}"
            ) from None

    @property
    def endpoints(self) -> Tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    # -- request path (facade over the serve loop) ------------------------------
    def submit(
        self,
        name: str,
        instance: Any,
        at: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> RequestHandle:
        """Route one request to endpoint ``name``.

        Thread-safe once :meth:`run` has started the serve loop (the
        request enters the loop's bounded admission queue and the returned
        handle resolves when the loop flushes its round — ``await handle``
        or ``handle.result(timeout=...)``); before that it is the
        historical synchronous intake path.  ``deadline`` (absolute clock
        timestamp) expires the request if it is still queued when the
        deadline passes — see :meth:`ServeLoop.submit`.

        ``tenant``/``priority`` tag the request for SLO-aware admission: a
        tenant over its token-bucket quota gets a handle resolved with
        :class:`~repro.serve.request.QuotaExceeded` (never an exception
        from ``submit`` itself), and priority classes steer the
        ``shed-slack`` backpressure policy and the per-tenant gauges in
        :meth:`summary`.  Under a multi-loop topology the request routes
        to the least-backlogged loop serving the endpoint.
        """
        self.endpoint(name)  # fail fast on unknown endpoints
        if priority is not None:
            priority = resolve_priority(priority)
        if not self._topology_built and not isinstance(self.topology, SingleTopology):
            self._materialize_topology()
        now = self.clock.now() if at is None else at
        if not self.admission.admit(tenant, now):
            handle = RequestHandle(
                -1,
                submitted_at=now,
                tenant=tenant,
                priority=priority,
                deadline=deadline,
            )
            self.admission.track(handle)
            handle._fail(
                QuotaExceeded(f"tenant {tenant!r} over its admission quota")
            )
            return handle
        loops = self._loops()
        loop = self.topology.route(name) if len(loops) > 1 else self.loop
        handle = loop.submit(
            name, instance, at=at, deadline=deadline, tenant=tenant,
            priority=priority,
        )
        self.admission.track(handle)
        return handle

    def poll(self) -> int:
        """Fire every endpoint flush whose deadline has passed; returns the
        number of rounds flushed.  With the loop running, deadline polling
        is the loop's job — this just nudges it awake."""
        return sum(loop.poll() for loop in self._loops())

    def flush_all(self) -> Dict[str, Optional[List[Any]]]:
        """Flush every endpoint's backlog (drain); returns outputs by
        endpoint name (None for endpoints that were empty).  With the loop
        running this delegates to :meth:`drain` and returns ``{}``."""
        loops = self._loops()
        if len(loops) == 1:
            return self.loop.flush_all()
        out: Dict[str, Optional[List[Any]]] = {}
        for loop in loops:
            for name, outputs in loop.flush_all().items():
                if name not in out or out[name] is None:
                    out[name] = outputs
                elif outputs:
                    out[name] = list(out[name]) + list(outputs)
        return out

    def next_deadline(self) -> Optional[float]:
        """Earliest pending flush deadline across all endpoints."""
        deadlines = [
            d for d in (lp.next_deadline() for lp in self._loops()) if d is not None
        ]
        return min(deadlines) if deadlines else None

    # -- event-loop lifecycle ---------------------------------------------------
    def run(self) -> Any:
        """Start the serving event loop(s) (wall-clock traffic).

        From here on :meth:`submit` is thread-safe and the loop(s) drive
        all deadline polling and flushing.  Returns a context manager::

            with server.run():
                handle = server.submit("trees", request)
                output = handle.result(timeout=5.0)

        Under the default ``single`` topology this is the loop itself
        (back-compatible); a multi-loop topology starts one thread per
        loop and returns a :class:`~repro.serve.topology.TopologyRun`.
        Simulated clocks replay deterministically through
        :meth:`run_trace` /
        :func:`repro.serve.traffic.replay_server_continuous` instead.
        """
        self._materialize_topology()
        loops = self.topology.loops
        if len(loops) == 1:
            return loops[0].start()
        started = []
        try:
            for loop in loops:
                loop.start()
                started.append(loop)
        except BaseException:
            for loop in started:
                loop.shutdown()
            raise
        return TopologyRun(self)

    def run_trace(
        self,
        workload: Any,
        *,
        deterministic: bool = True,
        host_model: Optional[Tuple[float, float]] = None,
        prepare: Optional[bool] = None,
    ) -> Dict[str, List[RequestHandle]]:
        """Deterministically replay a tagged open-loop trace against the
        server's (possibly multi-loop) topology on the simulated clock —
        see :func:`repro.serve.topology.run_topology_trace`.  Workload
        items are ``(arrival_time, endpoint, request)`` or ``(...,
        meta)`` with ``meta`` carrying ``tenant``/``priority``/
        ``deadline``.  Returns every request's handle per endpoint, in
        arrival order (failed admissions included — filter with
        ``handle.failed``)."""
        self._materialize_topology()
        return run_topology_trace(
            self,
            workload,
            deterministic=deterministic,
            host_model=host_model,
            prepare=prepare,
        )

    def drain(self) -> None:
        """Flush every backlog and wait for all admitted requests to
        complete (works with or without a running loop)."""
        for loop in self._loops():
            loop.drain()

    def shutdown(self) -> None:
        """Drain, then stop the serving loop(s) (no-op if never run)."""
        first: Optional[BaseException] = None
        for loop in self._loops():
            try:
                loop.shutdown()
            except BaseException as exc:
                if first is None:
                    first = exc
        if first is not None:
            raise first

    # -- introspection ---------------------------------------------------------
    def device_summary(self) -> Dict[str, Any]:
        """Utilization and balance across the server's device (group):
        per-device busy time, each member's share of the busiest member, and
        the least/busiest ratio (1.0 = perfectly balanced).  Counters are
        per-flush (sessions reset them at each round), so this reflects the
        most recent round."""
        return self.device.device_summary()

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-endpoint aggregate serving statistics, plus three aggregate
        entries: ``devices`` (the group's utilization/balance breakdown),
        ``tenants`` (per-tenant SLO-aware admission gauges — submitted/
        completed/rejected/shed/expired, per priority class, with SLO
        attainment), and ``loops`` (per-loop admission and work-stealing
        counters)."""
        out: Dict[str, Dict[str, Any]] = {
            name: ep.summary() for name, ep in sorted(self._endpoints.items())
        }
        out["devices"] = self.device_summary()
        out["tenants"] = self.admission.summary()
        out["loops"] = {
            loop.name: {
                "admitted": loop.num_admitted,
                "rejected": loop.num_rejected,
                "shed": loop.num_shed,
                "expired": loop.num_expired,
                "cancelled": loop.num_cancelled,
                "stolen_in": loop.num_stolen_in,
                "stolen_out": loop.num_stolen_out,
                "queued": len(loop._queue),
            }
            for loop in self._loops()
        }
        return out

    def __repr__(self) -> str:
        return f"Server(endpoints={list(self.endpoints)!r}, devices={self.num_devices})"
