"""Multi-model serving: named endpoints over one shared device (or group).

A production deployment rarely serves a single model.  :class:`Server`
multiplexes several compiled models behind named :class:`Endpoint`\\ s that
share one accelerator — a single
:class:`~repro.runtime.device.DeviceSimulator` or, with ``devices=N``, a
:class:`~repro.devices.group.DeviceGroup` sharded by a placement policy —
and one :class:`~repro.serve.clock.Clock`: each endpoint owns a
policy-driven :class:`~repro.serve.session.InferenceSession` over its
model, requests are routed by endpoint name, and deadline-driven flushing
is coordinated server-wide through :meth:`Server.poll` /
:meth:`Server.next_deadline`.

Per-flush device counters stay isolated even on the shared device: every
session resets the device's counters at the flush that executes its round
(the residency cache — which parameters are already on the GPU — is shared
and persists, as it would on real hardware).

Request intake is owned by the server's :class:`~repro.serve.loop.ServeLoop`
(``server.loop``): :meth:`Server.submit`/:meth:`Server.poll`/
:meth:`Server.flush_all` are thin facades over it.  Without a running loop
they behave exactly as the historical caller-driven API; after
:meth:`Server.run` the same calls become thread-safe — requests enter the
loop's bounded admission queue (``max_pending``/``backpressure``) and all
session work happens on the loop thread, with :meth:`Server.drain` /
:meth:`Server.shutdown` replacing hand-rolled poll choreography.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from ..runtime.device import DeviceSimulator, GPUSpec
from .clock import Clock, WallClock
from .loop import ServeLoop
from .request import RequestHandle
from .session import InferenceSession


class Endpoint:
    """One named model behind a server: a model plus its serving session.

    Sessions are lock-free and, once :meth:`Server.run` has started the
    serve loop, owned exclusively by the loop thread — the endpoint's
    session-mutating methods therefore refuse to run while the loop does
    (route through ``Server.submit``/``drain`` instead)."""

    def __init__(
        self,
        name: str,
        model: Any,
        session: InferenceSession,
        loop: Optional[ServeLoop] = None,
    ) -> None:
        self.name = name
        self.model = model
        self.session = session
        self._loop = loop

    def _session_op(self, what: str, op: Any) -> Any:
        """Run a session mutation under the loop's mode lock: the check and
        the operation are atomic against a concurrent ``Server.run()``, so
        the inline path can never race the freshly started loop thread
        (the same protocol ``ServeLoop.submit`` uses)."""
        if self._loop is None:
            return op()
        with self._loop._mode_lock:
            if self._loop.running:
                raise RuntimeError(
                    f"cannot {what} directly while the serve loop is "
                    "running — the loop thread owns this endpoint's "
                    "session; use Server.submit()/drain() (or shutdown() "
                    "first)"
                )
            return op()

    # -- request path ----------------------------------------------------------
    def submit(self, instance: Any, at: Optional[float] = None) -> RequestHandle:
        return self._session_op(
            "submit to an endpoint", lambda: self.session.submit(instance, at=at)
        )

    def poll(self) -> Optional[List[Any]]:
        return self._session_op("poll an endpoint", self.session.poll)

    def flush(self) -> Optional[List[Any]]:
        return self._session_op("flush an endpoint", self.session.flush)

    # -- introspection ---------------------------------------------------------
    @property
    def pending_requests(self) -> int:
        return self.session.pending_requests

    def next_deadline(self) -> Optional[float]:
        return self.session.next_deadline()

    def summary(self) -> Dict[str, float]:
        """Aggregate serving statistics across the endpoint's lifetime
        (running totals — O(1) regardless of how long the endpoint has
        served), plus two point-in-time gauges a decode-heavy deployment
        watches: ``queue_depth`` (requests pending in the session round
        plus admissions still queued at the loop for this endpoint) and
        ``oldest_pending_age_ms`` (how long the oldest such request has
        been waiting)."""
        session = self.session
        flushes = session.num_flushes
        now = session.clock.now()
        oldest = session.round_started_at
        queued = 0
        if self._loop is not None:
            with self._loop._cond:
                for adm in self._loop._queue:
                    if adm.name == self.name:
                        queued += 1
                        if oldest is None or adm.at < oldest:
                            oldest = adm.at
        out = {
            "requests": session.num_requests,
            "flushes": flushes,
            "pending": self.pending_requests,
            "queue_depth": self.pending_requests + queued,
            "oldest_pending_age_ms": (
                max(0.0, now - oldest) * 1e3 if oldest is not None else 0.0
            ),
            "cancelled": session.num_cancelled,
            "kernel_launches": session.total_kernel_calls,
            "mean_batch": (session.requests_flushed / flushes) if flushes else 0.0,
            "device_ms": session.total_device_ms,
            # overlapped host pipeline: rounds adopted as prepared vs
            # speculations abandoned when admission diverged
            "speculation_hits": session.speculation_hits,
            "speculation_aborts": session.speculation_aborts,
            "prepare_hidden_ms": session.prepare_hidden_ms,
        }
        metrics = session.generation_metrics
        if metrics is not None:
            out.update(metrics.summary())
        return out

    def __repr__(self) -> str:
        return (
            f"Endpoint({self.name!r}, policy={self.session.policy!r}, "
            f"pending={self.pending_requests})"
        )


class Server:
    """Routes requests to named endpoints sharing one device (group) and
    clock.

    ``devices`` turns on multi-device serving: an integer count, a list of
    :class:`GPUSpec`/preset names (heterogeneous groups), or a ready
    :class:`~repro.devices.group.DeviceGroup`; endpoints then shard their
    flush batches across the group under ``placement`` (a
    :mod:`repro.devices.placement` registry name or instance, default
    ``round_robin``), and cross-device operand traffic is priced by
    ``interconnect`` (``"pcie"``/``"nvlink"`` or an
    :class:`~repro.devices.interconnect.Interconnect`).

    ``max_pending`` bounds the admission queue of the server's
    :class:`~repro.serve.loop.ServeLoop` and ``backpressure`` picks the
    overflow policy (``"block"``/``"reject"``/``"shed-oldest"``); both only
    bite once :meth:`run` starts the loop (or, for the rejecting policies,
    on inline intake too).  ``prepare`` turns on the loop's overlapped host
    pipeline (speculative round preparation; see
    :class:`~repro.serve.loop.ServeLoop`).
    """

    def __init__(
        self,
        device: Optional[DeviceSimulator] = None,
        clock: Optional[Clock] = None,
        gpu_spec: Optional[GPUSpec] = None,
        *,
        devices: Any = None,
        placement: Any = None,
        interconnect: Union[str, Any, None] = None,
        max_pending: Optional[int] = None,
        backpressure: str = "block",
        prepare: bool = False,
    ) -> None:
        if devices is not None:
            from ..devices.group import DeviceGroup

            if device is not None:
                raise ValueError(
                    "pass either an explicit device or devices=, not both "
                    "(wrap your devices in a DeviceGroup and pass it as "
                    "device= instead)"
                )
            device = DeviceGroup.coerce(devices, spec=gpu_spec, interconnect=interconnect)
        self.device = device or DeviceSimulator(spec=gpu_spec)
        if placement is not None and not isinstance(placement, str):
            # placement instances are stateful (e.g. data_parallel's learned
            # per-block work keyed by block id) and belong to exactly one
            # engine; a server-wide default is instantiated per endpoint, so
            # it must be a registry name
            raise TypeError(
                "the server-wide placement default must be a registry name; "
                "pass policy instances per endpoint via "
                "add_endpoint(placement=...)"
            )
        #: placement-policy default for endpoints (None: round_robin when
        #: the server owns a multi-device group)
        self.placement = placement
        self.clock = clock or WallClock()
        self._endpoints: Dict[str, Endpoint] = {}
        #: the event loop owning this server's intake and flush choreography
        self.loop = ServeLoop(
            self,
            max_pending=max_pending,
            backpressure=backpressure,
            prepare=prepare,
        )

    @property
    def num_devices(self) -> int:
        return getattr(self.device, "num_devices", 1)

    # -- endpoint management ---------------------------------------------------
    def add_endpoint(
        self,
        name: str,
        model: Any,
        policy: Any = "size",
        *,
        scheduler: Optional[str] = None,
        placement: Any = None,
        **policy_args: Any,
    ) -> Endpoint:
        """Register ``model`` under ``name``.

        ``model`` is any executable model exposing ``make_engine(device,
        policy)`` (:class:`~repro.compiler.driver.CompiledModel` or
        :class:`~repro.vm.interpreter.VMModel`); ``policy`` selects the
        endpoint's flush policy by name (with ``policy_args``) or instance,
        and ``scheduler`` optionally overrides the model's scheduler-policy
        name.  The endpoint's session runs on the server's shared device
        (group) and clock; ``placement`` overrides the server-wide
        placement policy for this endpoint.
        """
        if name == "devices":
            raise ValueError(
                "endpoint name 'devices' is reserved (Server.summary() "
                "reports the device-group breakdown under that key)"
            )
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already exists")
        if self.loop.running:
            raise RuntimeError(
                "cannot add endpoints while the serve loop is running; "
                "register endpoints before Server.run() (or shutdown() first)"
            )
        engine = model.make_engine(
            device=self.device,
            scheduler=scheduler,
            placement=placement if placement is not None else self.placement,
        )
        session = InferenceSession(
            engine, policy=policy, policy_args=policy_args or None, clock=self.clock
        )
        endpoint = Endpoint(name, model, session, loop=self.loop)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(
                f"unknown endpoint {name!r}; registered endpoints: "
                f"{', '.join(sorted(self._endpoints)) or '(none)'}"
            ) from None

    @property
    def endpoints(self) -> Tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    # -- request path (facade over the serve loop) ------------------------------
    def submit(
        self,
        name: str,
        instance: Any,
        at: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
    ) -> RequestHandle:
        """Route one request to endpoint ``name``.

        Thread-safe once :meth:`run` has started the serve loop (the
        request enters the loop's bounded admission queue and the returned
        handle resolves when the loop flushes its round — ``await handle``
        or ``handle.result(timeout=...)``); before that it is the
        historical synchronous intake path.  ``deadline`` (absolute clock
        timestamp) expires the request if it is still queued when the
        deadline passes — see :meth:`ServeLoop.submit`.
        """
        return self.loop.submit(name, instance, at=at, deadline=deadline)

    def poll(self) -> int:
        """Fire every endpoint flush whose deadline has passed; returns the
        number of rounds flushed.  With the loop running, deadline polling
        is the loop's job — this just nudges it awake."""
        return self.loop.poll()

    def flush_all(self) -> Dict[str, Optional[List[Any]]]:
        """Flush every endpoint's backlog (drain); returns outputs by
        endpoint name (None for endpoints that were empty).  With the loop
        running this delegates to :meth:`drain` and returns ``{}``."""
        return self.loop.flush_all()

    def next_deadline(self) -> Optional[float]:
        """Earliest pending flush deadline across all endpoints."""
        return self.loop.next_deadline()

    # -- event-loop lifecycle ---------------------------------------------------
    def run(self) -> ServeLoop:
        """Start the serving event loop (wall-clock traffic).

        From here on :meth:`submit` is thread-safe and the loop drives all
        deadline polling and flushing itself.  Returns the loop, which is a
        context manager::

            with server.run():
                handle = server.submit("trees", request)
                output = handle.result(timeout=5.0)

        Simulated clocks replay deterministically through
        ``server.loop.run_trace`` /
        :func:`repro.serve.traffic.replay_server_continuous` instead.
        """
        return self.loop.start()

    def drain(self) -> None:
        """Flush every backlog and wait for all admitted requests to
        complete (works with or without a running loop)."""
        self.loop.drain()

    def shutdown(self) -> None:
        """Drain, then stop the serving loop (no-op if it never ran)."""
        self.loop.shutdown()

    # -- introspection ---------------------------------------------------------
    def device_summary(self) -> Dict[str, Any]:
        """Utilization and balance across the server's device (group):
        per-device busy time, each member's share of the busiest member, and
        the least/busiest ratio (1.0 = perfectly balanced).  Counters are
        per-flush (sessions reset them at each round), so this reflects the
        most recent round."""
        return self.device.device_summary()

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-endpoint aggregate serving statistics, plus a ``devices``
        entry with the group's utilization/balance breakdown."""
        out: Dict[str, Dict[str, Any]] = {
            name: ep.summary() for name, ep in sorted(self._endpoints.items())
        }
        out["devices"] = self.device_summary()
        return out

    def __repr__(self) -> str:
        return f"Server(endpoints={list(self.endpoints)!r}, devices={self.num_devices})"
