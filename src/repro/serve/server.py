"""Multi-model serving: named endpoints over one shared device.

A production deployment rarely serves a single model.  :class:`Server`
multiplexes several compiled models behind named :class:`Endpoint`\\ s that
share one :class:`~repro.runtime.device.DeviceSimulator` (one GPU) and one
:class:`~repro.serve.clock.Clock`: each endpoint owns a policy-driven
:class:`~repro.serve.session.InferenceSession` over its model, requests are
routed by endpoint name, and deadline-driven flushing is coordinated
server-wide through :meth:`Server.poll` / :meth:`Server.next_deadline`.

Per-flush device counters stay isolated even on the shared device: every
session resets the device's counters at the flush that executes its round
(the residency cache — which parameters are already on the GPU — is shared
and persists, as it would on real hardware).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..runtime.device import DeviceSimulator, GPUSpec
from .clock import Clock, WallClock
from .request import RequestHandle
from .session import InferenceSession


class Endpoint:
    """One named model behind a server: a model plus its serving session."""

    def __init__(self, name: str, model: Any, session: InferenceSession) -> None:
        self.name = name
        self.model = model
        self.session = session

    # -- request path ----------------------------------------------------------
    def submit(self, instance: Any, at: Optional[float] = None) -> RequestHandle:
        return self.session.submit(instance, at=at)

    def poll(self) -> Optional[List[Any]]:
        return self.session.poll()

    def flush(self) -> Optional[List[Any]]:
        return self.session.flush()

    # -- introspection ---------------------------------------------------------
    @property
    def pending_requests(self) -> int:
        return self.session.pending_requests

    def next_deadline(self) -> Optional[float]:
        return self.session.next_deadline()

    def summary(self) -> Dict[str, float]:
        """Aggregate serving statistics across the endpoint's lifetime
        (running totals — O(1) regardless of how long the endpoint has
        served)."""
        session = self.session
        flushes = session.num_flushes
        return {
            "requests": session.num_requests,
            "flushes": flushes,
            "pending": self.pending_requests,
            "kernel_launches": session.total_kernel_calls,
            "mean_batch": (session.requests_flushed / flushes) if flushes else 0.0,
            "device_ms": session.total_device_ms,
        }

    def __repr__(self) -> str:
        return (
            f"Endpoint({self.name!r}, policy={self.session.policy!r}, "
            f"pending={self.pending_requests})"
        )


class Server:
    """Routes requests to named endpoints sharing one device and clock."""

    def __init__(
        self,
        device: Optional[DeviceSimulator] = None,
        clock: Optional[Clock] = None,
        gpu_spec: Optional[GPUSpec] = None,
    ) -> None:
        self.device = device or DeviceSimulator(spec=gpu_spec)
        self.clock = clock or WallClock()
        self._endpoints: Dict[str, Endpoint] = {}

    # -- endpoint management ---------------------------------------------------
    def add_endpoint(
        self,
        name: str,
        model: Any,
        policy: Any = "size",
        *,
        scheduler: Optional[str] = None,
        **policy_args: Any,
    ) -> Endpoint:
        """Register ``model`` under ``name``.

        ``model`` is any executable model exposing ``make_engine(device,
        policy)`` (:class:`~repro.compiler.driver.CompiledModel` or
        :class:`~repro.vm.interpreter.VMModel`); ``policy`` selects the
        endpoint's flush policy by name (with ``policy_args``) or instance,
        and ``scheduler`` optionally overrides the model's scheduler-policy
        name.  The endpoint's session runs on the server's shared device and
        clock.
        """
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already exists")
        engine = model.make_engine(device=self.device, scheduler=scheduler)
        session = InferenceSession(
            engine, policy=policy, policy_args=policy_args or None, clock=self.clock
        )
        endpoint = Endpoint(name, model, session)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(
                f"unknown endpoint {name!r}; registered endpoints: "
                f"{', '.join(sorted(self._endpoints)) or '(none)'}"
            ) from None

    @property
    def endpoints(self) -> Tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    # -- request path ----------------------------------------------------------
    def submit(
        self, name: str, instance: Any, at: Optional[float] = None
    ) -> RequestHandle:
        """Route one request to endpoint ``name``."""
        return self.endpoint(name).submit(instance, at=at)

    def poll(self) -> int:
        """Fire every endpoint flush whose deadline has passed; returns the
        number of rounds flushed."""
        flushed = 0
        for endpoint in self._endpoints.values():
            if endpoint.poll() is not None:
                flushed += 1
        return flushed

    def flush_all(self) -> Dict[str, Optional[List[Any]]]:
        """Flush every endpoint's backlog (drain); returns outputs by
        endpoint name (None for endpoints that were empty)."""
        return {name: ep.flush() for name, ep in self._endpoints.items()}

    def next_deadline(self) -> Optional[float]:
        """Earliest pending flush deadline across all endpoints."""
        deadlines = [
            d
            for d in (ep.next_deadline() for ep in self._endpoints.values())
            if d is not None
        ]
        return min(deadlines) if deadlines else None

    # -- introspection ---------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-endpoint aggregate serving statistics."""
        return {name: ep.summary() for name, ep in sorted(self._endpoints.items())}

    def __repr__(self) -> str:
        return f"Server(endpoints={list(self.endpoints)!r})"
