"""The event-loop serving core: single-owner intake, continuous batching.

ACROBAT's cross-request batching only pays when requests actually co-arrive
in a round, and under live traffic that is determined by the *intake loop*,
not just the flush policy: a caller-driven ``submit``/``poll``/``flush``
choreography is single-threaded, so while one round executes nothing can
accept new requests or launch the next partial round.  :class:`ServeLoop`
closes that gap.  It is the **single owner** of every endpoint session of a
:class:`~repro.serve.server.Server`:

* all session mutations (submit dispatch, deadline polling, flushing)
  happen on the loop, so sessions themselves stay lock-free;
* producers talk to the loop through a **bounded admission queue**
  (``max_pending`` + a ``backpressure`` policy of ``"block"`` /
  ``"reject"`` / ``"shed-oldest"``), making ``Server.submit`` safe to call
  from any number of threads;
* the loop drives deadline polling itself — no hand-rolled
  ``next_deadline``/``poll`` choreography in user code;
* **continuous batching**: when the flush policy fires, the loop launches
  the current partial round and keeps accepting — later arrivals accumulate
  into the next round while the device executes, and in-flight rounds are
  visible to the ``adaptive`` policy's waiting-cost model
  (:attr:`~repro.serve.session.InferenceSession.in_flight_rounds`).

Two operating modes, one per :class:`~repro.serve.clock.Clock` flavour:

* **wall-clock** (:meth:`start`/:meth:`drain`/:meth:`shutdown`): a real
  background thread waits on the admission queue with a timeout set to the
  earliest pending flush deadline.  Arrivals admitted while a round
  executes are timestamped at admission, so when the loop picks them up
  they are *backdated* — exactly the signal the adaptive policy's backlog
  detection batches for free.
* **simulated** (:meth:`run_trace`): a deterministic event loop over a
  :class:`~repro.serve.clock.SimulatedClock`.  Execution is modelled
  asynchronously through a :class:`DeviceTimeline`: a flushed round only
  charges its *host* share to the clock (intake is serial with host work)
  and its *device* share queues on the timeline — rounds pipeline
  back-to-back on the device while intake streams on.  With
  ``deterministic=True`` the measured wall-clock host share is dropped, so
  replaying the same trace is bit-for-bit identical across runs and hosts.
"""

from __future__ import annotations

import contextlib
import heapq
import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from .clock import Clock, SimulatedClock
from .policy import select_shed_victim
from .request import RequestCancelled, RequestExpired, RequestHandle

#: admission-queue overflow policies: ``shed-oldest`` is the classic
#: age-based drop; ``shed-slack`` is SLO-aware — among the lowest priority
#: class present it sheds the request with the *most* deadline slack (the
#: one that can best afford a retry), which may be the incoming request
#: itself (see :func:`repro.serve.policy.select_shed_victim`)
BACKPRESSURE_POLICIES = ("block", "reject", "shed-oldest", "shed-slack")


class BackpressureFull(RuntimeError):
    """Raised by ``submit`` under ``backpressure="reject"`` when the
    admission queue is at ``max_pending``."""


class RequestShed(RuntimeError):
    """Resolves a queued request's handle under ``backpressure="shed-oldest"``
    (a newer arrival pushed it out of the full admission queue) or
    ``backpressure="shed-slack"`` (it had the lowest priority and the most
    deadline slack when the queue overflowed)."""


class LoopStopped(RuntimeError):
    """Raised when submitting to a loop that has shut down or died; carries
    the loop's original error as ``__cause__`` when it died.  A cleanly
    shut-down server can be revived with another :meth:`ServeLoop.start`
    (``Server.run()``)."""


class DeviceTimeline:
    """The device's busy horizon: models asynchronous kernel execution.

    A real accelerator executes rounds asynchronously — launching returns
    immediately and rounds queue on the device.  The timeline captures just
    enough of that for continuous batching on the simulated clock: each
    :meth:`launch` begins at ``max(now, busy_until)`` (the device finishes
    earlier rounds first), completes ``duration`` later, and pushes the
    horizon out.  Sessions consult :meth:`in_flight` for the adaptive
    policy; the loop consults :meth:`next_completion` to wake exactly when
    the device frees.

    With ``num_devices > 1`` the timeline keeps one busy horizon per group
    member (a *lane*), and :meth:`launch_round` occupies only the lanes a
    round actually uses: different members' rounds overlap, and a
    depth-staged round's lanes free one by one as its stages drain — stage
    ``k`` of the next round starts on its device while stage ``k+1`` of
    this one is still executing downstream.  :meth:`launch` (the aggregate
    path) occupies every lane, so single-device traces behave exactly as
    they always have.
    """

    def __init__(self, start: float = 0.0, num_devices: int = 1) -> None:
        #: per-device busy horizons (one lane per group member)
        self._lanes: List[float] = [float(start)] * max(1, int(num_devices))
        #: rounds launched over the timeline's lifetime
        self.rounds_launched = 0
        self._completions: List[float] = []  # min-heap of undrained completions

    @property
    def num_devices(self) -> int:
        return len(self._lanes)

    @property
    def busy_until(self) -> float:
        """Timestamp at which every lane finishes everything launched so
        far (the whole device group goes idle)."""
        lanes = self._lanes
        return lanes[0] if len(lanes) == 1 else max(lanes)

    def launch(self, now: float, duration_s: float) -> float:
        """Queue one round of ``duration_s`` device seconds across the whole
        group; returns its completion timestamp."""
        begin = max(float(now), self.busy_until)
        completion = begin + max(0.0, float(duration_s))
        for i in range(len(self._lanes)):
            self._lanes[i] = completion
        self.rounds_launched += 1
        heapq.heappush(self._completions, completion)
        return completion

    def launch_round(
        self,
        now: float,
        shares: List[Tuple[int, float]],
        staged: bool = False,
    ) -> float:
        """Queue one round given its per-device shares — ``(device_index,
        duration_s)`` pairs in execution order — occupying only the lanes
        the round uses.  Returns the round's completion timestamp.

        ``staged=False`` (sharding placements): the members execute their
        shares concurrently, each behind its own lane's backlog; the round
        completes when the slowest member finishes.  ``staged=True``
        (pipeline placement): the shares execute *in sequence* — each stage
        starts when its input is ready (the previous stage done) and its
        device's lane is free — so consecutive rounds overlap stage-wise
        and the steady-state round rate is set by the busiest stage.
        """
        if not shares:
            return self.launch(now, 0.0)
        now = float(now)
        lanes = self._lanes
        n = len(lanes)
        if staged:
            t = now
            for device, duration_s in shares:
                lane = device % n
                t = max(t, lanes[lane]) + max(0.0, float(duration_s))
                lanes[lane] = t
            completion = t
        else:
            completion = now
            for device, duration_s in shares:
                lane = device % n
                end = max(now, lanes[lane]) + max(0.0, float(duration_s))
                lanes[lane] = end
                if end > completion:
                    completion = end
        self.rounds_launched += 1
        heapq.heappush(self._completions, completion)
        return completion

    def in_flight(self, now: float) -> int:
        """Rounds launched but not yet complete at ``now``."""
        return sum(1 for c in self._completions if c > now)

    def next_completion(self) -> Optional[float]:
        """Earliest completion not yet drained by the loop (None if all
        drained)."""
        return self._completions[0] if self._completions else None

    def pop_completions(self, now: float) -> int:
        """Drain completion events at or before ``now``; returns how many."""
        popped = 0
        while self._completions and self._completions[0] <= now:
            heapq.heappop(self._completions)
            popped += 1
        return popped

    def __repr__(self) -> str:
        return (
            f"DeviceTimeline(busy_until={self.busy_until:.6f}, "
            f"launched={self.rounds_launched})"
        )


class HostLane:
    """One serving loop's host busy horizon in a multi-loop simulated trace.

    The single-loop :meth:`ServeLoop.run_trace` serializes a flush's host
    share against intake by charging it to the shared clock.  With N loops
    that would serialize host work *across* loops — exactly the scaling
    ceiling the sharded front door removes — so the multi-loop driver
    (:func:`repro.serve.topology.run_topology_trace`) gives each loop a
    lane instead: a flush advances ``busy_until`` and the driver delays the
    owning loop's next event (and the dispatch of its queued arrivals)
    until the lane frees.  The device side is unchanged — rounds still
    launch on the :class:`DeviceTimeline`.
    """

    __slots__ = ("busy_until",)

    def __init__(self, start: float = 0.0) -> None:
        self.busy_until = float(start)

    def free_at(self, now: float) -> float:
        """Earliest instant at or after ``now`` the lane is free."""
        return max(float(now), self.busy_until)

    def __repr__(self) -> str:
        return f"HostLane(busy_until={self.busy_until:.6f})"


@contextlib.contextmanager
def replay_state(
    sessions: Iterable[Any],
    *,
    deterministic: bool,
    host_model: Optional[Tuple[float, float]],
    timeline: Optional[DeviceTimeline] = None,
) -> Iterator[None]:
    """Apply a replay's session configuration — device timeline (None for
    caller-driven replays), host charging mode and deterministic host-cost
    model — and restore each session's prior values on exit, so replays
    never clobber a caller's own settings."""
    sessions = list(sessions)
    prior = [(s.timeline, s.charge_host, s.host_cost_model) for s in sessions]
    for session in sessions:
        session.timeline = timeline
        session.charge_host = not deterministic
        session.host_cost_model = host_model
    try:
        yield
    finally:
        for session, state in zip(sessions, prior):
            session.timeline, session.charge_host, session.host_cost_model = state


class _Admission:
    """One queued request: where it goes, what it is, when it arrived, and
    by when it must be dispatched (None = no deadline)."""

    __slots__ = ("name", "instance", "at", "handle", "deadline")

    def __init__(
        self,
        name: str,
        instance: Any,
        at: float,
        handle: RequestHandle,
        deadline: Optional[float] = None,
    ):
        self.name = name
        self.instance = instance
        self.at = at
        self.handle = handle
        self.deadline = deadline


class ServeLoop:
    """Single-owner event loop over a server's endpoint sessions.

    Constructed from a :class:`~repro.serve.server.Server` (the server does
    this itself — ``server.loop``) or from a plain ``sessions`` mapping for
    single-session use (:func:`repro.serve.traffic.replay_continuous`).

    Parameters
    ----------
    server:
        The server whose endpoints the loop owns (its clock is used).
    sessions:
        Alternative to ``server``: a name → session mapping (all sessions
        must share one clock, passed as ``clock``).
    max_pending:
        Bound on the admission queue; None (default) means unbounded.
    backpressure:
        What a full queue does to ``submit``: ``"block"`` waits for space,
        ``"reject"`` raises :class:`BackpressureFull`, ``"shed-oldest"``
        drops the oldest queued request (failing its handle with
        :class:`RequestShed`) to admit the new one.
    prepare:
        Enable the overlapped host pipeline: build the next round's
        schedule/placement/memory plan ahead of its flush whenever the
        flush policy predicts the round's composition
        (:meth:`~repro.serve.policy.FlushPolicy.predict_next_flush`).  In
        wall-clock mode a :class:`~repro.serve.prepare.RoundPreparer`
        worker thread runs while the loop sleeps; in :meth:`run_trace` the
        preparation happens at deterministic event-loop points, so replays
        stay bit-for-bit identical.  Mis-speculation only wastes host work
        — a prepared round whose admission diverged is abandoned and the
        flush falls back to the normal path.
    """

    def __init__(
        self,
        server: Any = None,
        *,
        sessions: Optional[Dict[str, Any]] = None,
        clock: Optional[Clock] = None,
        max_pending: Optional[int] = None,
        backpressure: str = "block",
        prepare: bool = False,
        name: str = "loop0",
    ) -> None:
        if (server is None) == (sessions is None):
            raise ValueError("pass exactly one of server= or sessions=")
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {backpressure!r}; "
                f"choose one of {', '.join(BACKPRESSURE_POLICIES)}"
            )
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be a positive integer (or None)")
        self._server = server
        self._static_sessions = dict(sessions) if sessions is not None else None
        if server is not None:
            self.clock: Clock = server.clock
        else:
            if clock is None:
                raise ValueError("sessions= needs an explicit clock=")
            self.clock = clock
        self.max_pending = max_pending
        self.backpressure = backpressure
        #: overlapped host pipeline on by default for this loop's modes
        #: (run_trace can override per replay via its ``prepare=`` argument)
        self.prepare = bool(prepare)
        #: the wall-clock preparer worker (exists only while running with
        #: ``prepare`` on)
        self._preparer = None
        # simulated-mode flag: run_trace sets it for the replay's duration
        self._prepare_active = False

        self._cond = threading.Condition()
        # serializes mode transitions (start/shutdown) with inline
        # dispatches, so a submit racing Server.run() can never mutate a
        # session concurrently with the freshly started loop thread
        self._mode_lock = threading.RLock()
        self._queue: Deque[_Admission] = deque()
        self._thread: Optional[threading.Thread] = None
        self._stop = False
        self._stopped = False  # a loop ran and was shut down (until re-start)
        self._drain_requested = False
        self._error: Optional[BaseException] = None
        # admission generation counters: drain() waits only for requests
        # admitted before it was called, so sustained producer traffic
        # cannot starve it.  _flushed_seq records how many admissions a
        # drain-flush pass has covered (shed/failed ones count as both
        # dispatched and flushed — they are resolved).
        self._admit_seq = 0
        self._dispatched_seq = 0
        self._flushed_seq = 0
        self._pass_count = 0  # completed drain-flush passes
        #: requests admitted over the loop's lifetime (queue + inline)
        self.num_admitted = 0
        #: requests shed by the ``shed-oldest`` backpressure policy
        self.num_shed = 0
        #: requests rejected by the ``reject`` backpressure policy
        self.num_rejected = 0
        #: queued requests withdrawn via ``RequestHandle.cancel()``
        self.num_cancelled = 0
        #: requests whose deadline passed before dispatch
        self.num_expired = 0
        #: display name in multi-loop summaries ("loop0", "loop1", ...)
        self.name = name
        #: sibling loops of a multi-loop topology this loop may steal
        #: queued admissions from when it goes idle (set by the topology)
        self.peers: List["ServeLoop"] = []
        #: minimum queued backlog a victim must hold before an idle loop
        #: steals its newest half; None disables work-stealing
        self.steal_min: Optional[int] = 2
        #: how long an idle wall-clock loop sleeps between steal scans
        self.steal_interval_s = 0.005
        #: requests this loop stole from siblings / lost to siblings
        self.num_stolen_in = 0
        self.num_stolen_out = 0

    # -- session access --------------------------------------------------------
    def sessions(self) -> Dict[str, Any]:
        """Name → session mapping the loop owns (live view for servers, so
        endpoints added before :meth:`start` are picked up)."""
        if self._static_sessions is not None:
            return self._static_sessions
        return {name: ep.session for name, ep in self._server._endpoints.items()}

    def _session(self, name: str):
        if self._server is not None:
            return self._server.endpoint(name).session
        try:
            return self._static_sessions[name]
        except KeyError:
            raise KeyError(f"unknown session {name!r}") from None

    # -- lifecycle -------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the wall-clock loop thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ServeLoop":
        """Start the wall-clock loop thread (simulated clocks replay
        deterministically through :meth:`run_trace` instead)."""
        if isinstance(self.clock, SimulatedClock):
            raise TypeError(
                "ServeLoop.start() drives real time; a SimulatedClock replays "
                "deterministically through run_trace()/replay_continuous()"
            )
        with self._mode_lock:
            if self.running:
                raise RuntimeError("serve loop already running")
            self._stop = False
            self._stopped = False
            self._error = None
            if self.prepare:
                from .prepare import RoundPreparer

                self._preparer = RoundPreparer(self)
            self._thread = threading.Thread(
                target=self._run_wall, name="repro-serve-loop", daemon=True
            )
            self._thread.start()
        return self

    def drain(self) -> None:
        """Flush every backlog and wait until all requests admitted so far
        have completed.  Without a running loop this degrades to flushing
        the sessions inline (one session's failing flush does not stop the
        others from draining — the first error re-raises at the end, after
        failing its own round's handles)."""
        with self._mode_lock:
            if not self.running:
                first: Optional[BaseException] = None
                for session in self.sessions().values():
                    # capping policies flush at most round_cap requests per
                    # call: drain until empty (a failing flush aborts the
                    # whole backlog, so the loop terminates either way)
                    while session.pending_requests:
                        try:
                            session.flush()
                        except BaseException as exc:
                            # the flush failed its round's handles and reset
                            # the session; keep draining the other endpoints
                            if first is None:
                                first = exc
                self._raise_if_dead()
                if first is not None:
                    raise first
                return
        with self._cond:
            target = self._admit_seq
            entry_pass = self._pass_count
            while self._error is None and (
                self._flushed_seq < target or self._pass_count == entry_pass
            ):
                if not self.running:  # died without recording an error
                    break
                # re-assert every wake: a concurrent drainer's flush pass
                # may have absorbed our request flag before our admissions
                # were dispatched — only a pass covering `target` (and at
                # least one full pass after entry, for backlogs built
                # before the loop started) counts
                self._drain_requested = True
                self._cond.notify_all()
                self._cond.wait(timeout=0.05)
        self._raise_if_dead()

    def shutdown(self) -> None:
        """Graceful stop: drain, then stop and join the loop thread.  A
        no-op when the loop never started; after a shutdown, ``submit``
        raises :class:`LoopStopped` until the loop is started again."""
        if self.running:
            try:
                self.drain()
            finally:
                with self._cond:
                    self._stop = True
                    self._stopped = True
                    self._cond.notify_all()
                self._thread.join()
        self._fail_queued(LoopStopped("serve loop shut down"))
        self._raise_if_dead()

    def __enter__(self) -> "ServeLoop":
        if not self.running:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def _raise_if_dead(self) -> None:
        if self._error is not None:
            raise LoopStopped("serve loop died") from self._error

    def _fail_queued(self, exc: BaseException) -> None:
        with self._cond:
            stale, self._queue = list(self._queue), deque()
            # failed admissions are resolved: account them dispatched and
            # flushed so no drain() generation is left waiting on them
            self._dispatched_seq += len(stale)
            self._flushed_seq += len(stale)
            self._cond.notify_all()
        for adm in stale:
            adm.handle._fail(exc)

    # -- intake ----------------------------------------------------------------
    def submit(
        self,
        name: str,
        instance: Any,
        at: Optional[float] = None,
        *,
        deadline: Optional[float] = None,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> RequestHandle:
        """Admit one request for session ``name``; returns its handle
        immediately.

        With the loop running this is thread-safe: the request enters the
        bounded admission queue (timestamped under the queue lock, so
        per-session arrival order is monotonic) and the loop dispatches it.
        Before the loop has ever started it degrades to the historical
        synchronous path — the session's ``submit`` runs inline on the
        caller (inline submits serialize on the mode lock, so they cannot
        race a concurrent ``start()`` or each other).  After a shutdown it
        raises :class:`LoopStopped` until the loop is started again.

        ``deadline`` is an absolute clock timestamp: a request still queued
        when its deadline passes is dropped at dispatch time, its handle
        failing with :class:`~repro.serve.request.RequestExpired` — it never
        enters a round, so round-mates are unaffected.

        ``tenant`` and ``priority`` tag the request for SLO-aware admission
        (see :mod:`repro.serve.topology`): the ``shed-slack`` backpressure
        policy sheds lowest-priority/most-slack first, and priority-classed
        requests with a deadline additionally clamp their round's flush to
        that deadline.  A request without a priority class keeps the exact
        pre-SLO semantics.
        """
        session = self._session(name)  # fail fast on unknown names
        with self._mode_lock:
            if not self.running:
                self._raise_if_dead()
                if self._stopped:
                    raise LoopStopped(
                        "serve loop shut down — call Server.run() again to "
                        "resume serving"
                    )
                if deadline is not None and self.clock.now() > deadline:
                    # inline intake dispatches immediately, so the only way
                    # to expire is to arrive already past the deadline
                    handle = RequestHandle(-1, submitted_at=self.clock.now())
                    self.num_expired += 1
                    handle._fail(
                        RequestExpired(
                            f"deadline {deadline!r} already passed at submit"
                        )
                    )
                    return handle
                self._check_inline_capacity()
                handle = session.submit(
                    instance, at=at, tenant=tenant, priority=priority,
                    deadline=deadline,
                )
                self.num_admitted += 1  # only successful admissions count
                return handle
        with self._cond:
            handle: Optional[RequestHandle] = None
            if self.max_pending is not None:
                while len(self._queue) >= self.max_pending:
                    if self.backpressure == "reject":
                        self.num_rejected += 1
                        raise BackpressureFull(
                            f"admission queue full ({self.max_pending} pending)"
                        )
                    if self.backpressure == "shed-oldest":
                        shed = self._queue.popleft()
                        self.num_shed += 1
                        # a shed admission is resolved (exceptionally):
                        # count it dispatched+flushed so drain() never
                        # waits on it
                        self._dispatched_seq += 1
                        self._flushed_seq += 1
                        shed.handle._fail(
                            RequestShed(
                                "request shed by backpressure: a newer arrival "
                                f"displaced it from the full admission queue "
                                f"(max_pending={self.max_pending})"
                            )
                        )
                        break
                    if self.backpressure == "shed-slack":
                        # SLO-aware shed: the victim — possibly the incoming
                        # request itself — is the lowest-priority queued
                        # request with the most deadline slack.  Never
                        # waits, so stamping here keeps queue order ==
                        # timestamp order.
                        stamp = self.clock.now() if at is None else at
                        handle = RequestHandle(
                            -1, submitted_at=stamp, tenant=tenant,
                            priority=priority, deadline=deadline,
                        )
                        handle._managed = True
                        handle._origin = self
                        candidates = [adm.handle for adm in self._queue]
                        candidates.append(handle)
                        victim = select_shed_victim(candidates, self.clock.now())
                        self.num_shed += 1
                        if victim == len(candidates) - 1:
                            handle._fail(
                                RequestShed(
                                    "request shed by SLO-aware backpressure: it "
                                    "had the lowest priority and the most "
                                    "deadline slack of the full admission queue "
                                    f"(max_pending={self.max_pending})"
                                )
                            )
                            return handle
                        adm = self._queue[victim]
                        del self._queue[victim]
                        self._dispatched_seq += 1
                        self._flushed_seq += 1
                        adm.handle._fail(
                            RequestShed(
                                "request shed by SLO-aware backpressure: it had "
                                "the lowest priority and the most deadline "
                                "slack when the admission queue overflowed "
                                f"(max_pending={self.max_pending})"
                            )
                        )
                        break
                    # block: wait for the loop to make space
                    if self._stop or self._error is not None or not self.running:
                        break
                    self._cond.wait(timeout=0.05)
            if self._stop or self._error is not None or not self.running:
                self._raise_if_dead()
                raise LoopStopped("serve loop is shutting down")
            if handle is None:
                # stamp under the lock: queue order == timestamp order, so
                # the monotonic-arrival invariant holds per session no
                # matter how many producer threads race
                stamp = self.clock.now() if at is None else at
                handle = RequestHandle(
                    -1, submitted_at=stamp, tenant=tenant, priority=priority,
                    deadline=deadline,
                )
                handle._managed = True
                handle._origin = self
            self._queue.append(
                _Admission(name, instance, handle.submitted_at, handle, deadline)
            )
            self.num_admitted += 1
            self._admit_seq += 1
            self._cond.notify_all()
        return handle

    def _cancel_handle(self, handle: RequestHandle) -> bool:
        """Withdraw a still-queued admission (``RequestHandle.cancel()``
        delegation target).  Thread-safe; returns False once the loop has
        picked the request up — by then the session owns it (dispatch
        re-points ``handle._origin`` at the session, so a cancel that loses
        the race simply retargets there on the caller's next attempt)."""
        with self._cond:
            found = None
            for adm in self._queue:
                if adm.handle is handle:
                    found = adm
                    break
            if found is None:
                return False
            self._queue.remove(found)
            # a cancelled admission is resolved: count it dispatched and
            # flushed so drain() never waits on it (same as shed)
            self._dispatched_seq += 1
            self._flushed_seq += 1
            self.num_cancelled += 1
            self._cond.notify_all()
        handle._fail(
            RequestCancelled("request cancelled while queued for admission")
        )
        return True

    def _check_inline_capacity(self) -> None:
        if self.max_pending is None:
            return
        if self.backpressure == "block":
            # blocking needs a loop thread to drain the queue; inline (the
            # historical caller-driven path) stays unbounded, exactly as
            # the Server docstring promises — the bound bites after run()
            return
        backlog = sum(s.pending_requests for s in self.sessions().values())
        if backlog < self.max_pending:
            return
        # inline intake builds DFG nodes at submit, so an admitted request
        # cannot be shed afterwards: every non-blocking overflow policy
        # rejects here
        self.num_rejected += 1
        raise BackpressureFull(
            f"{backlog} requests pending >= max_pending={self.max_pending}"
        )

    # -- caller-driven facade --------------------------------------------------
    def poll(self) -> int:
        """Fire every session flush whose deadline has passed; returns the
        number of rounds flushed.  With the loop running, deadlines fire on
        the loop thread — polling just nudges it awake."""
        with self._mode_lock:
            if not self.running:
                flushed = 0
                for session in self.sessions().values():
                    if session.poll() is not None:
                        flushed += 1
                return flushed
        with self._cond:
            self._cond.notify_all()
        return 0

    def flush_all(self) -> Dict[str, Optional[List[Any]]]:
        """Flush every session's backlog; returns outputs by name (None for
        empty sessions).  With the loop running this delegates to
        :meth:`drain` (the loop owns the sessions) and returns ``{}``."""
        with self._mode_lock:
            if not self.running:
                return {name: s.flush() for name, s in self.sessions().items()}
        self.drain()
        return {}

    def next_deadline(self) -> Optional[float]:
        """Earliest pending flush deadline across the loop's sessions."""
        deadlines = [
            d
            for d in (s.next_deadline() for s in self.sessions().values())
            if d is not None
        ]
        return min(deadlines) if deadlines else None

    # -- wall-clock mode -------------------------------------------------------
    def _run_wall(self) -> None:
        preparer = self._preparer
        try:
            while True:
                if preparer is not None:
                    # a preparer-worker crash surfaces here, on the loop
                    # thread, and takes the ordinary loop-death path below
                    preparer.reraise()
                with self._cond:
                    deadline = self.next_deadline()
                    timeout = (
                        None
                        if deadline is None
                        else max(0.0, deadline - self.clock.now())
                    )
                    if timeout is None and self.steal_min is not None and self.peers:
                        # an idle loop with siblings wakes periodically to
                        # scan for stealable backlog instead of sleeping
                        # until its own next submit
                        timeout = self.steal_interval_s
                    if not self._queue and not self._drain_requested and not self._stop:
                        if timeout is None or timeout > 0:
                            # the loop is about to sleep: exactly the window
                            # in which the preparer may own the sessions.
                            # wait() releases the condition lock while
                            # sleeping, and pause() blocks until the worker
                            # is idle again, so the loop never touches a
                            # session concurrently with a prepare pass.
                            if preparer is not None:
                                preparer.allow()
                            self._cond.wait(timeout)
                            if preparer is not None:
                                preparer.pause()
                    admissions = list(self._queue)
                    self._queue.clear()
                    drain_requested = self._drain_requested
                    stopping = self._stop
                    self._cond.notify_all()  # wake producers blocked on space

                self._dispatch_wall(admissions)
                for session in self.sessions().values():
                    try:
                        session.poll()
                    except BaseException:
                        # the flush failed its round's handles and reset the
                        # session (InferenceSession.flush is exception-safe)
                        pass
                if (
                    not admissions
                    and not stopping
                    and self.steal_min is not None
                    and self.peers
                ):
                    self._try_steal_wall()
                if drain_requested or stopping:
                    # on the stopping iteration this also covers requests
                    # admitted in the shutdown window (after drain()
                    # completed but before _stop was set): they were just
                    # dispatched above and must not be left pending forever
                    for session in self.sessions().values():
                        # capping policies bound each flush at round_cap
                        # requests: draining means flushing until empty (a
                        # failed flush aborts the whole backlog, so either
                        # way the loop terminates)
                        while session.pending_requests:
                            try:
                                session.flush()
                            except BaseException:
                                pass  # round's handles already failed
                    with self._cond:
                        # this pass covered everything dispatched before it
                        self._flushed_seq = self._dispatched_seq
                        self._pass_count += 1
                        self._drain_requested = False
                        self._cond.notify_all()
                if stopping:
                    return
        except BaseException as exc:  # infrastructure failure: die loudly
            self._die(exc)
        finally:
            if preparer is not None:
                preparer.stop()
                self._preparer = None

    def _dispatch_wall(self, admissions: List[_Admission]) -> None:
        """Dispatch picked-up admissions into their sessions (wall mode)."""
        for adm in admissions:
            if adm.handle.done:
                continue  # resolved while queued (cancel/shed race)
            if adm.deadline is not None and self.clock.now() > adm.deadline:
                # expired while queued: dropped before it joins any
                # round, so round-mates never see it
                self.num_expired += 1
                adm.handle._fail(
                    RequestExpired(
                        f"deadline {adm.deadline!r} passed while the "
                        "request was queued for admission"
                    )
                )
                continue
            # at= is the admission timestamp: if the loop was busy
            # executing when the request arrived, the session sees
            # it backdated — the continuous-batching backlog signal
            try:
                self._session(adm.name).submit(
                    adm.instance, at=adm.at, handle=adm.handle
                )
            except BaseException as exc:
                # one malformed request must not take down a
                # multi-tenant loop: the session already aborted any
                # poisoned round (failing its handles with
                # RoundAborted), so fail this request's handle with
                # the original error and keep serving
                if not adm.handle.done:
                    adm.handle._fail(exc)
        if admissions:
            with self._cond:
                self._dispatched_seq += len(admissions)
                self._cond.notify_all()

    def _try_steal_wall(self) -> int:
        """Cross-loop work-stealing (wall mode): a fully idle loop takes the
        newest half of the most-backlogged sibling's admission queue and
        dispatches it locally.  Returns how many admissions were stolen.

        Stealing the *newest* admissions keeps the victim's oldest requests
        — the ones closest to dispatch and to any prepared round — on their
        home loop, and guarantees the thief's sessions (empty by the idle
        precondition) see monotonically increasing arrival stamps.
        """
        mine = self.sessions()
        if any(s.pending_requests for s in mine.values()) or self._queue:
            return 0  # only a fully idle loop steals
        floor = max(1, int(self.steal_min or 1))
        best: Optional["ServeLoop"] = None
        best_len = floor - 1
        for peer in self.peers:
            if peer is self:
                continue
            n = len(peer._queue)  # racy scan; confirmed under the lock below
            if n > best_len:
                best, best_len = peer, n
        if best is None:
            return 0
        stolen: List[_Admission] = []
        with best._cond:
            eligible = [
                adm
                for adm in best._queue
                if adm.name in mine and not adm.handle.done
            ]
            if len(eligible) < floor:
                return 0
            for adm in eligible[-(len(eligible) // 2) or -1:]:
                best._queue.remove(adm)
                adm.handle._origin = self
                stolen.append(adm)
            # the thief resolves these now: account them dispatched+flushed
            # on the victim so its drain() generations never wait on them
            best._dispatched_seq += len(stolen)
            best._flushed_seq += len(stolen)
            best.num_stolen_out += len(stolen)
            best._cond.notify_all()
        self.num_stolen_in += len(stolen)
        self._dispatch_wall(stolen)
        return len(stolen)

    def _die(self, exc: BaseException) -> LoopStopped:
        """The loop-death path, shared by both modes: abort every session's
        round (failing implicated handles), record the error, and fail all
        queued admissions with ``LoopStopped`` carrying ``__cause__``.
        Returns the ``LoopStopped`` so simulated-mode callers can raise it.
        """
        for session in self.sessions().values():
            # abort (not just fail): _abort_round resolves the pending
            # handles AND resets the session to a clean empty round, so
            # a revived loop cannot re-flush stale failed handles
            try:
                session._abort_round(exc)
            except BaseException:
                pass
        with self._cond:
            self._error = exc
            self._drain_requested = False
            self._cond.notify_all()
        died = LoopStopped("serve loop died")
        died.__cause__ = exc
        self._fail_queued(died)
        return died

    # -- simulated mode --------------------------------------------------------
    def run_trace(
        self,
        workload: Iterable[Tuple[float, str, Any]],
        *,
        deterministic: bool = True,
        host_model: Optional[Tuple[float, float]] = None,
        prepare: Optional[bool] = None,
    ) -> Dict[str, List[RequestHandle]]:
        """Deterministically replay a tagged open-loop trace with continuous
        batching on the simulated clock.

        ``workload`` yields ``(arrival_time, session_name, request)`` sorted
        by arrival time.  The loop advances the clock from event to event —
        arrivals, flush deadlines, device-free completions — exactly as the
        wall-clock thread would wake, and flushed rounds execute on a
        :class:`DeviceTimeline`, so intake streams on while the device
        works and rounds pipeline back-to-back.  With ``deterministic``
        (default) the measured host wall time is excluded from the
        simulated timeline: the same trace replays bit-for-bit.
        ``host_model`` optionally replaces it with a deterministic
        ``(per_round_ms, per_request_ms)`` linear model — the loop still
        pays a host cost per flush (serial with intake), just a modelled
        one.

        ``prepare`` overrides the loop's overlapped-host-pipeline knob for
        this replay (None keeps the constructor's setting).  With the
        pipeline on, the loop speculatively prepares rounds at
        deterministic points — after intake at a timestamp quiesces and
        after every fired event — so the same trace still replays
        bit-for-bit, speculation aborts and all.

        Returns the resolved handles per session name, in arrival order.
        """
        if self.running:
            raise RuntimeError("run_trace needs exclusive ownership; the loop thread is running")
        if not isinstance(self.clock, SimulatedClock):
            raise TypeError("run_trace needs a SimulatedClock")
        clock = self.clock
        sessions = self.sessions()
        items = sorted(workload, key=lambda item: item[0])
        # one lane per device of the widest session's group, so multi-device
        # rounds overlap lane-wise (single-device traces keep one lane and
        # replay exactly as before)
        num_lanes = 1
        for session in sessions.values():
            num_lanes = max(num_lanes, getattr(session.engine, "num_devices", 1))
        timeline = DeviceTimeline(start=clock.now(), num_devices=num_lanes)
        handles: Dict[str, List[RequestHandle]] = {}
        self._prepare_active = self.prepare if prepare is None else bool(prepare)
        try:
            with replay_state(
                sessions.values(),
                deterministic=deterministic,
                host_model=host_model,
                timeline=timeline,
            ):
                last = len(items) - 1
                for i, (t, name, instance) in enumerate(items):
                    self._advance_until(sessions, timeline, t)
                    clock.advance_to(t)
                    handles.setdefault(name, []).append(
                        self._session(name).submit(instance, at=t)
                    )
                    self.num_admitted += 1
                    if i == last or items[i + 1][0] > t:
                        # intake at this timestamp has quiesced (a burst
                        # submits many requests at one instant; speculating
                        # between them would only churn abort/re-prepare)
                        self._maybe_prepare(sessions)
                self._drain_simulated(sessions, timeline)
                # the trace ends when the device finishes its last round
                clock.advance_to(timeline.busy_until)
                timeline.pop_completions(clock.now())
        finally:
            self._prepare_active = False
        return handles

    def _maybe_prepare(self, sessions: Dict[str, Any]) -> None:
        """Simulated-mode speculation point: let every session prepare its
        predicted next round.  A preparer failure here is an infrastructure
        failure exactly as in wall-clock mode: sessions abort (failing
        implicated handles) and ``LoopStopped`` raises with the original
        error as ``__cause__``."""
        if not self._prepare_active:
            return
        now = self.clock.now()
        try:
            for session in sessions.values():
                session.consider_prepare(now)
        except BaseException as exc:
            raise self._die(exc) from exc

    def _next_event(
        self, sessions: Dict[str, Any], timeline: DeviceTimeline
    ) -> Optional[Tuple[float, int]]:
        """Earliest pending wakeup: (timestamp, kind) with kind 0 =
        device completion, 1 = flush deadline (completions win ties so the
        device-idle launch happens before a same-instant deadline fires)."""
        events: List[Tuple[float, int]] = []
        completion = timeline.next_completion()
        if completion is not None:
            events.append((completion, 0))
        deadline = self.next_deadline()
        if deadline is not None:
            events.append((deadline, 1))
        return min(events) if events else None

    def _fire_event(
        self, sessions: Dict[str, Any], timeline: DeviceTimeline, event: Tuple[float, int]
    ) -> None:
        when, kind = event
        self.clock.advance_to(when)
        if kind == 0:
            timeline.pop_completions(self.clock.now())
            # the device went idle: give continuous-batching policies the
            # chance to launch their backlog immediately.  Re-check before
            # every session — the first session's idle-launch re-busies the
            # shared device, and the remaining backlogs should then keep
            # accumulating (waiting is free again) rather than force small
            # partial rounds.
            for session in sessions.values():
                if timeline.in_flight(self.clock.now()) != 0:
                    break
                if session.pending_requests and session.policy.on_idle(
                    session, self.clock.now()
                ):
                    session.flush(reason=session.policy.name)
        else:
            for session in sessions.values():
                session.poll()
        # post-event speculation point: a flush just launched (device share
        # in flight) or a deadline passed without flushing — either way the
        # remaining backlog's composition may now be predictable
        self._maybe_prepare(sessions)

    def _advance_until(
        self, sessions: Dict[str, Any], timeline: DeviceTimeline, t: float
    ) -> None:
        """Fire every wakeup scheduled at or before ``t``, in time order."""
        while True:
            event = self._next_event(sessions, timeline)
            if event is None or event[0] > t:
                return
            self._fire_event(sessions, timeline, event)

    def _drain_simulated(
        self, sessions: Dict[str, Any], timeline: DeviceTimeline
    ) -> None:
        """After the last arrival: fire remaining wakeups until every
        backlog has flushed (forcing a flush only for policies that would
        wait forever, e.g. ``manual``)."""
        while any(s.pending_requests for s in sessions.values()):
            event = self._next_event(sessions, timeline)
            if event is None:
                for session in sessions.values():
                    if session.pending_requests:
                        session.flush()
            else:
                self._fire_event(sessions, timeline, event)

    def __repr__(self) -> str:
        mode = "running" if self.running else "idle"
        return (
            f"ServeLoop({mode}, queued={len(self._queue)}, "
            f"admitted={self.num_admitted}, backpressure={self.backpressure!r})"
        )
