"""Open-loop traffic generation and replay on the simulated clock.

Serving benchmarks need *open-loop* load: arrivals follow a stochastic
process with fixed timestamps, independent of how fast the server drains
them (closed-loop drivers that wait for completions hide queueing collapse
— the classic coordinated-omission trap).  This module generates arrival
processes and replays them against a session or endpoint whose
:class:`~repro.serve.clock.SimulatedClock` makes the experiment
deterministic and fast: the driver advances the clock to each arrival (or
to the next flush deadline, whichever comes first), and every flush charges
its measured round latency to the clock, so queueing delay, deadline
semantics and end-to-end latency all compose correctly without real waiting.

Arrival processes:

* :func:`poisson_arrivals` — exponential inter-arrival gaps (memoryless
  traffic at a given request rate);
* :func:`bursty_arrivals` — bursts of near-simultaneous requests with
  exponential gaps between bursts (flash-crowd traffic at the same average
  rate).

Two replay styles: :func:`replay`/:func:`replay_server` drive the
historical caller-driven choreography (each flush blocks intake for the
round's full latency), while :func:`replay_continuous`/
:func:`replay_server_continuous` run the trace through a
:class:`~repro.serve.loop.ServeLoop` — continuous batching with
asynchronous device rounds.  Pass ``deterministic=True`` to exclude
measured host wall time so the same trace replays bit-for-bit.

Multi-tenant traffic: :func:`tenant_mix` merges per-tenant arrival
processes (each a :class:`TenantSpec` with its own rate, burstiness,
priority class and deadline distribution) into one tagged trace for the
sharded front door (``Server.run_trace`` /
:func:`repro.serve.topology.run_topology_trace`), deterministic on the
seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .clock import SimulatedClock
from .loop import ServeLoop, replay_state
from .request import RequestHandle
from .server import Endpoint


# -- arrival processes ---------------------------------------------------------


def poisson_arrivals(
    rate_rps: float, n: int, *, seed: int = 0, start: float = 0.0
) -> List[float]:
    """``n`` Poisson arrival timestamps at ``rate_rps`` requests/second."""
    if rate_rps <= 0:
        raise ValueError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=n)
    return list(start + np.cumsum(gaps))


def bursty_arrivals(
    rate_rps: float,
    n: int,
    *,
    burst: int = 8,
    seed: int = 0,
    start: float = 0.0,
) -> List[float]:
    """``n`` arrivals in bursts of ``burst`` simultaneous requests.

    Burst start times follow a Poisson process at ``rate_rps / burst``, so
    the *average* request rate matches :func:`poisson_arrivals` at the same
    ``rate_rps`` — only the variance differs.
    """
    if rate_rps <= 0:
        raise ValueError("arrival rate must be positive")
    if burst < 1:
        raise ValueError("burst size must be >= 1")
    rng = np.random.default_rng(seed)
    times: List[float] = []
    t = start
    while len(times) < n:
        t += rng.exponential(burst / rate_rps)
        times.extend([t] * min(burst, n - len(times)))
    return times


# -- multi-tenant traffic ------------------------------------------------------


@dataclass
class TenantSpec:
    """One tenant's traffic profile for :func:`tenant_mix`.

    ``rate_rps``/``burst`` shape the tenant's arrival process (bursts of
    near-simultaneous requests, exponential gaps between bursts — see
    :func:`bursty_arrivals`; ``burst=1`` is Poisson).  ``priority`` is the
    tenant's priority class (:data:`repro.serve.policy.PRIORITY_CLASSES`)
    and ``deadline_ms`` its per-request SLO budget (None: no deadline).
    ``endpoints`` restricts the tenant to a subset of the server's
    endpoints (None: all endpoints passed to :func:`tenant_mix`,
    round-robin)."""

    name: str
    rate_rps: float
    burst: int = 1
    priority: str = "standard"
    deadline_ms: Optional[float] = None
    endpoints: Optional[Sequence[str]] = None


def tenant_mix(
    tenants: Sequence[TenantSpec],
    num_requests: int,
    *,
    endpoints: Sequence[str],
    start: float = 0.0,
    seed: int = 0,
) -> List[Tuple[float, str, Dict[str, Any]]]:
    """Merge per-tenant arrival processes into one tagged open-loop trace.

    Returns ``num_requests`` items ``(arrival_time, endpoint, meta)``
    sorted by arrival time, where ``meta`` carries the admission tags the
    sharded front door consumes (``tenant``, ``priority``, and an
    *absolute* ``deadline`` timestamp when the tenant has a
    ``deadline_ms`` budget).  Zip instances in to build a
    ``Server.run_trace`` workload::

        trace = tenant_mix(tenants, n, endpoints=server.endpoints, seed=7)
        workload = [
            (t, ep, instances[ep][i % len(instances[ep])], meta)
            for i, (t, ep, meta) in enumerate(trace)
        ]

    Requests are apportioned to tenants proportionally to their rates, each
    tenant's arrivals follow its own bursty process, and endpoints are
    assigned round-robin per tenant — everything a pure function of
    ``seed``, so the same mix replays bit-for-bit on a
    :class:`~repro.serve.clock.SimulatedClock`.
    """
    from .policy import resolve_priority

    if not tenants:
        raise ValueError("tenant_mix needs at least one TenantSpec")
    if num_requests < 1:
        raise ValueError("num_requests must be a positive integer")
    endpoints = list(endpoints)
    if not endpoints:
        raise ValueError("tenant_mix needs at least one endpoint")
    total_rate = sum(spec.rate_rps for spec in tenants)
    if total_rate <= 0:
        raise ValueError("tenant rates must sum to a positive rate")
    # proportional apportionment; leftovers go to the highest-rate tenants
    counts = [int(num_requests * spec.rate_rps / total_rate) for spec in tenants]
    order = sorted(
        range(len(tenants)), key=lambda i: (-tenants[i].rate_rps, i)
    )
    i = 0
    while sum(counts) < num_requests:
        counts[order[i % len(order)]] += 1
        i += 1
    items: List[Tuple[float, int, int, str, Dict[str, Any]]] = []
    for index, (spec, count) in enumerate(zip(tenants, counts)):
        if count == 0:
            continue
        priority = resolve_priority(spec.priority)
        eps = list(spec.endpoints) if spec.endpoints else endpoints
        arrivals = bursty_arrivals(
            spec.rate_rps,
            count,
            burst=max(1, int(spec.burst)),
            seed=seed * 1000003 + index,
            start=start,
        )
        for k, at in enumerate(arrivals):
            meta: Dict[str, Any] = {"tenant": spec.name, "priority": priority}
            if spec.deadline_ms is not None:
                meta["deadline"] = at + spec.deadline_ms / 1e3
            items.append((at, index, k, eps[k % len(eps)], meta))
    # (time, tenant index, per-tenant sequence) keys make ties — burst
    # members, cross-tenant collisions — deterministic
    items.sort(key=lambda item: (item[0], item[1], item[2]))
    return [(at, ep, meta) for at, _, _, ep, meta in items]


# -- replay --------------------------------------------------------------------


@dataclass
class TrafficReport:
    """Outcome of replaying one arrival trace against a session."""

    num_requests: int
    #: first arrival to last completion, seconds (simulated)
    duration_s: float
    throughput_rps: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    #: mean batch size across the replay's flush rounds
    mean_batch: float
    num_flushes: int
    #: total kernel launches (batched + gather) across the replay's rounds
    kernel_launches: int
    #: per-request end-to-end latencies (ms), in submission order
    latencies_ms: List[float] = field(default_factory=list)
    #: per-request outputs, in submission order
    outputs: List[Any] = field(default_factory=list)
    #: resolved request handles, in submission order
    handles: List[RequestHandle] = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        return {
            "requests": self.num_requests,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_batch": self.mean_batch,
            "flushes": self.num_flushes,
            "kernel_launches": self.kernel_launches,
        }


def _drain_due_deadlines(session, clock: SimulatedClock, until: float) -> None:
    """Fire every policy deadline scheduled before ``until``."""
    while session.pending_requests:
        deadline = session.next_deadline()
        if deadline is None or deadline > until:
            return
        clock.advance_to(deadline)
        session.poll()


def _drain_all(session, clock: SimulatedClock) -> None:
    """Flush the tail of the backlog after the last arrival."""
    while session.pending_requests:
        deadline = session.next_deadline()
        if deadline is not None:
            clock.advance_to(deadline)
            session.poll()
        else:
            session.flush()


def _snapshot(session) -> Tuple[int, int, int]:
    """Running totals at replay start; the report uses the deltas, so it
    stays correct however long the session has already been serving."""
    return (session.num_flushes, session.requests_flushed, session.total_kernel_calls)


def _report(
    session,
    handles: List[RequestHandle],
    first_arrival: float,
    start: Tuple[int, int, int],
) -> TrafficReport:
    if not handles:
        return TrafficReport(
            num_requests=0,
            duration_s=0.0,
            throughput_rps=0.0,
            mean_ms=0.0,
            p50_ms=0.0,
            p99_ms=0.0,
            mean_batch=0.0,
            num_flushes=0,
            kernel_launches=0,
        )
    flushes = session.num_flushes - start[0]
    batched = session.requests_flushed - start[1]
    launches = session.total_kernel_calls - start[2]
    latencies = [h.stats.latency_ms for h in handles]
    completed = max(h.stats.completed_at for h in handles)
    duration = max(completed - first_arrival, 1e-12)
    return TrafficReport(
        num_requests=len(handles),
        duration_s=duration,
        throughput_rps=len(handles) / duration,
        mean_ms=float(np.mean(latencies)),
        p50_ms=float(np.percentile(latencies, 50)),
        p99_ms=float(np.percentile(latencies, 99)),
        mean_batch=(batched / flushes) if flushes else 0.0,
        num_flushes=flushes,
        kernel_launches=launches,
        latencies_ms=latencies,
        outputs=[h.result() for h in handles],
        handles=handles,
    )


def replay(
    session,
    requests: Sequence[Any],
    arrivals: Sequence[float],
    *,
    deterministic: bool = False,
    host_model: Optional[Tuple[float, float]] = None,
) -> TrafficReport:
    """Replay an open-loop arrival trace against one session (or endpoint),
    caller-driven: the historical single-threaded choreography where each
    flush blocks intake for the round's full latency.

    ``session`` must run on a :class:`~repro.serve.clock.SimulatedClock`.
    Each request is submitted at its scheduled arrival time; flush deadlines
    falling between arrivals fire in order, and after the last arrival the
    backlog drains.  Arrivals that land while the session is executing are
    submitted as soon as it frees up but keep their true arrival timestamp,
    so queueing delay is measured without coordinated omission.

    ``deterministic=True`` excludes measured host wall time from the
    simulated timeline (rounds cost their simulated device + API time
    only), so the same trace replays bit-for-bit across runs — the mode the
    continuous-vs-caller-driven benchmark compares under.  ``host_model``
    optionally replaces the excluded host share with a deterministic
    ``(per_round_ms, per_request_ms)`` linear model, so intake still pays a
    host cost per flush (the phenomenon a caller-driven loop suffers from)
    without wall-clock noise.
    """
    if len(requests) != len(arrivals):
        raise ValueError("need exactly one arrival time per request")
    if any(b < a for a, b in zip(arrivals, arrivals[1:])):
        raise ValueError("arrival trace must be sorted by time")
    if isinstance(session, Endpoint):
        session = session.session
    clock = session.clock
    if not isinstance(clock, SimulatedClock):
        raise TypeError("replay needs a session driven by a SimulatedClock")
    start = _snapshot(session)
    handles: List[RequestHandle] = []
    first_arrival = arrivals[0] if len(arrivals) else clock.now()
    with replay_state(
        [session], deterministic=deterministic, host_model=host_model
    ):
        for t, request in zip(arrivals, requests):
            _drain_due_deadlines(session, clock, until=t)
            clock.advance_to(t)
            handles.append(session.submit(request, at=t))
        _drain_all(session, clock)
    return _report(session, handles, first_arrival, start)


def replay_continuous(
    session,
    requests: Sequence[Any],
    arrivals: Sequence[float],
    *,
    deterministic: bool = True,
    host_model: Optional[Tuple[float, float]] = None,
    prepare: bool = False,
) -> TrafficReport:
    """Replay an open-loop arrival trace with **continuous batching**: the
    trace runs through a :class:`~repro.serve.loop.ServeLoop`, so flushed
    rounds execute asynchronously on a device timeline while intake streams
    on, partial rounds launch exactly when the flush policy fires, and the
    device never idles while a backlog exists.

    With ``deterministic`` (default) the simulated timeline depends only on
    the trace and the device cost model: replaying the same trace is
    bit-for-bit identical across runs.  ``prepare`` additionally turns on
    the overlapped host pipeline (speculative round preparation) for the
    replay — still bit-for-bit deterministic.
    """
    if len(requests) != len(arrivals):
        raise ValueError("need exactly one arrival time per request")
    if any(b < a for a, b in zip(arrivals, arrivals[1:])):
        raise ValueError("arrival trace must be sorted by time")
    if isinstance(session, Endpoint):
        session = session.session
    clock = session.clock
    if not isinstance(clock, SimulatedClock):
        raise TypeError("replay_continuous needs a session driven by a SimulatedClock")
    start = _snapshot(session)
    first_arrival = arrivals[0] if len(arrivals) else clock.now()
    loop = ServeLoop(sessions={"_": session}, clock=clock, prepare=prepare)
    handles = loop.run_trace(
        [(t, "_", request) for t, request in zip(arrivals, requests)],
        deterministic=deterministic,
        host_model=host_model,
    ).get("_", [])
    return _report(session, handles, first_arrival, start)


def replay_server(
    server,
    workload: Iterable[Tuple[float, str, Any]],
    *,
    deterministic: bool = False,
    host_model: Optional[Tuple[float, float]] = None,
) -> Dict[str, TrafficReport]:
    """Replay a tagged open-loop trace against a multi-endpoint server,
    caller-driven (each flush blocks intake for the round's full latency).

    ``workload`` yields ``(arrival_time, endpoint_name, request)`` sorted by
    arrival time.  Deadline flushes of *any* endpoint fire in timestamp
    order between arrivals; returns one :class:`TrafficReport` per endpoint
    that received traffic.  ``deterministic``/``host_model`` behave as in
    :func:`replay`, so caller-driven and continuous server replays compare
    at equal footing.
    """
    clock = server.clock
    if not isinstance(clock, SimulatedClock):
        raise TypeError("replay_server needs a server driven by a SimulatedClock")
    items = sorted(workload, key=lambda item: item[0])
    starts = {name: _snapshot(server.endpoint(name).session) for name in server.endpoints}
    handles: Dict[str, List[RequestHandle]] = {}
    first_arrival: Dict[str, float] = {}
    sessions = [server.endpoint(name).session for name in server.endpoints]
    with replay_state(
        sessions, deterministic=deterministic, host_model=host_model
    ):
        for t, name, request in items:
            while True:
                deadline = server.next_deadline()
                if deadline is None or deadline > t:
                    break
                clock.advance_to(deadline)
                server.poll()
            clock.advance_to(t)
            handles.setdefault(name, []).append(server.submit(name, request, at=t))
            first_arrival.setdefault(name, t)
        while any(server.endpoint(n).pending_requests for n in server.endpoints):
            deadline = server.next_deadline()
            if deadline is not None:
                clock.advance_to(deadline)
                server.poll()
            else:
                server.flush_all()
    return {
        name: _report(
            server.endpoint(name).session,
            eps_handles,
            first_arrival[name],
            starts[name],
        )
        for name, eps_handles in handles.items()
    }


def replay_server_continuous(
    server,
    workload: Iterable[Tuple[float, str, Any]],
    *,
    deterministic: bool = True,
    host_model: Optional[Tuple[float, float]] = None,
    prepare: Optional[bool] = None,
) -> Dict[str, TrafficReport]:
    """Replay a tagged open-loop trace against a multi-endpoint server with
    continuous batching: the trace runs through the server's
    :class:`~repro.serve.loop.ServeLoop` (``server.loop.run_trace``), all
    endpoints sharing one device timeline.  Returns one
    :class:`TrafficReport` per endpoint that received traffic.
    """
    clock = server.clock
    if not isinstance(clock, SimulatedClock):
        raise TypeError(
            "replay_server_continuous needs a server driven by a SimulatedClock"
        )
    items = sorted(workload, key=lambda item: item[0])
    starts = {name: _snapshot(server.endpoint(name).session) for name in server.endpoints}
    first_arrival: Dict[str, float] = {}
    for t, name, _ in items:
        first_arrival.setdefault(name, t)
    handles = server.loop.run_trace(
        items, deterministic=deterministic, host_model=host_model, prepare=prepare
    )
    return {
        name: _report(
            server.endpoint(name).session,
            eps_handles,
            first_arrival[name],
            starts[name],
        )
        for name, eps_handles in handles.items()
    }
