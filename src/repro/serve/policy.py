"""Flush policies: *when* does a serving session execute its backlog?

Cross-request batching trades latency for throughput: every extra request
that joins a round amortizes the round's kernel launches further, but every
pending request ages while the session waits.  A :class:`FlushPolicy`
encodes one point on that tradeoff.  Policies are string-keyed through a
registry mirroring the scheduler-policy registry
(:mod:`repro.engine.registry`): sessions resolve them by name via
:func:`make_flush_policy`, and third parties add their own with
:func:`register_flush_policy`.

Built-in policies:

``manual``
    Never auto-flush; the caller drives ``flush()`` explicitly.
``size``
    Flush once ``n`` requests are pending (the classic fixed-size batcher;
    the old ``max_batch=n`` session argument is sugar for this).
``deadline``
    Flush when the oldest pending request has waited ``ms`` milliseconds,
    measured on the session's pluggable :class:`~repro.serve.clock.Clock`.
    Bounds worst-case queueing delay regardless of traffic.
``adaptive``
    Flush when the *marginal benefit of waiting* — the kernel-launch
    overhead the next arrival would amortize, estimated from the device
    cost model and the observed launches-per-round — drops below the
    *waiting cost* — the expected inter-arrival gap times the number of
    pending requests whose latency that wait inflates.  While the session
    drains a backlog (arrivals time-stamped in the past piled up during
    execution) waiting is free, so the whole backlog batches — continuous
    batching.  Approximates the right batch size for the offered load
    without tuning.

A policy instance is stateful and belongs to exactly one session; pass
policy *names* (plus arguments) around, not instances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .request import RequestHandle
    from .session import InferenceSession

PolicyFactory = Callable[..., "FlushPolicy"]

_REGISTRY: Dict[str, PolicyFactory] = {}


# -- priority classes and SLO-aware shedding ----------------------------------

#: SLO priority classes, lowest to highest.  Requests default to
#: ``standard``; ``interactive`` requests are shed last, ``batch`` first.
PRIORITY_CLASSES: Dict[str, int] = {"batch": 0, "standard": 1, "interactive": 2}

#: priority assumed for requests that never declared one (slack-based
#: shedding still needs a total order over mixed traffic)
DEFAULT_PRIORITY = "standard"


def resolve_priority(priority: Any) -> str:
    """Canonicalize a priority-class argument (name or rank) to its name."""
    if priority is None:
        return DEFAULT_PRIORITY
    if isinstance(priority, str):
        if priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority class {priority!r}; available classes: "
                f"{', '.join(sorted(PRIORITY_CLASSES))}"
            )
        return priority
    rank = int(priority)
    for name, value in PRIORITY_CLASSES.items():
        if value == rank:
            return name
    raise ValueError(f"no priority class has rank {rank}")


def priority_rank(priority: Optional[str]) -> int:
    """Numeric rank of a priority-class name (None → the default class)."""
    return PRIORITY_CLASSES[priority if priority is not None else DEFAULT_PRIORITY]


def select_shed_victim(
    handles: Sequence["RequestHandle"], now: float
) -> Optional[int]:
    """Index of the request SLO-aware backpressure should shed, or None.

    Replaces age-based shed ("drop the oldest") with slack-based shed:
    among the lowest priority class present, drop the request with the
    *most* deadline slack — the one that can best afford to be retried —
    breaking remaining ties toward the newest arrival (oldest requests
    have waited longest and are closest to completing their round).
    Deterministic: a pure function of the candidates and ``now``.
    """
    if not handles:
        return None
    best = 0
    best_key = (-priority_rank(handles[0].priority), handles[0].slack(now), 0)
    for i in range(1, len(handles)):
        h = handles[i]
        key = (-priority_rank(h.priority), h.slack(now), i)
        if key > best_key:
            best, best_key = i, key
    return best


class FlushPolicy:
    """Decides when a session's pending requests execute as one round."""

    #: registry name (also reported as ``RunStats.flush_reason``)
    name = "manual"

    #: when True, a session clamps :meth:`next_deadline` to the earliest
    #: *request* deadline among pending priority-classed requests, so a
    #: round never outwaits the SLO of a request riding in it.  Manual
    #: policies opt out (the caller drives flushes explicitly).
    slo_deadline_clamp = True

    def on_submit(self, session: "InferenceSession", now: float) -> bool:
        """Called after each submit (``now`` is the request's arrival time);
        return True to flush the round immediately."""
        return False

    def next_deadline(self, session: "InferenceSession") -> Optional[float]:
        """Clock timestamp by which the pending round must flush, or None
        when the policy imposes no deadline.  Drivers poll the session when
        the clock passes this point (:meth:`InferenceSession.poll`)."""
        return None

    def on_idle(self, session: "InferenceSession", now: float) -> bool:
        """Called by a :class:`~repro.serve.loop.ServeLoop` when the device
        goes idle (the last in-flight round completed) while requests are
        pending; return True to launch the pending round immediately.

        The default keeps the policy's normal semantics (wait for the size
        threshold / deadline); continuous-batching policies return True so
        the device never idles while a backlog exists.
        """
        return False

    def note_flush(self, session: "InferenceSession", stats: Any) -> None:
        """Observation hook: called with the round's ``RunStats`` after
        every flush (adaptive policies update their estimates here)."""

    def round_cap(self, session: "InferenceSession") -> Optional[int]:
        """Maximum number of requests one flush may take, or None for no
        cap (the flush drains everything pending).

        A capped flush executes the *oldest* pending requests and leaves
        the rest as the next round's prefix — continuous batching with
        bounded rounds.  The cap is also what makes speculation robust
        under arrival churn: admissions append *behind* the capped prefix,
        so a speculatively prepared round stays valid while traffic keeps
        arriving (see :meth:`InferenceSession.consider_prepare`).
        """
        return None

    def predict_next_flush(
        self, session: "InferenceSession", now: float
    ) -> Optional[float]:
        """Clock timestamp at which this policy expects the pending round to
        flush *with its current composition*, or None when no confident
        prediction exists.

        This is the speculation hook of the overlapped host pipeline: when a
        policy predicts that the pending requests will flush unchanged at
        some future instant (no further arrival expected to join first), the
        serve loop prepares the round ahead of time — schedule, placement
        and memory plan — so the flush only has to execute.  A wrong
        prediction is harmless (the prepared round is abandoned when
        admission diverges and rebuilt at the next quiesce point), so
        policies should predict whenever a definite flush horizon exists —
        even if more arrivals are likely to join the round first — and
        return None only when nothing schedules a flush at all.

        The default never predicts (manual and size policies flush *on* an
        arrival, so the composition always changes at flush time).
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# -- registry -----------------------------------------------------------------


def register_flush_policy(
    name: str,
    factory: Optional[PolicyFactory] = None,
    *,
    overwrite: bool = False,
) -> Any:
    """Register a flush policy under ``name`` (plain call or decorator).

    Registering an existing name raises unless ``overwrite=True``.
    """

    def _register(fn: PolicyFactory) -> PolicyFactory:
        if not overwrite and name in _REGISTRY:
            raise ValueError(
                f"flush policy {name!r} is already registered "
                f"(pass overwrite=True to replace it)"
            )
        _REGISTRY[name] = fn
        return fn

    if factory is None:
        return _register
    return _register(factory)


def unregister_flush_policy(name: str) -> None:
    """Remove a flush policy from the registry (no-op for unknown names)."""
    _REGISTRY.pop(name, None)


def available_flush_policies() -> Tuple[str, ...]:
    """Names of all registered flush policies, sorted."""
    return tuple(sorted(_REGISTRY))


def make_flush_policy(name: str, **policy_args: Any) -> FlushPolicy:
    """Instantiate the flush policy registered under ``name``.

    Keyword arguments are forwarded to the policy factory (e.g.
    ``make_flush_policy("deadline", ms=5.0)``).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown flush policy {name!r}; available policies: "
            f"{', '.join(available_flush_policies())}"
        ) from None
    return factory(**policy_args)


# -- built-in policies --------------------------------------------------------


@register_flush_policy("manual")
class ManualPolicy(FlushPolicy):
    """Never auto-flush: the caller drives ``flush()`` explicitly."""

    name = "manual"
    slo_deadline_clamp = False


@register_flush_policy("size")
class SizePolicy(FlushPolicy):
    """Flush once ``n`` requests are pending."""

    name = "size"

    def __init__(self, n: int = 8) -> None:
        if n < 1:
            raise ValueError("size policy needs n >= 1")
        self.n = int(n)

    def on_submit(self, session: "InferenceSession", now: float) -> bool:
        return session.pending_requests >= self.n

    def __repr__(self) -> str:
        return f"SizePolicy(n={self.n})"


@register_flush_policy("deadline")
class DeadlinePolicy(FlushPolicy):
    """Flush when the oldest pending request has waited ``ms`` milliseconds.

    The deadline is measured on the session's clock, so simulated clocks
    give exactly reproducible batch boundaries.  Submits arriving after the
    deadline has already passed flush immediately; otherwise drivers call
    :meth:`InferenceSession.poll` once the clock reaches
    :meth:`next_deadline`.
    """

    name = "deadline"

    def __init__(self, ms: float = 10.0) -> None:
        if ms < 0:
            raise ValueError("deadline policy needs ms >= 0")
        self.ms = float(ms)

    def on_submit(self, session: "InferenceSession", now: float) -> bool:
        deadline = self.next_deadline(session)
        return deadline is not None and now >= deadline

    def next_deadline(self, session: "InferenceSession") -> Optional[float]:
        started = session.round_started_at
        if started is None:
            return None
        return started + self.ms / 1e3

    def predict_next_flush(
        self, session: "InferenceSession", now: float
    ) -> Optional[float]:
        # the round flushes at its deadline; mis-speculation is free (a
        # prepared round whose admission diverges is abandoned and rebuilt
        # at the next quiesce point), so predict whenever the deadline is
        # still ahead — even if more arrivals are likely to join first, the
        # rebuild after the *last* one still hides the wait to the deadline
        when = self.next_deadline(session)
        if when is None or when <= now:
            return None
        return when

    def __repr__(self) -> str:
        return f"DeadlinePolicy(ms={self.ms})"


@register_flush_policy("adaptive")
class AdaptivePolicy(FlushPolicy):
    """Flush when waiting stops paying for itself.

    Waiting for one more request is worth roughly one request's worth of
    kernel-launch overhead: batching same-structure requests keeps the
    round's launch count near a *single* request's count (that is the whole
    cross-request win), so the next arrival would amortize
    ``launches_per_round * (launch + API overhead)`` microseconds of device
    cost.  Waiting costs ``expected_gap * pending`` — every queued request's
    latency grows by the expected inter-arrival gap.  The policy flushes
    when the cost exceeds the benefit, with two safety valves: a hard
    ``max_batch`` cap and a ``max_wait_ms`` deadline so p99 latency stays
    finite when traffic stalls.

    One asymmetry matters under load: a request submitted with an explicit
    arrival timestamp *behind* the clock
    (:attr:`~repro.serve.session.InferenceSession.last_submit_backdated`)
    was queued while the session executed an earlier round (open-loop
    traffic does not pause).  Waiting costs those requests nothing — they
    are already late and more backlog is draining — so the policy keeps
    accumulating until arrivals catch up with the clock, which is exactly
    continuous batching: each round absorbs everything that arrived during
    the previous round's execution.  Only explicitly backdated submits
    count as backlog; wall-clock submits (no ``at=``) always run the
    cost/benefit rule.

    The launches-per-round estimate is an EWMA over observed flushes
    (seeded with ``launch_prior``); the inter-arrival gap is an EWMA over
    arrival timestamps on the session's clock.
    """

    name = "adaptive"

    def __init__(
        self,
        max_batch: int = 64,
        max_wait_ms: float = 20.0,
        launch_prior: float = 64.0,
        smoothing: float = 0.5,
    ) -> None:
        if max_batch < 1:
            raise ValueError("adaptive policy needs max_batch >= 1")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.smoothing = float(smoothing)
        #: EWMA of kernel launches per flushed round
        self.round_launches = float(launch_prior)
        #: EWMA of the inter-arrival gap in seconds (None until two submits)
        self.gap_s: Optional[float] = None
        self._last_arrival: Optional[float] = None

    # -- estimates ------------------------------------------------------------
    def _observe_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            gap = max(0.0, now - self._last_arrival)
            if self.gap_s is None:
                self.gap_s = gap
            else:
                self.gap_s = self.smoothing * gap + (1 - self.smoothing) * self.gap_s
        self._last_arrival = now

    def marginal_benefit_us(self, session: "InferenceSession") -> float:
        """Device overhead the *next* arrival would amortize away (us)."""
        spec = session.engine.device.spec
        return self.round_launches * (spec.launch_overhead_us + spec.api_overhead_us)

    def waiting_cost_us(self, session: "InferenceSession") -> float:
        """Expected queueing added across pending requests by waiting for
        one more arrival (us)."""
        if self.gap_s is None:
            return 0.0
        return self.gap_s * 1e6 * session.pending_requests

    # -- policy hooks ---------------------------------------------------------
    def on_submit(self, session: "InferenceSession", now: float) -> bool:
        self._observe_arrival(now)
        if session.last_submit_backdated or session.in_flight_rounds:
            # draining a backlog, or earlier rounds still executing on the
            # device (continuous batching under a serve loop): waiting is
            # free — flushing now would only queue host work serially.
            # Keep accumulating; rounds stay bounded anyway because the
            # flush itself caps at max_batch (:meth:`round_cap`), and the
            # loop's device-idle wakeup (:meth:`on_idle`) launches the next
            # capped round the moment the device frees.  Launching capped
            # rounds at completion boundaries instead of on the admitting
            # submit is also what gives the prepare pipeline its window:
            # the prepared prefix rides out the arrivals and adopts with
            # the whole device flight hidden behind it.
            return False
        if session.pending_requests >= self.max_batch:
            return True
        return self.waiting_cost_us(session) > self.marginal_benefit_us(session)

    def next_deadline(self, session: "InferenceSession") -> Optional[float]:
        started = session.round_started_at
        if started is None:
            return None
        return started + self.max_wait_ms / 1e3

    def on_idle(self, session: "InferenceSession", now: float) -> bool:
        # the device just went idle with requests pending: launch them —
        # idling the accelerator while a backlog exists never pays.  (If
        # another session's idle-launch already re-busied the shared
        # device, keep accumulating instead: waiting is free again.)
        return session.pending_requests > 0 and not session.in_flight_rounds

    def round_cap(self, session: "InferenceSession") -> Optional[int]:
        # max_batch bounds the round wherever the flush comes from (idle
        # launch, max_wait deadline, drain) — the overflow stays pending as
        # the next round's prefix
        return self.max_batch

    def note_flush(self, session: "InferenceSession", stats: Any) -> None:
        launches = float(stats.kernel_calls)
        self.round_launches = (
            self.smoothing * launches + (1 - self.smoothing) * self.round_launches
        )

    def predict_next_flush(
        self, session: "InferenceSession", now: float
    ) -> Optional[float]:
        # under continuous batching the accumulating round launches the
        # moment the device goes idle (:meth:`on_idle` fires at the
        # timeline's busy horizon) — that device-busy window is exactly
        # where prepared host work hides; otherwise the max_wait deadline
        # bounds the wait.  Predict whenever that horizon is still ahead:
        # arrivals that join first only cost a free abandon-and-rebuild,
        # while the rebuild after the last joiner hides the rest of the
        # window.
        started = session.round_started_at
        if started is None:
            return None
        when = started + self.max_wait_ms / 1e3
        timeline = session.timeline
        if timeline is not None and timeline.in_flight(now):
            when = min(when, timeline.busy_until)
        if when <= now:
            return None
        return when

    def __repr__(self) -> str:
        return (
            f"AdaptivePolicy(max_batch={self.max_batch}, "
            f"max_wait_ms={self.max_wait_ms})"
        )
