"""Future-style request handles with per-request serving statistics.

:meth:`~repro.serve.session.InferenceSession.submit` returns a
:class:`RequestHandle` immediately; the handle resolves when the flush
policy (or an explicit ``flush()``) executes the request's batching round.
Besides the result value, the handle carries a :class:`RequestStats` — the
per-request observability a serving system needs: how long the request
queued waiting for its batch, its end-to-end latency, how large the batch
it rode in was, and its share of the round's kernel launches (the
amortization cross-request batching buys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass
class RequestStats:
    """Per-request serving statistics, filled in when the request's round
    flushes."""

    #: clock timestamp at which the request was submitted (arrival time)
    submitted_at: float = 0.0
    #: clock timestamp at which the request's round started executing
    flushed_at: float = 0.0
    #: clock timestamp at which the request's result became available
    completed_at: float = 0.0
    #: time spent queued waiting for the batch to flush (ms)
    queue_ms: float = 0.0
    #: the round's execution latency: host time + simulated device time (ms)
    execute_ms: float = 0.0
    #: end-to-end latency: queueing + execution (ms)
    latency_ms: float = 0.0
    #: how many requests shared the request's batching round
    batch_size: int = 0
    #: kernel launches of the round divided by its batch size — the
    #: per-request launch cost after cross-request amortization
    launch_share: float = 0.0
    #: what triggered the flush ("size", "deadline", "adaptive", "manual")
    flush_reason: str = ""


class RequestHandle:
    """Handle for one submitted request; resolves at its round's flush."""

    __slots__ = ("index", "submitted_at", "done", "stats", "_value")

    def __init__(self, index: int, submitted_at: float = 0.0) -> None:
        #: position of the request within its batching round
        self.index = index
        #: clock timestamp of submission
        self.submitted_at = submitted_at
        self.done = False
        #: per-request statistics (None until the round flushes)
        self.stats: Optional[RequestStats] = None
        self._value: Any = None

    def result(self) -> Any:
        """The request's output; raises if its round has not flushed yet."""
        if not self.done:
            raise RuntimeError(
                "request not executed yet: call InferenceSession.flush() "
                "(or wait for the session's flush policy to trigger)"
            )
        return self._value

    def _complete(self, value: Any, stats: RequestStats) -> None:
        self._value = value
        self.stats = stats
        self.done = True

    def __repr__(self) -> str:
        return f"RequestHandle(index={self.index}, done={self.done})"
