"""Future-style request handles with per-request serving statistics.

:meth:`~repro.serve.session.InferenceSession.submit` returns a
:class:`RequestHandle` immediately; the handle resolves when the flush
policy (or an explicit ``flush()``) executes the request's batching round.
Besides the result value, the handle carries a :class:`RequestStats` — the
per-request observability a serving system needs: how long the request
queued waiting for its batch, its end-to-end latency, how large the batch
it rode in was, and its share of the round's kernel launches (the
amortization cross-request batching buys).

Handles are backed by a :class:`concurrent.futures.Future`, so one object
serves every consumption style:

* synchronous, caller-driven: ``handle.result()`` after ``flush()``/
  ``poll()`` (raises if the round has not executed — the historical
  behaviour);
* threaded, loop-driven: ``handle.result(timeout=...)`` blocks until the
  :class:`~repro.serve.loop.ServeLoop` flushes the round (or the timeout
  expires);
* async: ``await handle`` inside any asyncio event loop (the loop thread
  resolves the future, asyncio wakes the coroutine).

A handle that was *shed* by the admission queue's backpressure policy (or
whose round failed) resolves exceptionally: ``result()``/``await`` raise,
``handle.failed`` is True and :meth:`exception` returns the error.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from dataclasses import dataclass
from typing import Any, Optional

#: sentinel distinguishing ``result()`` (historical: raise when not done)
#: from ``result(timeout=None)`` (block forever)
_UNSET = object()


class RequestCancelled(Exception):
    """The request was cancelled before its round formed.

    Raised out of ``result()``/``await`` on a handle whose
    :meth:`RequestHandle.cancel` succeeded; round-mates are unaffected."""


class RequestExpired(Exception):
    """The request's deadline passed before it could be dispatched/flushed."""


class QuotaExceeded(Exception):
    """The tenant's token-bucket quota rejected the request at admission.

    Raised (or set on the handle) by the server's
    :class:`~repro.serve.topology.AdmissionController` before the request
    ever reaches a loop — quota rejections never consume loop or device
    capacity."""


@dataclass
class RequestStats:
    """Per-request serving statistics, filled in when the request's round
    flushes."""

    #: clock timestamp at which the request was submitted (arrival time)
    submitted_at: float = 0.0
    #: clock timestamp at which the request's round started executing
    flushed_at: float = 0.0
    #: clock timestamp at which the request's result became available
    completed_at: float = 0.0
    #: time spent queued waiting for the batch to flush (ms)
    queue_ms: float = 0.0
    #: the round's execution latency: host time + simulated device time —
    #: including, under a continuous-batching loop, time the round spent
    #: queued behind earlier rounds on the busy device (ms)
    execute_ms: float = 0.0
    #: end-to-end latency: queueing + execution (ms)
    latency_ms: float = 0.0
    #: how many requests shared the request's batching round
    batch_size: int = 0
    #: kernel launches of the round divided by its batch size — the
    #: per-request launch cost after cross-request amortization
    launch_share: float = 0.0
    #: what triggered the flush ("size", "deadline", "adaptive", "manual")
    flush_reason: str = ""


class RequestHandle:
    """Handle for one submitted request; resolves at its round's flush."""

    __slots__ = (
        "index", "submitted_at", "done", "stats", "_future", "_managed",
        "_origin", "tenant", "priority", "deadline",
    )

    def __init__(
        self,
        index: int,
        submitted_at: float = 0.0,
        *,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> None:
        #: position of the request within its batching round (-1 while the
        #: request sits in a serve loop's admission queue)
        self.index = index
        #: clock timestamp of submission
        self.submitted_at = submitted_at
        #: tenant the request bills against (None: untracked/anonymous)
        self.tenant = tenant
        #: priority-class name (see ``repro.serve.policy.PRIORITY_CLASSES``);
        #: None means the request opted out of SLO-aware treatment entirely
        self.priority = priority
        #: clock timestamp the SLO considers the request late after (None:
        #: no deadline — infinite slack under slack-based shedding)
        self.deadline = deadline
        self.done = False
        #: per-request statistics (None until the round flushes)
        self.stats: Optional[RequestStats] = None
        self._future: concurrent.futures.Future = concurrent.futures.Future()
        # loop-managed handles may legitimately be pending when result() is
        # called from another thread, so a bare result() blocks instead of
        # raising
        self._managed = False
        # whoever currently owns the pending request (an InferenceSession or
        # a ServeLoop) — the target cancel() delegates to
        self._origin: Any = None

    # -- consumption -----------------------------------------------------------
    def _resolve(self, timeout: Any, accessor: str) -> Any:
        """Shared raise-or-block contract of :meth:`result` and
        :meth:`exception`: without a timeout an unmanaged pending handle
        raises (the synchronous API cannot resolve it from here), otherwise
        block on the future and translate its timeout error."""
        if timeout is _UNSET:
            if not self.done and not self._managed:
                raise RuntimeError(
                    "request not executed yet: call InferenceSession.flush() "
                    "(or wait for the session's flush policy to trigger)"
                )
            timeout = None
        try:
            return getattr(self._future, accessor)(timeout)
        except concurrent.futures.TimeoutError:
            raise TimeoutError(
                f"request not completed within {timeout}s"
            ) from None

    def result(self, timeout: Any = _UNSET) -> Any:
        """The request's output.

        Without arguments, keeps the synchronous API's contract: raises
        ``RuntimeError`` if the round has not flushed yet — *unless* the
        handle is owned by a running :class:`~repro.serve.loop.ServeLoop`,
        in which case it blocks until the loop resolves it.  With
        ``timeout=`` (seconds, or None to wait forever) it always blocks,
        raising ``TimeoutError`` when the deadline expires first.
        """
        return self._resolve(timeout, "result")

    def exception(self, timeout: Any = _UNSET) -> Optional[BaseException]:
        """The exception the request failed with (None when it succeeded);
        blocks (or raises on an unmanaged pending handle) exactly like
        :meth:`result`."""
        return self._resolve(timeout, "exception")

    @property
    def failed(self) -> bool:
        """True when the request resolved exceptionally (shed by
        backpressure, or its round's execution raised)."""
        return self.done and self._future.exception(0) is not None

    def __await__(self):
        """Awaitable inside any running asyncio loop: ``await handle``."""
        return asyncio.wrap_future(self._future).__await__()

    def add_done_callback(self, fn) -> None:
        """Run ``fn(handle)`` when the handle resolves (from whichever thread
        resolves it — keep the callback cheap and non-reentrant)."""
        self._future.add_done_callback(lambda _f: fn(self))

    def slack(self, now: float) -> float:
        """Seconds of headroom before this request misses its deadline
        (``inf`` when it carries none) — the quantity SLO-aware shedding
        maximizes over its victims."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - now

    # -- lifecycle -------------------------------------------------------------
    def cancel(self) -> bool:
        """Withdraw the request before its round forms.

        Returns True when the request was still pending and has been removed
        from its owner (session round or loop admission queue) — the handle
        then fails with :class:`RequestCancelled` and round-mates flush as if
        the request had never been submitted.  Returns False when the request
        already resolved or its round already executed (results are not
        retracted).  Safe from any thread for loop-managed handles; for
        caller-driven sessions it must run on the driving thread.
        """
        if self.done:
            return False
        origin = self._origin
        if origin is None:
            return False
        return bool(origin._cancel_handle(self))

    # -- resolution (serving internals) ----------------------------------------
    def _complete(self, value: Any, stats: RequestStats) -> None:
        self.stats = stats
        self._future.set_result(value)
        self.done = True

    def _fail(self, exc: BaseException) -> None:
        self._future.set_exception(exc)
        self.done = True

    def __repr__(self) -> str:
        state = "failed" if self.failed else ("done" if self.done else "pending")
        return f"RequestHandle(index={self.index}, {state})"
