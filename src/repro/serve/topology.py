"""The sharded serving front door: loop topologies, SLO-aware admission,
and cross-loop work-stealing.

A single :class:`~repro.serve.loop.ServeLoop` is a scaling ceiling: every
flush's host share — DFG building, scheduling, placement, launch API calls
— serializes with intake on one event loop, so once the host is the
bottleneck, adding devices buys nothing.  This module shards the front
door.  A **loop topology** (registry, mirroring the scheduler/flush/
placement registries) decides how many loops a server runs and which
slice of the device group each owns:

* ``single`` — the historical one-loop server (default; bit-compatible);
* ``per_device`` — one loop per device-group member (or per
  ``members_per_loop``-sized slice), each endpoint replicated into every
  loop over its member slice, so N host lanes run in parallel in front of
  N device lanes;
* ``per_endpoint`` — one loop per endpoint, each on its own fresh device
  complement (loop threads never share a simulator).

Request admission becomes **SLO-aware**: requests carry a tenant, a
priority class (:data:`~repro.serve.policy.PRIORITY_CLASSES`) and a
deadline; per-tenant :class:`TokenBucket` quotas gate admission before a
request ever reaches a loop, and under backpressure the ``shed-slack``
policy sheds the lowest-priority request with the *most* deadline slack
(the one that can best afford a retry) instead of the oldest.  The
:class:`AdmissionController` keeps per-tenant/per-priority gauges
(admitted, shed, expired, SLO attainment) surfaced in
``Server.summary()``.

An idle loop **steals work** from its most-backlogged sibling — the
newest half of the victim's queued admissions (and, in simulated mode,
its pending round tail via :meth:`InferenceSession.withdraw`) — so a
burst aimed at one loop spreads across the group.  Both modes survive:
wall-clock stealing runs in :meth:`ServeLoop._try_steal_wall`; simulated
stealing happens at deterministic event-loop points here.

:func:`run_topology_trace` is the multi-loop analogue of
:meth:`ServeLoop.run_trace`: one deterministic event loop interleaving
*all* loops' events — arrivals, flush deadlines, device completions,
host-gated dispatches — in global timestamp order on the shared
:class:`~repro.serve.clock.SimulatedClock`.  Each loop gets its own
:class:`~repro.serve.loop.HostLane`, so host shares serialize per loop
instead of globally (the sharding win), and the same trace replays
bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from .clock import SimulatedClock
from .loop import (
    BackpressureFull,
    DeviceTimeline,
    HostLane,
    RequestShed,
    ServeLoop,
    _Admission,
    replay_state,
)
from .policy import resolve_priority, select_shed_victim
from .request import (
    QuotaExceeded,
    RequestCancelled,
    RequestExpired,
    RequestHandle,
)

__all__ = [
    "TokenBucket",
    "AdmissionController",
    "LoopTopology",
    "SingleTopology",
    "PerDeviceTopology",
    "PerEndpointTopology",
    "register_topology",
    "make_topology",
    "available_topologies",
    "run_topology_trace",
]


# -- per-tenant quotas ---------------------------------------------------------


class TokenBucket:
    """Deterministic token-bucket rate limiter on the serving clock.

    Refills continuously at ``rate`` tokens/second up to ``burst``;
    :meth:`try_take` is a pure function of the call timestamps, so quota
    decisions replay bit-for-bit on a simulated clock."""

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("token-bucket rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last: Optional[float] = None

    def try_take(self, now: float) -> bool:
        """Consume one token if available at ``now``; False = over quota."""
        if self._last is not None and now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now if self._last is None else max(self._last, now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate}, burst={self.burst}, tokens={self.tokens:.2f})"


def _blank_gauges() -> Dict[str, Any]:
    return {
        "submitted": 0,
        "completed": 0,
        "rejected": 0,
        "shed": 0,
        "expired": 0,
        "cancelled": 0,
        "failed": 0,
        "slo_met": 0,
        "per_priority": {},
    }


class AdmissionController:
    """SLO-aware admission: per-tenant quotas plus lifecycle gauges.

    ``quotas`` maps tenant name → ``(rate_rps, burst)`` (or a dict with
    ``rate``/``burst`` keys); tenants without a quota are never
    rate-limited.  Every tracked handle is classified exactly once when it
    resolves — completed, rejected (quota), shed (backpressure), expired
    (deadline), cancelled, or failed — and counted per tenant and per
    priority class, with SLO attainment (completed by the deadline) on
    top.  Thread-safe: wall-clock loops resolve handles from their own
    threads.
    """

    def __init__(self, quotas: Optional[Dict[str, Any]] = None) -> None:
        import threading

        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        for tenant, quota in (quotas or {}).items():
            if isinstance(quota, dict):
                rate, burst = quota["rate"], quota.get("burst", quota["rate"])
            else:
                rate, burst = quota
            self._buckets[tenant] = TokenBucket(rate, burst)
        self._tenants: Dict[str, Dict[str, Any]] = {}

    def admit(self, tenant: Optional[str], now: float) -> bool:
        """Token-bucket gate: False when the tenant's quota is exhausted at
        ``now`` (tenants without a configured quota always pass)."""
        if tenant is None:
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None:
            return True
        with self._lock:
            return bucket.try_take(now)

    def track(self, handle: RequestHandle) -> RequestHandle:
        """Register one handle for lifecycle accounting; returns it."""
        tenant = handle.tenant or "anonymous"
        with self._lock:
            gauges = self._tenants.setdefault(tenant, _blank_gauges())
            gauges["submitted"] += 1
            prio = handle.priority or "unclassified"
            per = gauges["per_priority"].setdefault(
                prio,
                {"submitted": 0, "completed": 0, "shed": 0, "expired": 0, "slo_met": 0},
            )
            per["submitted"] += 1
        handle.add_done_callback(self._on_done)
        return handle

    def _on_done(self, handle: RequestHandle) -> None:
        tenant = handle.tenant or "anonymous"
        exc = handle._future.exception(0)
        with self._lock:
            gauges = self._tenants.setdefault(tenant, _blank_gauges())
            prio = handle.priority or "unclassified"
            per = gauges["per_priority"].setdefault(
                prio,
                {"submitted": 0, "completed": 0, "shed": 0, "expired": 0, "slo_met": 0},
            )
            if exc is None:
                gauges["completed"] += 1
                per["completed"] += 1
                met = handle.deadline is None or (
                    handle.stats is not None
                    and handle.stats.completed_at <= handle.deadline
                )
                if met:
                    gauges["slo_met"] += 1
                    per["slo_met"] += 1
            elif isinstance(exc, QuotaExceeded):
                gauges["rejected"] += 1
            elif isinstance(exc, RequestShed):
                gauges["shed"] += 1
                per["shed"] += 1
            elif isinstance(exc, RequestExpired):
                gauges["expired"] += 1
                per["expired"] += 1
            elif isinstance(exc, RequestCancelled):
                gauges["cancelled"] += 1
            else:
                gauges["failed"] += 1

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant gauges; ``slo_attainment`` counts every non-cancelled
        submission against the SLO, so quota rejections and sheds are
        misses — the honest number under overload."""
        out: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            for tenant, gauges in sorted(self._tenants.items()):
                entry = {
                    k: (dict(v) if isinstance(v, dict) else v)
                    for k, v in gauges.items()
                }
                entry["per_priority"] = {
                    p: dict(c) for p, c in gauges["per_priority"].items()
                }
                finished = gauges["submitted"] - gauges["cancelled"]
                entry["slo_attainment"] = (
                    gauges["slo_met"] / finished if finished else 1.0
                )
                out[tenant] = entry
        return out


# -- topology registry ---------------------------------------------------------

TOPOLOGIES: Dict[str, Callable[..., "LoopTopology"]] = {}


def register_topology(name: str):
    """Register a topology class under ``name`` (decorator), mirroring the
    scheduler/flush-policy/placement registries."""

    def deco(cls):
        TOPOLOGIES[name] = cls
        cls.name = name
        return cls

    return deco


def make_topology(name: str, **kwargs: Any) -> "LoopTopology":
    try:
        factory = TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown loop topology {name!r}; "
            f"available: {', '.join(sorted(TOPOLOGIES))}"
        ) from None
    return factory(**kwargs)


def available_topologies() -> List[str]:
    return sorted(TOPOLOGIES)


class LoopTopology:
    """How a server's front door is sharded into serve loops.

    A topology is pure configuration until :meth:`build` materializes it
    against a server (``Server`` does this lazily at the first
    ``run()``/``run_trace()``); after that :attr:`loops` holds the
    server's loops and :meth:`route` maps an admitted request to its home
    loop (least backlog among the loops serving the endpoint, ties to the
    lowest loop index — deterministic).
    """

    name = "base"

    def __init__(self, steal_min: Optional[int] = 2) -> None:
        #: minimum sibling backlog before an idle loop steals (None: off)
        self.steal_min = steal_min
        self.loops: List[ServeLoop] = []

    # -- materialization -------------------------------------------------------
    def build(self, server: Any) -> List[ServeLoop]:
        raise NotImplementedError

    def _wire(self, loops: List[ServeLoop]) -> List[ServeLoop]:
        self.loops = loops
        if len(loops) > 1:
            for loop in loops:
                loop.peers = [lp for lp in loops if lp is not loop]
                loop.steal_min = self.steal_min
        return loops

    # -- routing ---------------------------------------------------------------
    def loops_for(self, name: str) -> List[ServeLoop]:
        """The loops serving endpoint ``name`` (topology order)."""
        return [lp for lp in self.loops if name in lp.sessions()]

    def route(
        self,
        name: str,
        backlog_of: Optional[Callable[[ServeLoop], int]] = None,
    ) -> ServeLoop:
        """Home loop for one request to endpoint ``name``: least backlog,
        ties to the lowest loop index.  ``backlog_of`` overrides the
        backlog metric (the trace driver counts its own dispatch queues)."""
        candidates = self.loops_for(name)
        if not candidates:
            raise KeyError(f"no loop serves endpoint {name!r}")
        if len(candidates) == 1:
            return candidates[0]
        if backlog_of is None:
            backlog_of = _wall_backlog
        return min(candidates, key=backlog_of)  # stable: ties keep order

    def __repr__(self) -> str:
        return f"{type(self).__name__}(loops={len(self.loops)})"


def _wall_backlog(loop: ServeLoop) -> int:
    return len(loop._queue) + sum(
        s.pending_requests for s in loop.sessions().values()
    )


@register_topology("single")
class SingleTopology(LoopTopology):
    """The historical one-loop front door (default): the server's own
    loop serves every endpoint over the whole device (group)."""

    def __init__(self, steal_min: Optional[int] = None) -> None:
        super().__init__(steal_min=steal_min)

    def build(self, server: Any) -> List[ServeLoop]:
        return self._wire([server.loop])


def _fresh_complement(server: Any, width: int) -> Any:
    """A fresh device (group) mirroring the server's members: same specs
    and schedule table, its *own* simulators — so loops running in their
    own threads never race a shared simulator's counters."""
    from ..devices.group import DeviceGroup
    from ..runtime.device import DeviceSimulator

    device = server.device
    members = list(device.devices) if hasattr(device, "devices") else [device]
    specs = [m.spec for m in members]
    if len(specs) != width:
        specs = [specs[0]] * width
    table = members[0].schedule_table or None
    quality = getattr(members[0], "default_schedule_quality", 0.9)
    if width == 1:
        return DeviceSimulator(
            spec=specs[0], schedule_table=table, default_schedule_quality=quality
        )
    interconnect = getattr(device, "interconnect", "pcie")
    return DeviceGroup(
        width,
        spec=specs,
        interconnect=interconnect,
        schedule_table=table,
        default_schedule_quality=quality,
    )


@register_topology("per_device")
class PerDeviceTopology(LoopTopology):
    """One loop per device-group member (or per ``members_per_loop``-sized
    slice): every endpoint is replicated into every loop over its slice,
    so N host lanes feed N device lanes in parallel — the sharded front
    door.  ``members_per_loop > 1`` keeps placement-sharded rounds inside
    each loop's sub-group (placement composes unchanged underneath)."""

    def __init__(
        self, members_per_loop: int = 1, steal_min: Optional[int] = 2
    ) -> None:
        super().__init__(steal_min=steal_min)
        if members_per_loop < 1:
            raise ValueError("members_per_loop must be a positive integer")
        self.members_per_loop = members_per_loop

    def build(self, server: Any) -> List[ServeLoop]:
        from ..devices.group import DeviceGroup

        group = server.device
        n = getattr(group, "num_devices", 1)
        k = self.members_per_loop
        if n % k:
            raise ValueError(
                f"per_device topology cannot slice {n} devices into loops of "
                f"{k} members (must divide evenly)"
            )
        n_loops = n // k
        if n_loops == 1:
            complements: List[Any] = [group]
        else:
            members = group.devices
            complements = []
            for j in range(n_loops):
                piece = members[j * k : (j + 1) * k]
                # adopt the members unmutated; the sub-group keeps the
                # parent's interconnect pricing.  Single members are wrapped
                # too: group addressing is positional, so a member adopted
                # from slot j of the parent serves as device 0 of its loop.
                complements.append(
                    DeviceGroup(piece, interconnect=group.interconnect)
                )
        return self._wire(_loops_over_complements(server, complements))


def _loops_over_complements(server: Any, complements: List[Any]) -> List[ServeLoop]:
    """Replicate every endpoint across ``complements`` and build one loop
    per complement owning that slice's replicas."""
    for ep in server._endpoints.values():
        ep._build_replicas(complements, clock=server.clock)
    template = server.loop
    loops = []
    for j in range(len(complements)):
        loops.append(
            ServeLoop(
                sessions={
                    name: ep.replicas[j] for name, ep in server._endpoints.items()
                },
                clock=server.clock,
                max_pending=template.max_pending,
                backpressure=template.backpressure,
                prepare=template.prepare,
                name=f"loop{j}",
            )
        )
    return loops


@register_topology("per_endpoint")
class PerEndpointTopology(LoopTopology):
    """One loop per endpoint, each over its own fresh device complement
    (``devices_per_loop`` wide, default: mirror the server's group).  The
    hard isolation topology: endpoints never contend for a loop or a
    simulator, at the cost of static device partitioning.  Loops share no
    endpoints, so work-stealing is structurally off."""

    def __init__(
        self,
        devices_per_loop: Optional[int] = None,
        steal_min: Optional[int] = None,
    ) -> None:
        super().__init__(steal_min=steal_min)
        self.devices_per_loop = devices_per_loop

    def build(self, server: Any) -> List[ServeLoop]:
        width = self.devices_per_loop or server.num_devices
        template = server.loop
        loops = []
        for j, (name, ep) in enumerate(sorted(server._endpoints.items())):
            complement = _fresh_complement(server, width)
            ep._build_replicas([complement], clock=server.clock)
            loops.append(
                ServeLoop(
                    sessions={name: ep.replicas[0]},
                    clock=server.clock,
                    max_pending=template.max_pending,
                    backpressure=template.backpressure,
                    prepare=template.prepare,
                    name=f"loop{j}",
                )
            )
        return self._wire(loops)


class TopologyRun:
    """Context manager returned by ``Server.run()`` on a multi-loop
    topology: exiting drains and shuts every loop down."""

    def __init__(self, server: Any) -> None:
        self._server = server

    def __enter__(self) -> "TopologyRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._server.shutdown()


# -- the deterministic multi-loop trace driver ---------------------------------


class _LoopState:
    """One loop's simulated-mode machinery: its sessions, device timeline,
    host lane, and the host-gated dispatch queue."""

    __slots__ = ("loop", "index", "sessions", "timeline", "host", "queue")

    def __init__(self, loop: ServeLoop, index: int, start: float) -> None:
        self.loop = loop
        self.index = index
        self.sessions: Dict[str, Any] = loop.sessions()
        lanes = 1
        for session in self.sessions.values():
            lanes = max(lanes, getattr(session.engine, "num_devices", 1))
        self.timeline = DeviceTimeline(start=start, num_devices=lanes)
        self.host = HostLane(start)
        #: admissions waiting for the host lane to free before dispatch
        self.queue: Deque[_Admission] = deque()

    def backlog(self) -> int:
        return len(self.queue) + sum(
            s.pending_requests for s in self.sessions.values()
        )

    def idle(self, now: float) -> bool:
        """Fully quiescent: nothing queued, pending, in flight, and the
        host lane free — the only state in which this loop may steal."""
        return (
            not self.queue
            and self.host.busy_until <= now
            and self.timeline.in_flight(now) == 0
            and all(not s.pending_requests for s in self.sessions.values())
        )


def _unpack(item: Tuple) -> Tuple[float, str, Any, Dict[str, Any]]:
    if len(item) == 3:
        t, name, instance = item
        return float(t), name, instance, {}
    t, name, instance, meta = item
    if meta is None:
        meta = {}
    elif not isinstance(meta, dict):
        # dataclass-style tags (e.g. traffic.TaggedArrival leftovers)
        meta = {
            k: getattr(meta, k)
            for k in ("tenant", "priority", "deadline", "loop")
            if getattr(meta, k, None) is not None
        }
    return float(t), name, instance, meta


def run_topology_trace(
    server: Any,
    workload: Iterable[Tuple],
    *,
    deterministic: bool = True,
    host_model: Optional[Tuple[float, float]] = None,
    prepare: Optional[bool] = None,
) -> Dict[str, List[RequestHandle]]:
    """Deterministically replay a tagged open-loop trace against *all* of a
    server's loops, interleaving their events in global timestamp order.

    ``workload`` yields ``(arrival_time, endpoint, request)`` or
    ``(arrival_time, endpoint, request, meta)`` sorted by arrival time,
    where ``meta`` optionally carries ``tenant``/``priority``/``deadline``
    (absolute clock timestamp) and — for tests — ``loop`` (an explicit
    home-loop index overriding the router).

    Per arrival: quota gate (:class:`AdmissionController`) → router (least
    backlog) → per-loop backpressure (``reject``/``shed-oldest``/
    ``shed-slack`` resolve the victim's handle; ``block`` is inert in a
    deterministic trace) → the loop's host-gated dispatch queue.  A
    dispatch submits into the loop's session (flushes charge the loop's
    :class:`~repro.serve.loop.HostLane`, not the shared clock, so sibling
    loops' host work overlaps); device shares land on each loop's own
    :class:`~repro.serve.loop.DeviceTimeline`.  Work-stealing runs at
    deterministic points: after intake at a timestamp quiesces and during
    the drain phase, a fully idle loop takes the newest half of the most
    backlogged sibling's backlog (dispatch queue tail first, then the
    pending round tail via :meth:`InferenceSession.withdraw`).

    Returns every admitted request's handle per endpoint, in arrival order
    — including handles resolved exceptionally (quota-rejected, shed,
    expired); filter with ``handle.failed``.  The same trace replays
    bit-for-bit: the timeline is a pure function of the trace and the
    device cost model.
    """
    clock = server.clock
    if not isinstance(clock, SimulatedClock):
        raise TypeError("run_topology_trace needs a SimulatedClock")
    topology = server.topology
    loops = topology.loops
    if not loops:
        raise RuntimeError("topology not materialized; call through Server.run_trace")
    for loop in loops:
        if loop.running:
            raise RuntimeError(
                "run_topology_trace needs exclusive ownership; a loop thread "
                "is running"
            )
    admission: AdmissionController = server.admission
    items = sorted(workload, key=lambda item: item[0])
    start = clock.now()
    states = [_LoopState(loop, i, start) for i, loop in enumerate(loops)]
    by_loop = {st.loop: st for st in states}
    all_sessions: List[Any] = []
    for st in states:
        all_sessions.extend(st.sessions.values())
    prep_active = [
        (st.loop.prepare if prepare is None else bool(prepare)) for st in states
    ]
    handles: Dict[str, List[RequestHandle]] = {}

    # -- helpers (close over clock/states) ------------------------------------

    def dispatch_queue(state: _LoopState) -> None:
        """Dispatch queued admissions while the loop's host lane is free
        (a dispatched submit that flushes re-busies the lane and stops the
        drain — later arrivals wait for the next dispatch event)."""
        now = clock.now()
        while state.queue and state.host.busy_until <= now:
            adm = state.queue.popleft()
            handle = adm.handle
            if handle.done:
                continue  # resolved while queued (shed/steal race)
            if adm.deadline is not None and now > adm.deadline:
                state.loop.num_expired += 1
                handle._fail(
                    RequestExpired(
                        f"deadline {adm.deadline!r} passed while the request "
                        "was queued for admission"
                    )
                )
                continue
            session = state.sessions[adm.name]
            handle._managed = False  # session-owned from here
            try:
                session.submit(adm.instance, at=adm.at, handle=handle)
            except BaseException as exc:
                if not handle.done:
                    handle._fail(exc)

    def shed_for_capacity(state: _LoopState, incoming: RequestHandle) -> bool:
        """Enforce ``max_pending`` over the loop's whole backlog (queued +
        pending round) with the loop's overflow policy.  Returns False when
        the *incoming* request was the victim (already resolved)."""
        loop = state.loop
        if loop.max_pending is None or loop.backpressure == "block":
            return True
        now = clock.now()
        while state.backlog() >= loop.max_pending:
            if loop.backpressure == "reject":
                loop.num_rejected += 1
                incoming._fail(
                    BackpressureFull(
                        f"admission queue full ({loop.max_pending} pending)"
                    )
                )
                return False
            # enumerate the backlog oldest-first: pending round first (its
            # arrivals predate anything still queued), then the queue
            pending: List[Tuple[RequestHandle, Optional[str]]] = []
            for name, session in sorted(state.sessions.items()):
                for h in session.pending_handles:
                    pending.append((h, name))
            queued = [(adm.handle, None) for adm in state.queue]
            candidates = pending + queued
            if loop.backpressure == "shed-oldest":
                victim = min(
                    range(len(candidates)),
                    key=lambda i: (candidates[i][0].submitted_at, i),
                )
                reason = (
                    "request shed by backpressure: a newer arrival displaced "
                    f"it from the full admission queue "
                    f"(max_pending={loop.max_pending})"
                )
            else:  # shed-slack
                pool = [h for h, _ in candidates]
                pool.append(incoming)
                victim = select_shed_victim(pool, now)
                reason = (
                    "request shed by SLO-aware backpressure: it had the "
                    "lowest priority and the most deadline slack when the "
                    f"admission queue overflowed (max_pending={loop.max_pending})"
                )
                if victim == len(pool) - 1:
                    loop.num_shed += 1
                    incoming._fail(RequestShed(reason))
                    return False
            handle, name = candidates[victim]
            if name is not None:
                state.sessions[name].withdraw(handle)
            else:
                for adm in state.queue:
                    if adm.handle is handle:
                        state.queue.remove(adm)
                        break
            loop.num_shed += 1
            handle._fail(RequestShed(reason))
        return True

    def admit(t: float, name: str, instance: Any, meta: Dict[str, Any]) -> RequestHandle:
        tenant = meta.get("tenant")
        priority = meta.get("priority")
        if priority is not None:
            priority = resolve_priority(priority)
        deadline = meta.get("deadline")
        handle = RequestHandle(
            -1, submitted_at=t, tenant=tenant, priority=priority, deadline=deadline
        )
        handle._managed = True
        admission.track(handle)
        if not admission.admit(tenant, t):
            handle._fail(
                QuotaExceeded(
                    f"tenant {tenant!r} over its admission quota at t={t:.6f}"
                )
            )
            return handle
        pinned = meta.get("loop")
        if pinned is not None:
            state = states[pinned]
            if name not in state.sessions:
                raise KeyError(f"loop {pinned} does not serve endpoint {name!r}")
        else:
            state = by_loop[
                topology.route(name, backlog_of=lambda lp: by_loop[lp].backlog())
            ]
        if deadline is not None and t > deadline:
            state.loop.num_expired += 1
            handle._fail(
                RequestExpired(f"deadline {deadline!r} already passed at submit")
            )
            return handle
        if not shed_for_capacity(state, handle):
            return handle
        state.queue.append(_Admission(name, instance, t, handle, deadline))
        state.loop.num_admitted += 1
        dispatch_queue(state)
        return handle

    def next_event() -> Optional[Tuple[float, int, int]]:
        """Earliest pending wakeup across all loops: ``(time, kind,
        loop_index)`` with kind 0 = device completion, 1 = flush deadline,
        2 = host-gated dispatch.  Times are *effective*: a busy host lane
        delays its loop's events until it frees, which is exactly how the
        sharded front door overlaps host work across loops.  Completions
        win ties (device-idle launch before a same-instant deadline),
        matching the single-loop driver."""
        best: Optional[Tuple[float, int, int]] = None
        for st in states:
            free = st.host.busy_until
            completion = st.timeline.next_completion()
            if completion is not None:
                ev = (max(completion, free), 0, st.index)
                if best is None or ev < best:
                    best = ev
            deadline = st.loop.next_deadline()
            if deadline is not None:
                ev = (max(deadline, free), 1, st.index)
                if best is None or ev < best:
                    best = ev
            if st.queue:
                ev = (max(st.queue[0].at, free), 2, st.index)
                if best is None or ev < best:
                    best = ev
        return best

    def maybe_prepare(state: _LoopState) -> None:
        if not prep_active[state.index]:
            return
        now = clock.now()
        try:
            for session in state.sessions.values():
                session.consider_prepare(now)
        except BaseException as exc:
            raise state.loop._die(exc) from exc

    def fire_event(event: Tuple[float, int, int]) -> None:
        when, kind, index = event
        state = states[index]
        clock.advance_to(when)
        if kind == 0:
            state.timeline.pop_completions(clock.now())
            for session in state.sessions.values():
                if state.timeline.in_flight(clock.now()) != 0:
                    break
                if session.pending_requests and session.policy.on_idle(
                    session, clock.now()
                ):
                    session.flush(reason=session.policy.name)
        elif kind == 1:
            for session in state.sessions.values():
                session.poll()
        else:
            dispatch_queue(state)
        maybe_prepare(state)

    def advance_until(t: float) -> None:
        while True:
            event = next_event()
            if event is None or event[0] > t:
                return
            fire_event(event)

    def steal_pass() -> int:
        """Deterministic cross-loop work-stealing: every fully idle loop
        (lowest index first) takes the newest half of the most backlogged
        sibling's stealable backlog — dispatch-queue tail first, then the
        victim's largest shared pending round's tail (via ``withdraw``).
        Runs until no steal fires; returns the total stolen."""
        total = 0
        now = clock.now()
        changed = True
        while changed:
            changed = False
            for thief in states:
                floor = thief.loop.steal_min
                if floor is None or not thief.loop.peers or not thief.idle(now):
                    continue
                floor = max(1, int(floor))
                shared = set(thief.sessions)
                best: Optional[_LoopState] = None
                best_count = floor - 1
                for victim in states:
                    if victim is thief:
                        continue
                    count = sum(
                        1 for adm in victim.queue if adm.name in shared
                    ) + sum(
                        victim.sessions[n].pending_requests
                        for n in victim.sessions
                        if n in shared
                    )
                    if count > best_count:
                        best, best_count = victim, count
                if best is None:
                    continue
                stolen = _steal_from(best, thief, shared, best_count // 2 or 1)
                if stolen:
                    total += stolen
                    changed = True
        return total

    def _steal_from(
        victim: _LoopState, thief: _LoopState, shared: set, want: int
    ) -> int:
        """Move up to ``want`` of the victim's newest stealable requests to
        the thief and dispatch them there."""
        moved: List[_Admission] = []
        # newest first: the dispatch queue's tail is the newest backlog
        for adm in reversed(list(victim.queue)):
            if len(moved) >= want:
                break
            if adm.name in shared and not adm.handle.done:
                victim.queue.remove(adm)
                moved.append(adm)
        shared_names = [n for n in victim.sessions if n in shared]
        if len(moved) < want and shared_names:
            # then the tail of the most loaded shared pending round
            name = max(
                shared_names,
                key=lambda n: (victim.sessions[n].pending_requests, n),
            )
            session = victim.sessions[name]
            while len(moved) < want and session.pending_requests:
                handle = session.pending_handles[-1]
                out = session.withdraw(handle)
                if out is None:
                    break
                instance, at = out
                moved.append(_Admission(name, instance, at, handle, handle.deadline))
        if not moved:
            return 0
        victim.loop.num_stolen_out += len(moved)
        thief.loop.num_stolen_in += len(moved)
        # resubmit oldest-first: the thief is idle, so its sessions accept
        # the stolen arrivals' original (monotonic) timestamps
        for adm in sorted(moved, key=lambda a: a.at):
            adm.handle._managed = True
            thief.queue.append(adm)
        dispatch_queue(thief)
        return len(moved)

    # -- the drive -------------------------------------------------------------

    saved_lanes = [(s, s.host_lane) for s in all_sessions]
    try:
        with replay_state(
            all_sessions, deterministic=deterministic, host_model=host_model
        ):
            for st in states:
                for session in st.sessions.values():
                    session.timeline = st.timeline
                    session.host_lane = st.host
            last = len(items) - 1
            for i, item in enumerate(items):
                t, name, instance, meta = _unpack(item)
                advance_until(t)
                clock.advance_to(t)
                handles.setdefault(name, []).append(admit(t, name, instance, meta))
                if i == last or items[i + 1][0] > t:
                    # intake at this timestamp quiesced: deterministic
                    # steal + speculation point
                    steal_pass()
                    for st in states:
                        maybe_prepare(st)
            # drain: fire remaining events until every backlog resolves
            while any(st.backlog() for st in states):
                steal_pass()
                event = next_event()
                if event is None:
                    # only manual-style policies leave a deadline-less
                    # backlog with an empty dispatch queue: force-flush
                    for st in states:
                        for session in st.sessions.values():
                            if session.pending_requests:
                                session.flush()
                else:
                    fire_event(event)
            horizon = clock.now()
            for st in states:
                horizon = max(horizon, st.timeline.busy_until, st.host.busy_until)
            clock.advance_to(horizon)
            for st in states:
                st.timeline.pop_completions(clock.now())
    finally:
        for session, lane in saved_lanes:
            session.host_lane = lane
    return handles
