"""The wall-clock half of the overlapped host pipeline.

:class:`RoundPreparer` owns a worker thread that builds the next round's
schedule, placement and memory plan (via
:meth:`~repro.serve.session.InferenceSession.consider_prepare`) while the
:class:`~repro.serve.loop.ServeLoop` thread sleeps waiting for arrivals or
deadlines — the only window in which host time is genuinely spare.

Sessions are lock-free by design (the loop is their single owner), so the
preparer never runs concurrently with the loop's own session mutations.
The handshake is explicit and owned by the loop thread:

* :meth:`allow` — called by the loop immediately before it blocks in its
  condition wait: grants the worker exactly one prepare pass over the
  loop's sessions.
* :meth:`pause` — called immediately after the wait returns, before the
  loop touches any session: revokes the grant and blocks until the worker
  is idle again (a pass in flight finishes; one not yet started never
  starts).
* :meth:`reraise` — called at the top of every loop iteration: re-raises a
  worker crash *on the loop thread*, inside its own try block, so a
  preparer failure takes the same path as any other loop death (sessions
  aborted, queued handles failed, ``LoopStopped`` with ``__cause__``).

In simulated mode (:meth:`~repro.serve.loop.ServeLoop.run_trace`) no
thread exists: the loop calls ``consider_prepare`` itself at deterministic
event-loop points, so speculation resolves identically across replays.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .loop import ServeLoop


class RoundPreparer:
    """Background host-pipeline worker bound to one :class:`ServeLoop`.

    The thread starts immediately and idles until the loop grants it a
    pass; it dies on :meth:`stop` (loop shutdown) or on its first error
    (which :meth:`reraise` then surfaces on the loop thread).
    """

    def __init__(self, loop: "ServeLoop") -> None:
        self._loop = loop
        self._cv = threading.Condition()
        self._allowed = False
        self._busy = False
        self._stop = False
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-round-preparer", daemon=True
        )
        self._thread.start()

    # -- loop-thread API -------------------------------------------------------
    def allow(self) -> None:
        """Grant one prepare pass (the loop is about to sleep)."""
        with self._cv:
            if self._stop or self._error is not None:
                return
            self._allowed = True
            self._cv.notify_all()

    def pause(self) -> None:
        """Revoke the grant and wait until the worker is idle.

        Never deadlocks on a dead worker: the wait re-checks thread
        liveness, so a crashed preparer leaves ``pause`` immediately (the
        crash itself surfaces via :meth:`reraise`).
        """
        with self._cv:
            self._allowed = False
            while self._busy and self._error is None and self._thread.is_alive():
                self._cv.wait(timeout=0.05)

    def reraise(self) -> None:
        """Re-raise a stored worker crash on the calling (loop) thread."""
        with self._cv:
            exc = self._error
        if exc is not None:
            raise exc

    def stop(self) -> None:
        """Stop and join the worker (loop shutdown/death)."""
        with self._cv:
            self._stop = True
            self._allowed = False
            self._cv.notify_all()
        self._thread.join(timeout=1.0)

    # -- worker ----------------------------------------------------------------
    def _run(self) -> None:
        try:
            while True:
                with self._cv:
                    while not self._allowed and not self._stop:
                        self._cv.wait()
                    if self._stop:
                        return
                    # one-shot grant: exactly one pass per allow(), so a
                    # long loop sleep never turns into a busy spin
                    self._allowed = False
                    self._busy = True
                try:
                    now = self._loop.clock.now()
                    for session in self._loop.sessions().values():
                        session.consider_prepare(now)
                finally:
                    with self._cv:
                        self._busy = False
                        self._cv.notify_all()
        except BaseException as exc:
            with self._cv:
                self._error = exc
                self._busy = False
                self._cv.notify_all()
            # wake the loop even if it sleeps with no deadline: the crash
            # must surface via reraise() now, not at the next arrival
            with self._loop._cond:
                self._loop._cond.notify_all()
