"""Policy-driven cross-request batching sessions.

Classic ``run(instances)`` batches only within one mini-batch: every call
builds a runtime, executes, and throws everything away.  A serving system
instead sees single requests arriving independently and wants to batch
*across* them (Zha et al. 2019, JIT dynamic batching).
:class:`InferenceSession` is that path: requests enter via :meth:`submit`
and return a future-style :class:`~repro.serve.request.RequestHandle`;
their DFG nodes accumulate in the session's persistent runtime, and a
:class:`~repro.serve.policy.FlushPolicy` decides when the backlog executes
as one batched round — so N submitted requests cost far fewer kernel
launches than N eager runs.

Two accumulation modes, chosen automatically from the program:

* programs without tensor-dependent control flow run their unbatched code at
  :meth:`submit` time, recording lazy DFG nodes immediately (true
  cross-request DFG accumulation);
* programs with tensor-dependent control flow cannot run ahead of
  synchronization points, so the session defers them: instances queue up and
  :meth:`flush` executes all of them as one fiber-interleaved batch.

Either way the flushed results are numerically identical to one
``run(instances)`` over the same requests.

Flushing is driven three ways: explicitly (:meth:`flush`), by the policy at
submit time (e.g. ``size(n)`` reached), or by deadline polling
(:meth:`poll`, for ``deadline``/``adaptive`` policies whose flush point is
a clock timestamp rather than a submit event).  All timing runs on the
session's pluggable :class:`~repro.serve.clock.Clock`, so tests and the
open-loop traffic benchmark use a simulated clock.

Under a :class:`~repro.serve.loop.ServeLoop` the session additionally
carries a :class:`~repro.serve.loop.DeviceTimeline`: instead of blocking
the clock for a round's device time, :meth:`flush` *launches* the round
onto the timeline (completion = the device's busy horizon plus the round's
device time) and only the host-side share serializes with intake — the
continuous-batching overlap where round ``k+1`` accumulates while round
``k`` executes.  Rounds still in flight are visible as
:attr:`in_flight_rounds` to the adaptive policy's waiting-cost model.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from ..runtime.executor import RunStats
from ..runtime.tensor import materialize_value
from .clock import Clock, WallClock
from .policy import FlushPolicy, ManualPolicy, SizePolicy, make_flush_policy
from .request import RequestCancelled, RequestHandle, RequestStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import ExecutionEngine


class RoundAborted(RuntimeError):
    """Resolves the *other* handles of a batching round whose build or
    execution raised: their requests were innocent, but the round's shared
    lazy graph (or its execution) is unrecoverable, so they fail together
    with the original error as ``__cause__``."""


class InferenceSession:
    """Persistent session batching independently submitted requests.

    Parameters
    ----------
    engine:
        The execution engine the session batches through.
    max_batch:
        Deprecated sugar for ``policy="size", policy_args={"n": max_batch}``
        (kept for backward compatibility; prefer the ``policy`` argument).
    policy:
        Flush policy: a registry name (``"manual"``, ``"size"``,
        ``"deadline"``, ``"adaptive"``), or an already constructed
        :class:`~repro.serve.policy.FlushPolicy` instance (which must not be
        shared across sessions).  Defaults to manual flushing.
    policy_args:
        Keyword arguments for the policy factory when ``policy`` is a name
        (e.g. ``{"ms": 5.0}`` for ``"deadline"``).
    clock:
        Time source for deadlines and per-request statistics; defaults to
        the wall clock.  Pass a
        :class:`~repro.serve.clock.SimulatedClock` for reproducible
        deadline semantics.
    """

    def __init__(
        self,
        engine: "ExecutionEngine",
        max_batch: Optional[int] = None,
        *,
        policy: Any = None,
        policy_args: Optional[Dict[str, Any]] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.engine = engine
        self.clock = clock or WallClock()
        if max_batch is not None:
            if max_batch < 1:
                raise ValueError("max_batch must be a positive integer")
            if policy is not None:
                raise ValueError(
                    "max_batch is sugar for the 'size' flush policy and cannot "
                    "be combined with an explicit policy; pass one or the other"
                )
        if policy is None:
            if max_batch is not None:
                policy = SizePolicy(max_batch)
            else:
                policy = ManualPolicy()
        elif isinstance(policy, str):
            policy = make_flush_policy(policy, **(policy_args or {}))
        elif isinstance(policy, FlushPolicy):
            if policy_args:
                raise ValueError(
                    "policy_args only apply when policy is given by name"
                )
        else:
            raise TypeError(
                f"policy must be a registry name or FlushPolicy, "
                f"got {type(policy).__name__}"
            )
        self.policy: FlushPolicy = policy
        # serving sessions flush structurally similar rounds over and over —
        # exactly the workload the memory planner's plan cache pays off for
        # — so arm it here; one-shot runs leave it dormant and pay zero
        # fingerprinting overhead.  Both arms are idempotent: Server.run()
        # restarts re-create sessions over the same engine freely.
        engine.runtime.planner.expect_repeats()
        # the kernel-specialization tier piggybacks on the same repetition:
        # recurring (block, batch size, operand layout, device) fingerprints
        # promote to frozen dispatch paths (see repro.specialize)
        engine.runtime.arm_specialization()
        self._deferred = engine.program.uses_fibers
        self._pending: List[Tuple[RequestHandle, Any]] = []
        #: original submitted instances, parallel to ``_pending`` in
        #: DFG-accumulation mode (the tuple there holds the *lazy output*,
        #: not the input) — what :meth:`withdraw` hands a stealing loop so
        #: the request can be rebuilt in a sibling session.  Deferred mode
        #: already keeps instances in ``_pending`` itself.
        self._pending_instances: List[Any] = []
        #: cumulative node counts at request boundaries (DFG-accumulation
        #: mode): ``_node_offsets[i]`` is the runtime's node count right
        #: after pending request ``i`` recorded its DFG, so a capped flush
        #: of the oldest ``k`` requests executes exactly the node prefix
        #: ``[:_node_offsets[k-1]]`` — requests are independent, so the
        #: request prefix is a node prefix
        self._node_offsets: List[int] = []
        #: monotonically increasing instance id for node tagging: a capped
        #: flush leaves the overflow pending, so per-submit indices cannot
        #: restart at ``len(_pending)`` without colliding with leftover
        #: requests' ids (resets only when the backlog fully drains)
        self._instance_seq = 0
        self._entry = None
        self._build_s = 0.0
        self._round_started_at: Optional[float] = None
        self._last_submit_backdated = False
        self._last_arrival: Optional[float] = None
        #: lifetime arrival-gap forecast state: running mean of *positive*
        #: inter-arrival gaps (bursty traces submit whole bursts at one
        #: timestamp; the zero intra-burst gaps would collapse a plain mean,
        #: while the positive-gap mean approximates the gap to the *next*
        #: batch of work — which is what flush prediction needs)
        self._prev_arrival: Optional[float] = None
        self._gap_sum = 0.0
        self._gap_count = 0
        #: the speculatively prepared next round (see :meth:`consider_prepare`)
        self._prepared = None
        self._prepared_at: Optional[float] = None
        #: fraction of the modelled host cost (``host_cost_model``) treated
        #: as preparable ahead of the flush in deterministic replays: the
        #: prepare pipeline covers scheduling + placement + planning but not
        #: result materialization or the CPU-side API calls
        self.prepare_share = 0.6
        #: overlap-pipeline accounting (lifetime)
        self.prepare_attempts = 0
        self.speculation_hits = 0
        self.speculation_aborts = 0
        self.prepare_hidden_ms = 0.0
        #: device timeline for continuous batching (set by a
        #: :class:`~repro.serve.loop.ServeLoop`): when present, flushed
        #: rounds launch asynchronously — completion lands on the timeline
        #: instead of blocking the clock for the round's device time
        self.timeline = None
        #: per-loop host lane (set by the multi-loop trace driver, see
        #: :mod:`repro.serve.topology`): when present, a flush serializes
        #: its host share against *this loop only* — the lane's
        #: ``busy_until`` advances instead of the shared clock, so sibling
        #: loops' host work proceeds in parallel (the whole point of the
        #: sharded front door)
        self.host_lane = None
        #: charge measured host wall time to the clock at each flush (the
        #: default).  Deterministic replays switch this off so the simulated
        #: timeline depends only on simulated device quantities and the
        #: same trace reproduces bit-for-bit across runs/hosts.
        self.charge_host = True
        #: deterministic stand-in for the measured host share when
        #: ``charge_host`` is off: ``(per_round_ms, per_request_ms)`` —
        #: a flush of B requests charges ``per_round + B * per_request``
        #: milliseconds of modelled host time.  None charges only the
        #: simulated CPU-side API time.  Replay drivers set this so
        #: deterministic experiments still exhibit host-blocked intake.
        self.host_cost_model: Optional[Tuple[float, float]] = None
        #: statistics of the most recent flush
        self.last_stats: Optional[RunStats] = None
        #: statistics of recent flushes (bounded — long-lived sessions use
        #: the running totals below for lifetime aggregates)
        self.history: Deque[RunStats] = deque(maxlen=1024)
        self.num_requests = 0
        self.num_flushes = 0
        #: requests withdrawn by :meth:`cancel` before their round formed
        self.num_cancelled = 0
        #: generation-layer SLO aggregates (time-to-first-step, inter-step
        #: gaps), attached by :class:`repro.generate.GenerationSession` when
        #: this session drives decode traffic; surfaced in
        #: ``Endpoint.summary()``
        self.generation_metrics = None
        #: requests executed across all flushes (mean batch size =
        #: ``requests_flushed / num_flushes``)
        self.requests_flushed = 0
        #: kernel launches (batched + gather) across all flushes
        self.total_kernel_calls = 0
        #: simulated device time across all flushes (ms)
        self.total_device_ms = 0.0

    # -- introspection ---------------------------------------------------------
    @property
    def max_batch(self) -> Optional[int]:
        """Size threshold when running a ``size`` policy (compatibility)."""
        return self.policy.n if isinstance(self.policy, SizePolicy) else None

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    @property
    def round_started_at(self) -> Optional[float]:
        """Arrival timestamp of the oldest pending request (None when the
        session is empty); the anchor for deadline policies."""
        return self._round_started_at

    @property
    def last_submit_backdated(self) -> bool:
        """Whether the most recent submit carried an explicit arrival
        timestamp behind the clock — i.e. the request queued while the
        session was busy (open-loop backlog).  Adaptive policies treat such
        submits as free to batch."""
        return self._last_submit_backdated

    @property
    def in_flight_rounds(self) -> int:
        """Rounds launched but not yet complete on the session's device
        timeline (always 0 outside a continuous-batching loop).  While
        rounds are in flight, waiting costs pending requests nothing —
        the device is busy anyway — which the adaptive policy exploits."""
        if self.timeline is None:
            return 0
        return self.timeline.in_flight(self.clock.now())

    @property
    def expected_gap_s(self) -> Optional[float]:
        """Forecast of the gap until the next arrival (seconds): the
        lifetime mean of positive inter-arrival gaps, or None before the
        first positive gap has been observed.  Deterministic — a pure
        function of the submitted arrival timestamps."""
        if not self._gap_count:
            return None
        return self._gap_sum / self._gap_count

    @property
    def has_prepared_round(self) -> bool:
        """Whether a speculatively prepared round is currently held."""
        return self._prepared is not None

    def next_deadline(self) -> Optional[float]:
        """Clock timestamp by which the pending round must flush, or None
        (no pending requests, or the policy imposes no deadline).

        SLO-aware clamp: when pending requests carry a priority class *and*
        a deadline, the round must flush by the earliest such deadline even
        if the policy would wait longer — a batching round never outwaits
        the SLO of a request riding in it.  Requests without a priority
        class keep the pre-SLO semantics (their ``deadline=`` only expires
        them while queued), and ``manual`` policies opt out entirely.
        """
        if not self._pending:
            return None
        deadline = self.policy.next_deadline(self)
        if getattr(self.policy, "slo_deadline_clamp", True):
            slo = self.earliest_request_deadline
            if slo is not None:
                deadline = slo if deadline is None else min(deadline, slo)
        return deadline

    @property
    def earliest_request_deadline(self) -> Optional[float]:
        """Earliest SLO deadline among pending priority-classed requests."""
        slo: Optional[float] = None
        for h, _ in self._pending:
            if h.priority is not None and h.deadline is not None:
                if slo is None or h.deadline < slo:
                    slo = h.deadline
        return slo

    # -- request intake --------------------------------------------------------
    def submit(
        self,
        instance: Any,
        at: Optional[float] = None,
        *,
        handle: Optional[RequestHandle] = None,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> RequestHandle:
        """Accept one request; returns a handle resolved at the next flush.

        ``at`` overrides the request's arrival timestamp (open-loop traffic
        drivers pass the scheduled arrival time, which may lie behind the
        clock when the session was busy executing); it defaults to
        ``clock.now()``.  Arrival timestamps must be non-decreasing within
        a batching round: an explicit ``at`` earlier than an earlier
        pending request's arrival would silently corrupt ``queue_ms``, the
        round's deadline anchor and the adaptive policy's backlog
        detection, so it is rejected.  A flush resets the tracker, so
        replaying a fresh trace (timestamps starting over) on a long-lived
        session stays legal.

        ``handle`` lets a :class:`~repro.serve.loop.ServeLoop` pass in the
        handle it already returned to the producer at admission time; by
        default a fresh one is created.

        For programs without tensor-dependent control flow the request's
        unbatched program runs now, recording its DFG nodes into the shared
        lazy graph; execution is still deferred to the flush.
        """
        if at is None:
            now = self.clock.now()
            self._last_submit_backdated = False
        else:
            if self._last_arrival is not None and at < self._last_arrival:
                raise ValueError(
                    f"non-monotonic arrival timestamp: at={at!r} lies before "
                    f"the round's previous arrival ({self._last_arrival!r}); "
                    "arrival timestamps must never decrease within a round "
                    "(backdating behind the clock is fine, backdating behind "
                    "an earlier pending request corrupts queue_ms and "
                    "backlog detection)"
                )
            now = at
            self._last_submit_backdated = self.clock.now() > now
        self._last_arrival = now
        prev = self._prev_arrival
        if prev is not None and now > prev:
            # positive gaps only: intra-burst arrivals share a timestamp and
            # a fresh trace may restart its timestamps — neither should
            # drag the forecast toward zero
            self._gap_sum += now - prev
            self._gap_count += 1
        self._prev_arrival = now
        if handle is None:
            handle = RequestHandle(
                self._instance_seq,
                submitted_at=now,
                tenant=tenant,
                priority=priority,
                deadline=deadline,
            )
        else:
            # loop-admitted (or stolen) handles already carry their SLO
            # metadata; only the round position and arrival stamp move
            handle.index = self._instance_seq
            handle.submitted_at = now
        handle._origin = self
        self._instance_seq += 1
        if self._deferred:
            self._pending.append((handle, instance))
        else:
            entry = self._ensure_round()
            rt = self.engine.runtime
            build_start = time.perf_counter()
            rt.current_instance = handle.index
            try:
                raw = entry(instance)
            except BaseException as exc:
                # the shared lazy graph now holds this request's partial
                # nodes: the round is unrecoverable.  Abort it (failing the
                # innocent pending handles with RoundAborted) and re-raise
                # for the caller — under a ServeLoop only this request's
                # handle fails with the original error, and the loop (and
                # every other endpoint) keeps serving.
                self._abort_round(exc)
                raise
            self._build_s += time.perf_counter() - build_start
            self._pending.append((handle, raw))
            self._pending_instances.append(instance)
            self._node_offsets.append(rt.pending_count)
        self.num_requests += 1
        if self._round_started_at is None:
            self._round_started_at = now
        if self.policy.on_submit(self, now):
            self.flush(reason=self.policy.name)
        return handle

    # -- overlapped host pipeline ----------------------------------------------
    def consider_prepare(self, now: float) -> bool:
        """Speculatively prepare the pending round if the flush policy
        predicts it will flush with its current composition.

        Called by serving loops at moments when host time is available
        ahead of the predicted flush (after intake quiesces, while the
        previous round's device share is in flight).  A held prepared
        round that still matches the pending nodes is kept; a stale one is
        abandoned (and, when the policy still predicts, rebuilt against the
        current composition — the "patch" path).  Returns True when a
        prepared round is held on exit.

        Mis-speculation is free by construction: the prepared round defers
        every planner/placement side effect until the flush adopts it, so
        abandoning costs only the host work spent building it.
        """
        if self._deferred or not self._pending:
            # fiber programs cannot run ahead of their synchronization
            # points, so there is nothing to prepare before the flush
            return False
        rt = self.engine.runtime
        # a capped round's composition is the oldest-cap prefix: later
        # admissions append *behind* it, so a prepared prefix survives
        # arrival churn — the property that makes speculation pay under
        # sustained load
        limit = self._flush_node_limit()
        prepared = self._prepared
        if prepared is not None:
            if rt.prepared_matches(prepared, limit=limit):
                return True
            self._discard_prepared()
        if self.policy.predict_next_flush(self, now) is None:
            return False
        self.prepare_attempts += 1
        prepared = rt.prepare_pending(limit=limit)
        if prepared is None:
            return False
        self._prepared = prepared
        self._prepared_at = now
        return True

    def _flush_node_limit(self) -> Optional[int]:
        """Node count of the next flush's capped prefix, or None when the
        whole backlog flushes at once (no cap, or the cap doesn't bind)."""
        if self._deferred:
            return None
        cap = self.policy.round_cap(self)
        if cap is None or not 0 < cap < len(self._pending):
            return None
        return self._node_offsets[cap - 1]

    def _discard_prepared(self) -> None:
        """Abandon the held prepared round (admission diverged)."""
        prepared = self._prepared
        if prepared is not None:
            self._prepared = None
            self._prepared_at = None
            self.speculation_aborts += 1
            self.engine.runtime.abandon_prepared(prepared)

    # -- lifecycle -------------------------------------------------------------
    def cancel(self, handle: RequestHandle) -> bool:
        """Withdraw a pending request before its round flushes.

        The request's recorded DFG nodes are removed from the shared lazy
        graph (whole-request node slices — requests are independent, so
        round-mates are untouched and flush exactly as if the request had
        never been submitted), any speculatively prepared round is
        abandoned (its composition no longer exists), and the handle fails
        with :class:`~repro.serve.request.RequestCancelled`.

        Returns False when the handle is unknown to this session or its
        round already executed.  Not thread-safe against a concurrent
        flush: under a running :class:`~repro.serve.loop.ServeLoop`, use
        the endpoint's ``_session_op`` guard (``RequestHandle.cancel()``
        on a still-queued admission is always safe — the loop removes it
        before dispatch).
        """
        removed = self.withdraw(handle)
        if removed is None:
            return False
        self.num_cancelled += 1
        handle._fail(
            RequestCancelled("request cancelled before its round flushed")
        )
        return True

    def withdraw(self, handle: RequestHandle) -> Optional[Tuple[Any, float]]:
        """Remove a pending request from the round *without* resolving its
        handle, returning ``(instance, submitted_at)`` — the raw material a
        stealing loop needs to rebuild the request in a sibling session
        (cross-loop work-stealing), or for slack-based shedding to fail it
        with the right error.  Returns None when the handle is unknown to
        this session or its round already executed.

        Exactly :meth:`cancel`'s node-slice surgery (round-mates flush as
        if the request had never been submitted; a speculatively prepared
        round is abandoned), minus the handle resolution.
        """
        index = None
        for i, (h, _) in enumerate(self._pending):
            if h is handle:
                index = i
                break
        if index is None or handle.done:
            return None
        self._discard_prepared()
        if self._deferred:
            instance = self._pending[index][1]
            del self._pending[index]
        else:
            rt = self.engine.runtime
            instance = self._pending_instances[index]
            start = self._node_offsets[index - 1] if index else 0
            end = self._node_offsets[index]
            dropped = end - start
            del self._pending[index]
            del self._pending_instances[index]
            del self._node_offsets[index]
            if dropped:
                rt.drop_pending_slice(start, end)
                for j in range(index, len(self._node_offsets)):
                    self._node_offsets[j] -= dropped
        if self._pending:
            self._round_started_at = self._pending[0][0].submitted_at
        else:
            self._round_started_at = None
            # an emptied round may legally restart its trace timestamps
            self._last_arrival = None
        return instance, handle.submitted_at

    #: handles pending in the session (oldest first) — what SLO-aware
    #: shedding and work-stealing inspect
    @property
    def pending_handles(self) -> List[RequestHandle]:
        return [h for h, _ in self._pending]

    # the RequestHandle.cancel() delegation target
    _cancel_handle = cancel

    # -- execution -------------------------------------------------------------
    def poll(self) -> Optional[List[Any]]:
        """Flush if the policy's deadline has passed; otherwise do nothing.

        Deadline-style policies flush on a clock timestamp rather than a
        submit event, so something must ask the session when time has moved
        on — serving loops call ``poll()`` periodically (or whenever the
        clock reaches :meth:`next_deadline`).  Returns the flushed outputs,
        or None when no flush was due.
        """
        deadline = self.next_deadline()
        if deadline is not None and self.clock.now() >= deadline:
            # attribute the flush to the policy that set the deadline (an
            # adaptive round aged out by max_wait_ms reports "adaptive",
            # not "deadline")
            return self.flush(reason=self.policy.name)
        return None

    def flush(self, reason: str = "manual") -> Optional[List[Any]]:
        """Schedule and execute everything submitted since the last flush.

        Returns the per-request outputs in submission order (and resolves
        every pending request handle).  Flushing an empty session is a
        cheap no-op returning None — it does not count as a flush, so
        periodic policy-driven flushing is safe.
        """
        if not self._pending:
            return None
        # a capping policy flushes the *oldest-cap* prefix and leaves the
        # overflow pending as the next round's prefix — request boundaries
        # are node boundaries, so the prefix is exactly the node slice the
        # prepare pipeline speculated on
        cap: Optional[int] = None
        node_limit: Optional[int] = None
        if not self._deferred:
            requested = self.policy.round_cap(self)
            if requested is not None and 0 < requested < len(self._pending):
                cap = requested
                node_limit = self._node_offsets[cap - 1]
        saved_offsets = self._node_offsets
        if cap is not None:
            pending = self._pending[:cap]
            self._pending = self._pending[cap:]
            if not self._deferred:
                self._pending_instances = self._pending_instances[cap:]
            # rebase leftover boundaries onto the post-flush node numbering
            self._node_offsets = [o - node_limit for o in saved_offsets[cap:]]
            # the leftover prefix anchors the next round's deadline at its
            # own oldest arrival; the monotonic-arrival tracker and the
            # instance-id sequence keep running (requests are still pending)
            self._round_started_at = self._pending[0][0].submitted_at
        else:
            pending, self._pending = self._pending, []
            self._pending_instances = []
            self._node_offsets = []
            self._round_started_at = None
            # a fresh trace may legally restart its timestamps next round
            self._last_arrival = None
            self._instance_seq = 0
        prepared, self._prepared = self._prepared, None
        prepared_at, self._prepared_at = self._prepared_at, None
        flush_start = self.clock.now()
        # per-flush device accounting: sessions may share one device
        # simulator (multi-endpoint servers), so each round's counters start
        # from zero at the flush that executes it
        self.engine.device.reset()

        adopted = False
        try:
            if self._deferred:
                # keep the device residency cache across fiber-program
                # rounds, exactly as _ensure_round does for the
                # DFG-accumulation path
                outputs, stats = self.engine.run(
                    [instance for _, instance in pending], release_residency=False
                )
            else:
                rt = self.engine.runtime
                exec_start = time.perf_counter()
                adopted = rt.trigger(prepared=prepared, limit=node_limit)
                outputs = [materialize_value(raw) for _, raw in pending]
                wall_s = self._build_s + (time.perf_counter() - exec_start)
                stats = self.engine.collect_stats(len(pending), wall_s)
                self._build_s = 0.0
                if self._pending:
                    # the overflow's DFG nodes live on in the runtime as the
                    # next round's prefix: a full reset would wipe them, so
                    # take a light per-round boundary and keep the bound
                    # entry for further submits
                    rt.finish_partial_round()
                else:
                    self._entry = None
        except BaseException as exc:
            # the popped handles would otherwise be lost (pending forever):
            # fail them, reset the round, and re-raise for the caller
            self._pending = pending + self._pending
            self._node_offsets = saved_offsets
            self._abort_round(exc)
            raise
        if prepared is not None:
            if adopted:
                self.speculation_hits += 1
            else:
                # admission diverged between the speculation and the flush
                # (e.g. a size-policy flush triggered by the very arrival
                # that invalidated the prepared round)
                self.speculation_aborts += 1

        stats.batch_size = len(pending)
        stats.flushed_at = flush_start
        stats.flush_reason = reason
        # split the round's latency into the host share (serial with intake:
        # DFG building, scheduling, dispatch and the CPU-side API time all
        # happen on the serving thread) and the device share (what a real
        # accelerator executes asynchronously).  Deterministic replays drop
        # the measured wall-clock host share so the simulated timeline is a
        # pure function of the trace.
        if self.charge_host:
            host_ms = stats.host_total_ms + stats.api_time_ms
        else:
            host_ms = stats.api_time_ms
            if self.host_cost_model is not None:
                per_round, per_request = self.host_cost_model
                host_ms += per_round + per_request * len(pending)
        if adopted and prepared_at is not None:
            # the adopted round's prepare work ran concurrently with the
            # wait since the speculation started (under a real preparer
            # thread, literally; in deterministic replays, as a model):
            # whatever fits in that window comes off the serial host share
            if self.charge_host:
                prep_ms = stats.host_ms.get("prepare", 0.0)
            elif self.host_cost_model is not None:
                per_round, per_request = self.host_cost_model
                prep_ms = self.prepare_share * (
                    per_round + per_request * len(pending)
                )
            else:
                prep_ms = 0.0
            hidden = min(prep_ms, max(0.0, flush_start - prepared_at) * 1e3)
            host_ms = max(0.0, host_ms - hidden)
            if prep_ms > 0.0:
                stats.overlap_ratio = hidden / prep_ms
            self.prepare_hidden_ms += hidden
        device_ms = stats.device_total_ms
        if self.timeline is not None:
            # continuous batching: charge only the host share to the clock,
            # then *launch* the round — it completes at the device's busy
            # horizon plus its own device time, while intake keeps running.
            # On a multi-lane timeline the round occupies only the lanes its
            # per-device shares use (staged for pipeline placements), so
            # different members' rounds — and consecutive staged rounds —
            # overlap; the aggregate launch is the single-device path.
            if self.host_lane is not None:
                # sharded loops: the host share occupies this loop's lane
                # only — sibling loops' host work runs in parallel; the
                # multi-loop driver delays this loop's next event until the
                # lane frees instead of advancing the shared clock
                launch_at = flush_start + host_ms / 1e3
                self.host_lane.busy_until = launch_at
            else:
                self.clock.charge(host_ms / 1e3)
                launch_at = self.clock.now()
            shares = self._device_shares(stats)
            if shares is None:
                completed_at = self.timeline.launch(launch_at, device_ms / 1e3)
            else:
                placement = getattr(self.engine, "placement", None)
                completed_at = self.timeline.launch_round(
                    launch_at,
                    shares,
                    staged=getattr(placement, "timeline_mode", None) == "staged",
                )
            execute_ms = (completed_at - flush_start) * 1e3
        else:
            # caller-driven: the round's execution latency blocks the clock
            # (simulated clocks advance; the wall clock already moved on its
            # own)
            self.clock.charge((host_ms + device_ms) / 1e3)
            completed_at = self.clock.now()
            execute_ms = host_ms + device_ms
        launch_share = stats.kernel_calls / max(1, len(pending))
        for (handle, _), output in zip(pending, outputs):
            handle._complete(
                output,
                RequestStats(
                    submitted_at=handle.submitted_at,
                    flushed_at=flush_start,
                    completed_at=completed_at,
                    queue_ms=max(0.0, flush_start - handle.submitted_at) * 1e3,
                    execute_ms=execute_ms,
                    # queueing + execution by construction on every clock: a
                    # wall clock cannot charge() simulated device time, so
                    # completed_at - submitted_at would undercount there
                    latency_ms=max(0.0, flush_start - handle.submitted_at) * 1e3
                    + execute_ms,
                    batch_size=len(pending),
                    launch_share=launch_share,
                    flush_reason=reason,
                ),
            )
        self.last_stats = stats
        self.engine.last_stats = stats
        self.history.append(stats)
        self.num_flushes += 1
        self.requests_flushed += len(pending)
        self.total_kernel_calls += stats.kernel_calls
        self.total_device_ms += stats.device_total_ms
        self.policy.note_flush(self, stats)
        return outputs

    # -- context manager -------------------------------------------------------
    def __enter__(self) -> "InferenceSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            # a capping policy flushes at most round_cap requests per call:
            # drain means flushing until the backlog is empty (each round
            # retires at least one request, so this terminates)
            while self._pending:
                self.flush()

    # -- internals -------------------------------------------------------------
    def _device_shares(self, stats: RunStats) -> Optional[List[Tuple[int, float]]]:
        """Per-member device shares of the flushed round, in device order —
        what :meth:`DeviceTimeline.launch_round` occupies lane by lane.
        None (meaning: use the aggregate :meth:`DeviceTimeline.launch`) for
        standalone devices and single-lane timelines, which keeps
        single-device traces bit-identical to the aggregate-timeline era.
        Valid because the flush reset the device counters at its start, so
        ``stats.per_device`` is exactly this round's breakdown."""
        per_device = stats.per_device
        if len(per_device) <= 1 or self.timeline.num_devices <= 1:
            return None
        return [
            (int(d.get("device", i)), d.get("total_device_us", 0.0) / 1e6)
            for i, d in enumerate(per_device)
        ]

    def _abort_round(self, cause: BaseException) -> None:
        """Fail the current round's pending handles and reset the session
        to a clean empty round (the runtime's lazy graph is discarded, the
        device residency cache survives).  Called when a request's DFG
        build or the round's execution raised: the shared graph is
        unrecoverable, but the session — and everything else behind the
        same server — keeps serving."""
        pending, self._pending = self._pending, []
        self._pending_instances = []
        self._discard_prepared()
        self._node_offsets = []
        self._instance_seq = 0
        self._round_started_at = None
        self._last_arrival = None
        self._entry = None
        self._build_s = 0.0
        self.engine.runtime.reset(release_residency=False)
        for handle, _ in pending:
            if not handle.done:
                error = RoundAborted(
                    f"batching round aborted after {type(cause).__name__}: {cause}"
                )
                error.__cause__ = cause
                handle._fail(error)

    def _ensure_round(self):
        """Bind the program for a new batching round (first submit after a
        flush): reset the runtime and cache the per-instance entry.

        The device's residency cache survives the reset: storage arenas and
        parameters uploaded in earlier rounds stay device-resident, so
        cross-request batches in later rounds reuse resident parameters
        instead of re-transferring them.
        """
        if self._entry is None:
            self.engine.runtime.reset(release_residency=False)
            self._entry = self.engine.program.bind(self.engine.runtime, None)
        return self._entry
