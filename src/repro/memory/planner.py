"""The ahead-of-execution memory planner.

After the scheduler has grouped the round's DFG nodes into batches and
*before* anything executes, :meth:`MemoryPlanner.plan_round` walks the
batches in execution order and decides, for every varying operand of every
batch, how its batched form will be obtained:

``contiguous``
    All per-instance tensors sit at consecutive offsets of one storage
    arena, so the batched operand is a zero-copy arena slice — no gather,
    no copy, no device charge (§5.2's gather elision).
``gather``
    The operands are scattered and gather fusion is off: the plan calls for
    one explicit gather launch copying them into a fresh contiguous buffer
    (what DyNet does).
``fused_gather``
    The operands are scattered and gather fusion is on: the batched kernel
    reads them through indirect addressing, charged as scattered bytes on
    its launch records.
``peer``
    The operands are contiguous in one arena, but that arena lives on a
    *different device* of the runtime's
    :class:`~repro.devices.group.DeviceGroup` than the batch: the whole
    slice ships over the group's interconnect as one priced peer transfer
    and arrives dense.  (Scattered operands with remote parts keep their
    gather classification; the remote parts are peer-charged at resolve
    time, coalesced per source device.)

Planning ahead of execution is possible because the planner *places*
outputs symbolically as it walks: each batch's outputs are assigned a fresh
arena id with instance ``b`` at offset ``b``, so a later batch's contiguity
is decided from planned placements before any value exists.  Execution then
resolves each :class:`OperandPlan` into a :class:`~repro.kernels.batched.BatchedOperand`
(:meth:`MemoryPlanner.resolve`, charging gathers/uploads against the device
simulator) and commits outputs into real arenas under the planned ids
(:meth:`MemoryPlanner.commit`).

Planning is pure classification over the round's *structure* (which blocks,
batched how, with operands placed where), so structurally identical rounds —
the common case for a serving session flushing similar request batches over
and over — replan from scratch needlessly.  The planner therefore keeps a
**plan cache**: each round is fingerprinted by a canonical signature (block
ids, batch sizes, and every varying operand's producer expressed relative to
the round, so concrete arena ids don't leak in), and a hit replays the
cached classification with fresh output arena ids instead of re-walking
placements.  Fingerprinting costs about half of planning, so the cache
stays dormant until a repeat-heavy caller arms it
(:meth:`MemoryPlanner.expect_repeats` — serving sessions do; one-shot runs
pay nothing).  **Arming is idempotent**: sessions re-created across
``Server.run()`` restarts re-arm the same planner freely — a repeat arm is
a no-op that keeps cached templates and hit/miss counters, and the armed
state is inspectable via :attr:`MemoryPlanner.plan_cache_armed` (the call
also reports whether it newly armed).  The cache is bounded by LRU
eviction: once ``_PLAN_CACHE_MAX`` distinct signatures accumulate, the
least-recently-hit template is evicted (``plan_cache_evictions`` in
``RunStats.memory``) instead of dumping the whole working set.

The cache is also where the kernel-specialization tier
(:mod:`repro.specialize`) gets its fingerprints for free: when a
specialization cache is attached (:meth:`MemoryPlanner.attach_specializer`),
every cached template carries one specialization slot per batch, handed to
the instantiated plans on each hit — a ``(round signature, batch position)``
fingerprint with zero per-launch fingerprinting cost.  The planner stays
ignorant of the tier's internals (duck-typed ``make_slot`` /
``release_slots``), so ``repro.memory`` does not import ``repro.specialize``.

This module is the single authority on storage contiguity: nothing outside
``repro.memory`` compares arena placements.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from ..kernels.batched import BatchedOperand, BatchedOutput
from ..runtime.tensor import LazyTensor
from .arena import StorageArena, TensorStorage, next_arena_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernels.batched import BlockKernel
    from ..runtime.device import DeviceSimulator
    from ..runtime.scheduler import ScheduledBatch


class OperandKind(Enum):
    """How one block operand reaches its batched kernel."""

    SHARED = "shared"
    CONTIGUOUS = "contiguous"
    GATHER = "gather"
    FUSED_GATHER = "fused_gather"
    #: contiguous in one arena, but that arena lives on a *different* device
    #: of the group than the consuming batch: one priced peer transfer ships
    #: the whole slice over the interconnect, after which it is dense locally
    PEER = "peer"


# hot-path aliases: Enum member access goes through a descriptor, so the
# planner binds the members once at import time
_SHARED = OperandKind.SHARED
_CONTIGUOUS = OperandKind.CONTIGUOUS
_GATHER = OperandKind.GATHER
_FUSED_GATHER = OperandKind.FUSED_GATHER
_PEER = OperandKind.PEER


class OperandPlan:
    """The planner's verdict for one block input of one batch."""

    __slots__ = ("index", "kind", "arena_id", "start")

    def __init__(
        self,
        index: int,
        kind: OperandKind,
        arena_id: Optional[int] = None,
        start: Optional[int] = None,
    ) -> None:
        self.index = index
        self.kind = kind
        #: source placement for contiguous multi-instance operands: the arena
        #: id and the offset of the first instance (None for batch-of-one /
        #: shared)
        self.arena_id = arena_id
        self.start = start

    def __repr__(self) -> str:
        return f"OperandPlan(input={self.index}, kind={self.kind.value})"


@dataclass
class BatchPlan:
    """Everything the executor needs to know about one batch's memory.

    ``batch`` is released (set to ``None``) by :meth:`MemoryPlanner.commit`
    once the batch has executed, so retained plans (``last_plans``) keep only
    the lightweight classification — not the round's node graph and arenas.
    """

    batch: Optional["ScheduledBatch"]
    batch_size: int
    operands: List[OperandPlan]
    #: pre-allocated arena ids, one per block output; the commit step creates
    #: the arenas under exactly these ids so later plans stay valid
    output_arena_ids: List[int]
    #: device index (within the runtime's device group) this batch executes
    #: on; its output arenas are born on that device
    device: int = 0
    #: the specialization slot for this batch's fingerprint (set only for
    #: plans instantiated from cached templates while a specialization cache
    #: is attached; see :mod:`repro.specialize`)
    spec_slot: Optional[Any] = None

    def count(self, kind: OperandKind) -> int:
        return sum(1 for op in self.operands if op.kind is kind)


class _PlanTemplate:
    """Cached classification of one round, relative to the round itself.

    ``entries`` holds one ``(batch_size, num_outputs, operand_specs)``
    triple per batch; ``operand_specs`` preserves the block-input order the
    executor relies on.  Each spec is either a ready-to-share
    :class:`OperandPlan` reused as-is (shared / gather / batch-of-one /
    external-arena operands — nothing in them names a fresh arena) or a
    ``(index, kind, producer_batch_idx, out_k, start)`` tuple for a
    contiguous operand sourced from an output planned earlier in the same
    round, rebound to that batch's fresh arena id on instantiation.
    ``counts`` is the round's precomputed per-kind operand tally.
    ``slots`` carries one specialization slot per batch when a
    specialization cache is attached (None otherwise): the slot *is* the
    batch's ``(round signature, batch position)`` fingerprint, handed to
    instantiated plans on every hit.
    """

    __slots__ = ("entries", "counts", "slots")

    def __init__(
        self,
        entries: List[Tuple],
        counts: Dict[str, int],
        slots: Optional[List[Any]] = None,
    ) -> None:
        self.entries = entries
        self.counts = counts
        self.slots = slots


#: plan-cache size bound: once this many distinct signatures accumulate,
#: the least-recently-hit template is evicted (steady serving loads keep a
#: small hot working set; evicting one cold template never dumps it the way
#: the earlier clear-everything overflow policy did)
_PLAN_CACHE_MAX = 256

#: zero-initialized per-kind operand tally, copied (never mutated) wherever a
#: fresh staging counts dict is needed — a dict copy beats re-walking the
#: Enum's descriptors on the planning hot path
_ZERO_COUNTS: Dict[str, int] = {k.value: 0 for k in OperandKind}


class StagedRound:
    """The deferred side effects of one :meth:`MemoryPlanner.plan_round_staged`.

    Speculative round preparation plans ahead of commitment: the plans
    themselves are pure values, but planning normally also mutates the
    planner (round ordinal, cache hit/miss counters, LRU order, template
    insertion/eviction, operand counts, ``last_plans``).  Staging captures
    every one of those mutations as data so that an abandoned speculation
    costs only the wasted host work — the planner, the plan cache, and the
    specialization tier are untouched until :meth:`MemoryPlanner.commit_staged`.

    ``counts`` is the round's per-kind operand tally to merge into the
    planner's cumulative totals at commit; on a cache hit it *is* the
    template's precomputed tally (shared read-only, never a fresh dict —
    the hit path allocates nothing beyond the staging record itself).
    """

    __slots__ = (
        "plans",
        "ordinal",
        "counts",
        "hit",
        "miss",
        "signature",
        "make_template",
        "mark_uncacheable",
    )

    def __init__(self, ordinal: int) -> None:
        self.plans: List["BatchPlan"] = []
        self.ordinal = ordinal
        self.counts: Dict[str, int] = {}
        self.hit = False
        self.miss = False
        self.signature: Optional[Tuple] = None
        self.make_template = False
        self.mark_uncacheable = False


class MemoryPlanner:
    """Plans arena placement and operand contiguity for scheduled batches."""

    def __init__(self, gather_fusion: bool = True, plan_cache: bool = True) -> None:
        self.gather_fusion = gather_fusion
        #: plans of the most recent round (introspection / tests)
        self.last_plans: List[BatchPlan] = []
        #: cumulative per-kind operand counts since the last reset
        self.operand_counts: Dict[str, int] = {k.value: 0 for k in OperandKind}
        #: partial-output arenas born since the last reset: output arenas of
        #: tensor-parallel launches, assembled on the home device from the
        #: members' column/row partials (the executor counts them when it
        #: charges the gathers; :meth:`commit` marks the arenas themselves)
        self.partial_arenas = 0
        self.plan_cache_enabled = plan_cache
        self._plan_cache: "OrderedDict[Tuple, _PlanTemplate]" = OrderedDict()
        #: cumulative cache accounting over the planner's lifetime (NOT
        #: cleared by :meth:`reset`, so a session reports its cache hit rate
        #: across flush rounds)
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        #: the attached kernel-specialization cache (duck-typed; see
        #: :meth:`attach_specializer`), or None when the tier is off
        self._spec_cache: Optional[Any] = None
        #: the cache stays dormant until a repeat-heavy caller *arms* it
        #: (:meth:`expect_repeats`): fingerprinting a round costs about half
        #: of planning it, which only pays off when rounds actually repeat —
        #: serving sessions do, one-shot ``run()`` calls do not and must not
        #: fund a cache they can never hit
        self.plan_cache_armed = False
        #: sync-round ordinal within the current run/flush, and the ordinals
        #: known to produce uncacheable signatures (rounds referencing
        #: earlier rounds' concrete arenas — fiber programs — can never hit,
        #: so after the first observation those ordinals skip fingerprinting
        #: entirely)
        self._round_ordinal = 0
        self._uncacheable_ordinals: set = set()

    def expect_repeats(self) -> bool:
        """Arm the plan cache: the caller expects structurally repeating
        rounds (serving sessions call this at construction).

        Idempotent: a ``Server.run()`` restart re-creates its sessions over
        the same engine and re-arms freely — a repeat arm is a no-op that
        keeps cached templates and hit/miss counters.  Returns True when
        this call newly armed the cache, False when it was already armed;
        the armed state stays inspectable via :attr:`plan_cache_armed`.
        """
        newly_armed = not self.plan_cache_armed
        self.plan_cache_armed = True
        return newly_armed

    def attach_specializer(self, cache: Any) -> None:
        """Attach a kernel-specialization cache: from now on every cached
        plan template carries one specialization slot per batch (allocated
        via ``cache.make_slot()``) and evicted templates release their
        frozen state via ``cache.release_slots()``.  Duck-typed so that
        ``repro.memory`` never imports ``repro.specialize``."""
        self._spec_cache = cache

    def reset(self) -> None:
        """Clear per-run state.  The plan cache (and its hit/miss counters)
        survives: cached templates are content-addressed by round structure,
        so they stay valid across runs and across a session's flush rounds —
        which is exactly when they pay off."""
        self.last_plans = []
        self.operand_counts = {k.value: 0 for k in OperandKind}
        self.partial_arenas = 0
        self._round_ordinal = 0

    # -- planning --------------------------------------------------------------
    def plan_round(
        self, batches: List["ScheduledBatch"], kernels: Dict[int, "BlockKernel"]
    ) -> List[BatchPlan]:
        """Plan memory for one scheduled round, in execution order.

        With the cache enabled *and armed* (:meth:`expect_repeats`), a round
        structurally identical to an earlier one replays the cached
        classification (fresh output arena ids, operand sources rebound)
        instead of re-deriving placements; otherwise rounds plan uncached
        with no fingerprinting overhead.
        """
        if not (self.plan_cache_enabled and self.plan_cache_armed):
            # the one-shot caller can never speculate: skip the staging
            # record and merge counts straight into the cumulative totals,
            # exactly as before the overlapped pipeline existed
            self._round_ordinal += 1
            plans = self._plan_round_uncached(batches, kernels)
            self.last_plans = plans
            return plans
        plans, staged = self.plan_round_staged(batches, kernels)
        self.commit_staged(staged)
        return plans

    def plan_round_staged(
        self, batches: List["ScheduledBatch"], kernels: Dict[int, "BlockKernel"]
    ) -> Tuple[List[BatchPlan], StagedRound]:
        """Plan one round without mutating any planner state.

        Returns ``(plans, staged)``: the plans are complete and executable,
        but the planner records nothing — no ordinal advance, no cache
        hit/miss accounting, no template insertion, no operand counts —
        until :meth:`commit_staged` applies ``staged``.  Dropping ``staged``
        on the floor abandons the speculation for free: a later
        ``plan_round`` of the *real* round observes exactly the state it
        would have seen had the speculation never run.

        Template *creation* on a cacheable miss is itself deferred to
        commit (specialization slots are allocated there), so an abandoned
        miss leaves the specialization tier untouched as well.  One planner
        serves one session; stage/commit pairs are strictly ordered by the
        caller, never interleaved.
        """
        ordinal = self._round_ordinal + 1
        staged = StagedRound(ordinal)
        if not (self.plan_cache_enabled and self.plan_cache_armed):
            staged.counts = counts = dict(_ZERO_COUNTS)
            staged.plans = self._plan_round_uncached(batches, kernels, counts)
            return staged.plans, staged
        if ordinal in self._uncacheable_ordinals:
            # this sync-round position referenced earlier rounds' concrete
            # arenas before — it can never hit, so skip even fingerprinting
            staged.miss = True
            staged.counts = counts = dict(_ZERO_COUNTS)
            staged.plans = self._plan_round_uncached(batches, kernels, counts)
            return staged.plans, staged

        signature, cacheable = self._round_signature(batches, kernels)
        template = self._plan_cache.get(signature)
        plans: Optional[List[BatchPlan]] = None
        if template is not None:
            plans = self._instantiate(template, batches)
        if plans is not None:
            staged.hit = True
            staged.signature = signature
            # the template's precomputed tally, shared read-only: the hit
            # path neither builds nor merges a counts dict until commit
            staged.counts = template.counts
        else:
            staged.miss = True
            staged.counts = counts = dict(_ZERO_COUNTS)
            plans = self._plan_round_uncached(batches, kernels, counts)
            if cacheable:
                staged.signature = signature
                staged.make_template = True
            else:
                staged.mark_uncacheable = True
        staged.plans = plans
        return plans, staged

    def commit_staged(self, staged: StagedRound) -> None:
        """Apply a staged round's deferred planner mutations.

        Called exactly once per adopted :meth:`plan_round_staged` result,
        immediately before the plans execute; an abandoned staging is
        simply never committed.
        """
        self._round_ordinal = staged.ordinal
        totals = self.operand_counts
        for kind_value, n in staged.counts.items():
            if n:
                totals[kind_value] += n
        if staged.hit:
            self.cache_hits += 1
            if staged.signature in self._plan_cache:
                self._plan_cache.move_to_end(staged.signature)  # LRU touch
        elif staged.miss:
            self.cache_misses += 1
        if staged.make_template:
            if len(self._plan_cache) >= _PLAN_CACHE_MAX:
                # evict the least-recently-hit template, releasing any
                # specialization state frozen against it
                _, evicted = self._plan_cache.popitem(last=False)
                self.cache_evictions += 1
                if self._spec_cache is not None:
                    self._spec_cache.release_slots(evicted.slots)
            template = self._make_template(staged.plans)
            self._plan_cache[staged.signature] = template
            if template.slots is not None:
                # the freshly fingerprinted round counts toward its own
                # promotion threshold too
                for plan, slot in zip(staged.plans, template.slots):
                    plan.spec_slot = slot
        if staged.mark_uncacheable:
            self._uncacheable_ordinals.add(staged.ordinal)
        self.last_plans = staged.plans

    def _plan_round_uncached(
        self,
        batches: List["ScheduledBatch"],
        kernels: Dict[int, "BlockKernel"],
        counts: Optional[Dict[str, int]] = None,
    ) -> List[BatchPlan]:
        #: symbolic placements of tensors this round will produce: tid ->
        #: (arena_id, offset); tensors from earlier rounds carry real storage
        placements: Dict[int, Tuple[int, int]] = {}
        #: device owning each arena planned this round (earlier rounds'
        #: arenas carry their device on the concrete StorageArena)
        arena_devices: Dict[int, int] = {}
        plans: List[BatchPlan] = []
        if counts is None:
            counts = self.operand_counts

        for batch in batches:
            block = kernels[batch.block_id].block
            nodes = batch.nodes
            device = batch.device
            if len(nodes) == 1:
                # batch of one never gathers: every varying operand only gains
                # a leading batch axis (a zero-copy reshape); a remote operand
                # is still shipped over — resolution charges the transfer from
                # the operand's concrete storage
                operands = [
                    OperandPlan(inp.index, _SHARED if inp.shared else _CONTIGUOUS)
                    for inp in block.inputs
                ]
            else:
                operands = [
                    self._plan_operand(inp, nodes, placements, arena_devices, device)
                    for inp in block.inputs
                ]
            output_ids = [next_arena_id() for _ in range(block.num_outputs)]
            for arena_id in output_ids:
                arena_devices[arena_id] = device
            for b, node in enumerate(nodes):
                for out, arena_id in zip(node.outputs, output_ids):
                    placements[out.tid] = (arena_id, b)
            for op in operands:
                counts[op.kind.value] += 1
            plans.append(
                BatchPlan(
                    batch=batch,
                    batch_size=len(nodes),
                    operands=operands,
                    output_arena_ids=output_ids,
                    device=device,
                )
            )

        return plans

    # -- plan cache ------------------------------------------------------------
    def _round_signature(
        self, batches: List["ScheduledBatch"], kernels: Dict[int, "BlockKernel"]
    ) -> Tuple[Tuple, bool]:
        """Canonical fingerprint of one scheduled round, plus whether it is
        worth caching (False when the signature pins concrete earlier-round
        placements — arena ids are never reused, so such a round cannot
        recur).

        Per batch: the block, the batch's *membership* — each member node's
        per-round sequence number
        (:attr:`~repro.runtime.tensor.DFGNode.round_seq`, assigned in
        creation order by the runtime, so it is canonical across rounds) —
        and, for every varying (non-shared) block input, the operand column:
        in-round producers named by their sequence number, producers
        materialized in *earlier* rounds pinned by their concrete
        ``(arena_id, offset)`` placement (arena ids are never recycled, so a
        stale match is impossible), host arrays by presence only
        (classification never looks at their values).

        Membership plus columns is what makes sequence-number references
        sound: membership pins where every producer sits positionally
        (batch, offset), columns pin which producer each operand names —
        equal signatures therefore imply identical placements, hence
        identical plans.  Shared (weight) inputs are skipped exactly as
        :meth:`_plan_operand` skips them.
        """
        lazy = LazyTensor
        cacheable = True
        sig: List[Tuple] = []
        add = sig.append
        for batch in batches:
            nodes = batch.nodes
            # placement identity: equal signatures must imply identical
            # device assignment, or a cache hit could replay a plan whose
            # peer-transfer classification no longer matches the round.
            # The tensor-parallel shard set is part of that identity (a
            # split and an unsplit launch of the same round charge
            # different members), so fingerprints carry the shard axis too.
            members = (
                batch.device,
                batch.tp_devices,
                *(node.round_seq for node in nodes),
            )
            if len(nodes) == 1:
                # batch of one classifies from the block alone
                add((batch.block_id, members))
                continue
            columns: List[Tuple] = []
            for inp in kernels[batch.block_id].block.inputs:
                if inp.shared:
                    continue  # classified SHARED without looking at operands
                index = inp.index
                col: List[Any] = []
                cadd = col.append
                for node in nodes:
                    arg = node.args[index]
                    if type(arg) is lazy:
                        producer = arg.node
                        if producer.executed:
                            storage = arg.storage
                            # "?": executed but storage-less cannot occur
                            # through the runtime; keeps the round uncacheable
                            cadd(
                                ("x",) + storage.placement
                                if storage is not None
                                else ("?", id(arg))
                            )
                            cacheable = False
                        else:
                            cadd((producer.round_seq, arg.output_index))
                    else:
                        cadd("h")
                columns.append(tuple(col))
            add((batch.block_id, members, tuple(columns)))
        return tuple(sig), cacheable

    def _make_template(self, plans: List[BatchPlan]) -> _PlanTemplate:
        """Strip freshly made plans down to a reusable, round-relative
        template.

        Operand plans that name no fresh arena (shared / gather /
        batch-of-one / external-arena sources) are round-independent and
        stored as ready-to-share :class:`OperandPlan` objects; only
        contiguous operands sourced from the round's own outputs need
        rebinding and are kept as symbolic specs.
        """
        arena_origin: Dict[int, Tuple[int, int]] = {}
        for bi, plan in enumerate(plans):
            for k, arena_id in enumerate(plan.output_arena_ids):
                arena_origin[arena_id] = (bi, k)

        counts: Dict[str, int] = {}
        entries: List[Tuple] = []
        for plan in plans:
            specs: List[Any] = []
            for op in plan.operands:
                counts[op.kind.value] = counts.get(op.kind.value, 0) + 1
                origin = arena_origin.get(op.arena_id) if op.arena_id is not None else None
                if origin is None:
                    specs.append(op)  # round-independent: reuse as-is
                else:
                    specs.append((op.index, op.kind, origin[0], origin[1], op.start))
            entries.append((plan.batch_size, len(plan.output_arena_ids), specs))
        spec_cache = self._spec_cache
        slots = (
            [spec_cache.make_slot() for _ in plans] if spec_cache is not None else None
        )
        return _PlanTemplate(entries, counts, slots)

    def _instantiate(
        self, template: _PlanTemplate, batches: List["ScheduledBatch"]
    ) -> Optional[List[BatchPlan]]:
        """Replay a cached template against this round's batches: allocate
        fresh output arena ids and rebind round-sourced contiguous operands.

        Returns None when the template's shape does not line up with the
        scheduled batches (cannot happen for signatures produced by
        :meth:`_round_signature`, but kept as a cheap invariant so a bad hit
        degrades to a plain miss rather than a bad plan).
        """
        entries = template.entries
        if len(entries) != len(batches) or any(
            entry[0] != len(batch.nodes) for entry, batch in zip(entries, batches)
        ):
            return None
        plans: List[BatchPlan] = []
        round_ids: List[List[int]] = []
        slots = template.slots
        for bi, ((_, num_outputs, specs), batch) in enumerate(zip(entries, batches)):
            output_ids = [next_arena_id() for _ in range(num_outputs)]
            round_ids.append(output_ids)
            operands: List[OperandPlan] = [
                spec
                if type(spec) is OperandPlan
                # (index, kind, producer batch, out_k, start): rebind to the
                # producer's fresh arena id, preserving block-input order
                else OperandPlan(
                    spec[0], spec[1], arena_id=round_ids[spec[2]][spec[3]], start=spec[4]
                )
                for spec in specs
            ]
            plans.append(
                BatchPlan(
                    batch=batch,
                    batch_size=len(batch.nodes),
                    operands=operands,
                    output_arena_ids=output_ids,
                    device=batch.device,
                    spec_slot=slots[bi] if slots is not None else None,
                )
            )
        # the operand tally is the template's precomputed ``counts``, merged
        # into the planner's totals by the caller (commit_staged)
        return plans

    def _plan_operand(
        self,
        inp,
        nodes,
        placements: Dict[int, Tuple[int, int]],
        arena_devices: Dict[int, int],
        batch_device: int,
    ) -> OperandPlan:
        if inp.shared:
            return OperandPlan(inp.index, _SHARED)

        index = inp.index
        contiguous = True
        prev: Optional[Tuple[int, int]] = None
        first: Optional[Tuple[int, int]] = None
        first_device: Optional[int] = None
        for node in nodes:
            arg = node.args[index]
            if not isinstance(arg, LazyTensor):
                # host-resident constant/input: never already on-device-contiguous
                contiguous = False
                continue
            placement = placements.get(arg.tid)
            storage_device: Optional[int] = None
            if placement is None:
                storage = arg.storage
                if storage is None:
                    raise RuntimeError(
                        f"memory planner: operand tensor {arg.tid} (node "
                        f"{arg.node.node_id}) is neither materialized nor planned "
                        f"earlier in this round — the scheduler emitted batches "
                        f"out of dependency order"
                    )
                placement = storage.placement
                storage_device = storage.arena.device_index
            if prev is None:
                first = placement
                first_device = (
                    storage_device
                    if storage_device is not None
                    else arena_devices.get(placement[0], 0)
                )
            elif placement[0] != prev[0] or placement[1] != prev[1] + 1:
                contiguous = False
            prev = placement

        if contiguous and first is not None:
            # one arena holds the whole slice (an arena lives wholly on one
            # device); if that device is not the batch's, the slice ships over
            # the interconnect as one priced peer transfer
            kind = _CONTIGUOUS if first_device == batch_device else _PEER
            return OperandPlan(index, kind, arena_id=first[0], start=first[1])
        return OperandPlan(index, _FUSED_GATHER if self.gather_fusion else _GATHER)

    # -- execution-time resolution ---------------------------------------------
    def resolve(
        self,
        plan: BatchPlan,
        kernel: "BlockKernel",
        device: "DeviceSimulator",
        options: Any,
    ) -> List[BatchedOperand]:
        """Turn a batch plan into kernel operands, charging the device.

        Charging is indexed by the plan's device: explicit gathers and
        host-array uploads hit the member device the batch executes on
        (``device.device_for(plan.device)``), and operands whose storage
        lives on *another* member are shipped over the group's interconnect
        first (``device.peer_transfer``) — contiguous remote slices as one
        transfer, scattered remote parts coalesced per source device.
        Contiguous local operands stay zero-copy arena views.
        """
        block = kernel.block
        nodes = plan.batch.nodes
        batch_size = len(nodes)
        batch_device = plan.device
        local = device.device_for(batch_device)
        resolved: List[BatchedOperand] = []
        validate = options.validate
        batch_memcpy = options.batch_memcpy
        ensure_resident = local.ensure_resident

        for op in plan.operands:
            kind = op.kind
            index = op.index
            if kind is _SHARED:
                first = nodes[0].args[index]
                value = first.value if isinstance(first, LazyTensor) else np.asarray(first)
                if validate:
                    for other in nodes[1:]:
                        oarg = other.args[index]
                        ov = oarg.value if isinstance(oarg, LazyTensor) else np.asarray(oarg)
                        if not np.array_equal(np.asarray(ov), np.asarray(value)):
                            raise RuntimeError(
                                f"block {block.name}: input "
                                f"{block.inputs[index].name} marked shared but "
                                f"differs across batched nodes"
                            )
                if not isinstance(first, LazyTensor):
                    ensure_resident(value, batch_memcpy)
                resolved.append(BatchedOperand(shared=True, array=value))
                continue

            if kind is _CONTIGUOUS or kind is _PEER:
                resolved.append(
                    self._resolve_contiguous(
                        op, nodes, batch_size, device, batch_device, options
                    )
                )
                continue

            # scattered: hand the kernel per-instance storage refs; the views
            # are only realized inside the kernel's own gather (the read is
            # device work — charged as a gather launch or as scattered bytes —
            # not host dispatch time).  Parts living on other devices of the
            # group ship over the interconnect first, coalesced per source.
            parts: List[Any] = []
            remote_bytes: Dict[int, float] = {}
            seen_broadcast: set = set()
            for node in nodes:
                arg = node.args[index]
                if isinstance(arg, LazyTensor):
                    storage = arg.storage
                    arena = storage.arena
                    src = arena.device_index
                    if src != batch_device:
                        if arena.broadcast:
                            # every broadcast part is the same underlying
                            # array: the arena ships once per consumer device
                            if arena.arena_id not in seen_broadcast:
                                seen_broadcast.add(arena.arena_id)
                                remote_bytes[src] = (
                                    remote_bytes.get(src, 0.0) + arena.nbytes
                                )
                        else:
                            remote_bytes[src] = remote_bytes.get(src, 0.0) + float(
                                storage.nbytes
                            )
                    parts.append(storage)
                else:
                    arr = np.asarray(arg)
                    ensure_resident(arr, batch_memcpy)
                    parts.append(arr)
            for src, nbytes in remote_bytes.items():
                device.peer_transfer(src, batch_device, nbytes)
            if kind is _GATHER:
                # one explicit gather launch copies the scattered operand into
                # a contiguous buffer; downstream the operand is dense, so the
                # kernel performs the stack without scattered-read accounting
                local.gather(float(sum(p.nbytes for p in parts)))
                resolved.append(BatchedOperand(shared=False, parts=parts))
            else:  # FUSED_GATHER: the kernel reads the scattered parts itself
                resolved.append(BatchedOperand(shared=False, parts=parts, scattered=True))

        return resolved

    def _resolve_contiguous(
        self, op: OperandPlan, nodes, batch_size: int, device, batch_device: int, options
    ) -> BatchedOperand:
        local = device.device_for(batch_device)
        if batch_size == 1:
            arg = nodes[0].args[op.index]
            if isinstance(arg, LazyTensor):
                storage = arg.storage
                src = storage.arena.device_index
                if src != batch_device:
                    # singleton batches classify without looking at operands
                    # (the planning fast path), so the remote read is both
                    # charged and re-classified here — the peer operand count
                    # must agree with the device's transfer counters
                    device.peer_transfer(src, batch_device, float(storage.nbytes))
                    counts = self.operand_counts
                    counts[_PEER.value] += 1
                    counts[_CONTIGUOUS.value] -= 1
                arr = arg.value
            else:
                arr = np.asarray(arg)
                local.ensure_resident(arr, options.batch_memcpy)
            return BatchedOperand(shared=False, array=arr[None])  # zero-copy leading axis
        storage = nodes[0].args[op.index].storage
        if storage is None or storage.placement != (op.arena_id, op.start):
            raise RuntimeError(
                f"memory plan violated: operand {op.index} expected at arena "
                f"{op.arena_id}+{op.start}, found "
                f"{None if storage is None else storage.placement} — batches "
                f"executed out of plan order"
            )
        if op.kind is _PEER:
            # the whole contiguous slice ships from its owning device in one
            # priced transfer, arriving dense on the batch's device; a
            # broadcast arena's slice is one underlying array however large
            # the batch, so it ships once, not batch_size times
            arena = storage.arena
            nbytes = (
                arena.nbytes if arena.broadcast else float(storage.nbytes) * batch_size
            )
            device.peer_transfer(arena.device_index, batch_device, nbytes)
        return BatchedOperand(shared=False, array=storage.arena.slice(op.start, batch_size))

    # -- execution-time commit ---------------------------------------------------
    def commit(
        self,
        plan: BatchPlan,
        outputs: List[BatchedOutput],
        device: "DeviceSimulator",
    ) -> List[StorageArena]:
        """Store a batch's outputs into arenas under the planned ids and
        materialize every node output as a zero-copy arena view.

        Arenas are born on the device the batch executed on (and enter that
        member's residency cache), so later rounds price reads from them by
        where they actually live."""
        nodes = plan.batch.nodes
        tp_devices = plan.batch.tp_devices
        local = device.device_for(plan.device)
        arenas: List[StorageArena] = []
        for k, (out, arena_id) in enumerate(zip(outputs, plan.output_arena_ids)):
            if out.batched:
                arena = StorageArena.from_batched(
                    out.array, arena_id=arena_id, device_index=plan.device
                )
            else:
                arena = StorageArena.from_broadcast(
                    out.array, len(nodes), arena_id=arena_id, device_index=plan.device
                )
            # a tensor-parallel launch's outputs are *partial-output* arenas:
            # assembled on the home device from the members' column/row
            # partials (the gathers were charged at launch time)
            arena.partial_shards = tp_devices
            local.note_arena(arena)
            for b, node in enumerate(nodes):
                node.outputs[k].storage = TensorStorage(arena, b)
            arenas.append(arena)
        for node in nodes:
            node.executed = True
        # release the node graph: retained plans keep only the classification
        plan.batch = None
        return arenas
