"""The ahead-of-execution memory planner.

After the scheduler has grouped the round's DFG nodes into batches and
*before* anything executes, :meth:`MemoryPlanner.plan_round` walks the
batches in execution order and decides, for every varying operand of every
batch, how its batched form will be obtained:

``contiguous``
    All per-instance tensors sit at consecutive offsets of one storage
    arena, so the batched operand is a zero-copy arena slice — no gather,
    no copy, no device charge (§5.2's gather elision).
``gather``
    The operands are scattered and gather fusion is off: the plan calls for
    one explicit gather launch copying them into a fresh contiguous buffer
    (what DyNet does).
``fused_gather``
    The operands are scattered and gather fusion is on: the batched kernel
    reads them through indirect addressing, charged as scattered bytes on
    its launch records.

Planning ahead of execution is possible because the planner *places*
outputs symbolically as it walks: each batch's outputs are assigned a fresh
arena id with instance ``b`` at offset ``b``, so a later batch's contiguity
is decided from planned placements before any value exists.  Execution then
resolves each :class:`OperandPlan` into a :class:`~repro.kernels.batched.BatchedOperand`
(:meth:`MemoryPlanner.resolve`, charging gathers/uploads against the device
simulator) and commits outputs into real arenas under the planned ids
(:meth:`MemoryPlanner.commit`).

This module is the single authority on storage contiguity: nothing outside
``repro.memory`` compares arena placements.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from ..kernels.batched import BatchedOperand, BatchedOutput
from ..runtime.tensor import LazyTensor
from .arena import StorageArena, TensorStorage, next_arena_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernels.batched import BlockKernel
    from ..runtime.device import DeviceSimulator
    from ..runtime.scheduler import ScheduledBatch


class OperandKind(Enum):
    """How one block operand reaches its batched kernel."""

    SHARED = "shared"
    CONTIGUOUS = "contiguous"
    GATHER = "gather"
    FUSED_GATHER = "fused_gather"


# hot-path aliases: Enum member access goes through a descriptor, so the
# planner binds the members once at import time
_SHARED = OperandKind.SHARED
_CONTIGUOUS = OperandKind.CONTIGUOUS
_GATHER = OperandKind.GATHER
_FUSED_GATHER = OperandKind.FUSED_GATHER


class OperandPlan:
    """The planner's verdict for one block input of one batch."""

    __slots__ = ("index", "kind", "arena_id", "start")

    def __init__(
        self,
        index: int,
        kind: OperandKind,
        arena_id: Optional[int] = None,
        start: Optional[int] = None,
    ) -> None:
        self.index = index
        self.kind = kind
        #: source placement for contiguous multi-instance operands: the arena
        #: id and the offset of the first instance (None for batch-of-one /
        #: shared)
        self.arena_id = arena_id
        self.start = start

    def __repr__(self) -> str:
        return f"OperandPlan(input={self.index}, kind={self.kind.value})"


@dataclass
class BatchPlan:
    """Everything the executor needs to know about one batch's memory.

    ``batch`` is released (set to ``None``) by :meth:`MemoryPlanner.commit`
    once the batch has executed, so retained plans (``last_plans``) keep only
    the lightweight classification — not the round's node graph and arenas.
    """

    batch: Optional["ScheduledBatch"]
    batch_size: int
    operands: List[OperandPlan]
    #: pre-allocated arena ids, one per block output; the commit step creates
    #: the arenas under exactly these ids so later plans stay valid
    output_arena_ids: List[int]

    def count(self, kind: OperandKind) -> int:
        return sum(1 for op in self.operands if op.kind is kind)


class MemoryPlanner:
    """Plans arena placement and operand contiguity for scheduled batches."""

    def __init__(self, gather_fusion: bool = True) -> None:
        self.gather_fusion = gather_fusion
        #: plans of the most recent round (introspection / tests)
        self.last_plans: List[BatchPlan] = []
        #: cumulative per-kind operand counts since the last reset
        self.operand_counts: Dict[str, int] = {k.value: 0 for k in OperandKind}

    def reset(self) -> None:
        self.last_plans = []
        self.operand_counts = {k.value: 0 for k in OperandKind}

    # -- planning --------------------------------------------------------------
    def plan_round(
        self, batches: List["ScheduledBatch"], kernels: Dict[int, "BlockKernel"]
    ) -> List[BatchPlan]:
        """Plan memory for one scheduled round, in execution order."""
        #: symbolic placements of tensors this round will produce: tid ->
        #: (arena_id, offset); tensors from earlier rounds carry real storage
        placements: Dict[int, Tuple[int, int]] = {}
        plans: List[BatchPlan] = []
        counts = self.operand_counts

        for batch in batches:
            block = kernels[batch.block_id].block
            nodes = batch.nodes
            if len(nodes) == 1:
                # batch of one never gathers: every varying operand only gains
                # a leading batch axis (a zero-copy reshape)
                operands = [
                    OperandPlan(inp.index, _SHARED if inp.shared else _CONTIGUOUS)
                    for inp in block.inputs
                ]
            else:
                operands = [self._plan_operand(inp, nodes, placements) for inp in block.inputs]
            output_ids = [next_arena_id() for _ in range(block.num_outputs)]
            for b, node in enumerate(nodes):
                for out, arena_id in zip(node.outputs, output_ids):
                    placements[out.tid] = (arena_id, b)
            for op in operands:
                counts[op.kind.value] += 1
            plans.append(
                BatchPlan(
                    batch=batch,
                    batch_size=len(nodes),
                    operands=operands,
                    output_arena_ids=output_ids,
                )
            )

        self.last_plans = plans
        return plans

    def _plan_operand(
        self, inp, nodes, placements: Dict[int, Tuple[int, int]]
    ) -> OperandPlan:
        if inp.shared:
            return OperandPlan(inp.index, _SHARED)

        index = inp.index
        contiguous = True
        prev: Optional[Tuple[int, int]] = None
        first: Optional[Tuple[int, int]] = None
        for node in nodes:
            arg = node.args[index]
            if not isinstance(arg, LazyTensor):
                # host-resident constant/input: never already on-device-contiguous
                contiguous = False
                continue
            placement = placements.get(arg.tid)
            if placement is None:
                storage = arg.storage
                if storage is None:
                    raise RuntimeError(
                        f"memory planner: operand tensor {arg.tid} (node "
                        f"{arg.node.node_id}) is neither materialized nor planned "
                        f"earlier in this round — the scheduler emitted batches "
                        f"out of dependency order"
                    )
                placement = storage.placement
            if prev is None:
                first = placement
            elif placement[0] != prev[0] or placement[1] != prev[1] + 1:
                contiguous = False
            prev = placement

        if contiguous and first is not None:
            return OperandPlan(index, _CONTIGUOUS, arena_id=first[0], start=first[1])
        return OperandPlan(index, _FUSED_GATHER if self.gather_fusion else _GATHER)

    # -- execution-time resolution ---------------------------------------------
    def resolve(
        self,
        plan: BatchPlan,
        kernel: "BlockKernel",
        device: "DeviceSimulator",
        options: Any,
    ) -> List[BatchedOperand]:
        """Turn a batch plan into kernel operands, charging the device.

        Explicit gathers are charged here (one gather launch per scattered
        operand); host arrays are uploaded through the device's residency
        cache; contiguous operands become zero-copy arena views.
        """
        block = kernel.block
        nodes = plan.batch.nodes
        batch_size = len(nodes)
        resolved: List[BatchedOperand] = []
        validate = options.validate
        batch_memcpy = options.batch_memcpy
        ensure_resident = device.ensure_resident

        for op in plan.operands:
            kind = op.kind
            index = op.index
            if kind is _SHARED:
                first = nodes[0].args[index]
                value = first.value if isinstance(first, LazyTensor) else np.asarray(first)
                if validate:
                    for other in nodes[1:]:
                        oarg = other.args[index]
                        ov = oarg.value if isinstance(oarg, LazyTensor) else np.asarray(oarg)
                        if not np.array_equal(np.asarray(ov), np.asarray(value)):
                            raise RuntimeError(
                                f"block {block.name}: input "
                                f"{block.inputs[index].name} marked shared but "
                                f"differs across batched nodes"
                            )
                if not isinstance(first, LazyTensor):
                    ensure_resident(value, batch_memcpy)
                resolved.append(BatchedOperand(shared=True, array=value))
                continue

            if kind is _CONTIGUOUS:
                resolved.append(
                    self._resolve_contiguous(op, nodes, batch_size, device, options)
                )
                continue

            # scattered: hand the kernel per-instance storage refs; the views
            # are only realized inside the kernel's own gather (the read is
            # device work — charged as a gather launch or as scattered bytes —
            # not host dispatch time)
            parts: List[Any] = []
            for node in nodes:
                arg = node.args[index]
                if isinstance(arg, LazyTensor):
                    parts.append(arg.storage)
                else:
                    arr = np.asarray(arg)
                    ensure_resident(arr, batch_memcpy)
                    parts.append(arr)
            if kind is _GATHER:
                # one explicit gather launch copies the scattered operand into
                # a contiguous buffer; downstream the operand is dense, so the
                # kernel performs the stack without scattered-read accounting
                device.gather(float(sum(p.nbytes for p in parts)))
                resolved.append(BatchedOperand(shared=False, parts=parts))
            else:  # FUSED_GATHER: the kernel reads the scattered parts itself
                resolved.append(BatchedOperand(shared=False, parts=parts, scattered=True))

        return resolved

    def _resolve_contiguous(
        self, op: OperandPlan, nodes, batch_size: int, device, options
    ) -> BatchedOperand:
        if batch_size == 1:
            arg = nodes[0].args[op.index]
            if isinstance(arg, LazyTensor):
                arr = arg.value
            else:
                arr = np.asarray(arg)
                device.ensure_resident(arr, options.batch_memcpy)
            return BatchedOperand(shared=False, array=arr[None])  # zero-copy leading axis
        storage = nodes[0].args[op.index].storage
        if storage is None or storage.placement != (op.arena_id, op.start):
            raise RuntimeError(
                f"memory plan violated: operand {op.index} expected at arena "
                f"{op.arena_id}+{op.start}, found "
                f"{None if storage is None else storage.placement} — batches "
                f"executed out of plan order"
            )
        return BatchedOperand(shared=False, array=storage.arena.slice(op.start, batch_size))

    # -- execution-time commit ---------------------------------------------------
    def commit(
        self,
        plan: BatchPlan,
        outputs: List[BatchedOutput],
        device: "DeviceSimulator",
    ) -> List[StorageArena]:
        """Store a batch's outputs into arenas under the planned ids and
        materialize every node output as a zero-copy arena view."""
        nodes = plan.batch.nodes
        arenas: List[StorageArena] = []
        for k, (out, arena_id) in enumerate(zip(outputs, plan.output_arena_ids)):
            if out.batched:
                arena = StorageArena.from_batched(out.array, arena_id=arena_id)
            else:
                arena = StorageArena.from_broadcast(
                    out.array, len(nodes), arena_id=arena_id
                )
            device.note_arena(arena)
            for b, node in enumerate(nodes):
                node.outputs[k].storage = TensorStorage(arena, b)
            arenas.append(arena)
        for node in nodes:
            node.executed = True
        # release the node graph: retained plans keep only the classification
        plan.batch = None
        return arenas
