"""Arena-backed batched tensor storage.

Every batched kernel launch writes each of its outputs into one contiguous
device buffer — a :class:`StorageArena` — with instance ``b`` of the batch at
offset ``b``.  Tensors produced by the launch are *views* into that arena
(:class:`TensorStorage`), never copies: a later batch whose operands sit at
consecutive offsets of a single arena can hand the arena slice straight to
the next kernel, which is what makes ACROBAT's gather elision (§5.2) real
rather than an accounting fiction.

Two arena layouts exist:

* **batched** — ``data`` has a leading batch dimension; ``view(b)`` is the
  zero-copy row ``data[b]``.
* **broadcast** — a shared (non-batched) launch output replicated logically
  across the batch; every ``view(b)`` is the *same* underlying array and
  ``slice`` returns a zero-copy ``np.broadcast_to`` view.

Arena identity (``arena_id``) is the unit of the memory planner's contiguity
reasoning and of the device simulator's residency cache: arena buffers are
born on-device, so reading them back into another kernel never costs a
transfer.
"""

from __future__ import annotations

import itertools
from typing import Tuple

import numpy as np

_arena_ids = itertools.count()


def next_arena_id() -> int:
    """Allocate a fresh arena identifier (the planner reserves ids ahead of
    execution so plans can name arenas that do not exist yet)."""
    return next(_arena_ids)


class StorageArena:
    """One contiguous device buffer holding a batched launch output."""

    # __weakref__ lets the device's residency cache hold arenas weakly
    __slots__ = (
        "arena_id",
        "data",
        "batch_size",
        "broadcast",
        "device_index",
        "partial_shards",
        "__weakref__",
    )

    def __init__(
        self,
        data: np.ndarray,
        batch_size: int,
        broadcast: bool = False,
        arena_id: int = None,
        device_index: int = 0,
    ) -> None:
        self.arena_id = next_arena_id() if arena_id is None else arena_id
        self.data = np.asarray(data)
        self.batch_size = batch_size
        self.broadcast = broadcast
        #: which device of the group owns this buffer; the memory planner
        #: classifies operands read from another device's arena as priced
        #: peer transfers
        self.device_index = device_index
        #: partial-output arena kind: the tensor-parallel member set whose
        #: column/row partials this buffer was assembled from (gathers
        #: charged at launch time), or None for an ordinary whole output
        self.partial_shards = None

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_batched(
        cls, array: np.ndarray, arena_id: int = None, device_index: int = 0
    ) -> "StorageArena":
        """Wrap a ``[B, ...]`` array produced by a batched kernel launch."""
        array = np.asarray(array)
        return cls(
            array,
            batch_size=array.shape[0],
            arena_id=arena_id,
            device_index=device_index,
        )

    @classmethod
    def from_broadcast(
        cls,
        array: np.ndarray,
        batch_size: int,
        arena_id: int = None,
        device_index: int = 0,
    ) -> "StorageArena":
        """Wrap a shared launch output logically replicated across the batch."""
        return cls(
            np.asarray(array),
            batch_size,
            broadcast=True,
            arena_id=arena_id,
            device_index=device_index,
        )

    # -- zero-copy access -----------------------------------------------------
    def view(self, offset: int) -> np.ndarray:
        """Instance ``offset``'s tensor: a view, never a copy."""
        if self.broadcast:
            return self.data
        return self.data[offset]

    def slice(self, start: int, length: int) -> np.ndarray:
        """``length`` consecutive instances starting at ``start`` as one
        batched ``[length, ...]`` view (no copy)."""
        if self.broadcast:
            return np.broadcast_to(self.data, (length,) + self.data.shape)
        return self.data[start : start + length]

    def slot(self, offset: int) -> "TensorStorage":
        """The (arena, offset) handle a :class:`LazyTensor` stores."""
        return TensorStorage(self, offset)

    # -- introspection --------------------------------------------------------
    @property
    def nbytes(self) -> float:
        """Bytes of unique device storage backing this arena."""
        return float(self.data.nbytes)

    def __repr__(self) -> str:
        kind = "broadcast" if self.broadcast else "batched"
        return (
            f"StorageArena(#{self.arena_id}, {kind}, batch={self.batch_size}, "
            f"shape={self.data.shape})"
        )


class TensorStorage:
    """Where one tensor lives: an offset into a storage arena.

    The per-instance view is created lazily and cached: a tensor that is only
    ever consumed through a contiguous arena slice never materializes its own
    view object (the arena-backed replacement for the seed runtime's eager
    per-instance output split).
    """

    __slots__ = ("arena", "offset", "_view")

    def __init__(self, arena: StorageArena, offset: int) -> None:
        self.arena = arena
        self.offset = offset
        self._view = None

    @property
    def array(self) -> np.ndarray:
        """The tensor's concrete value (a zero-copy view into the arena)."""
        view = self._view
        if view is None:
            view = self._view = self.arena.view(self.offset)
        return view

    @property
    def placement(self) -> Tuple[int, int]:
        """The ``(arena_id, offset)`` pair the memory planner reasons about."""
        return (self.arena.arena_id, self.offset)

    @property
    def nbytes(self) -> float:
        """Bytes of this instance's tensor (computed without realizing the
        view)."""
        data = self.arena.data
        if self.arena.broadcast or not data.shape[0]:
            return float(data.nbytes)
        return float(data.nbytes // data.shape[0])
