"""Memory layer: arena-backed batched tensor storage and the memory planner.

Batched kernel launches write each output into one contiguous
:class:`StorageArena`; tensors are zero-copy views into arenas
(:class:`TensorStorage`).  Between scheduling and execution the
:class:`MemoryPlanner` classifies every batch operand as contiguous-reuse
(free), explicit-gather or fused-gather and emits per-batch
:class:`BatchPlan`\\ s the executor and batched kernels consume.  This
package is the single authority on storage contiguity.
"""

from .arena import StorageArena, TensorStorage, next_arena_id
from .planner import BatchPlan, MemoryPlanner, OperandKind, OperandPlan

__all__ = [
    "StorageArena",
    "TensorStorage",
    "next_arena_id",
    "MemoryPlanner",
    "BatchPlan",
    "OperandPlan",
    "OperandKind",
]
